"""Materialized-view behavior: policies, rewriting, fallbacks, accounting."""

from __future__ import annotations

import pytest

from repro import PolystorePlusPlus, col, view_dataset
from repro.compiler.pipeline import CompilerOptions
from repro.datamodel import DataType, Table, make_schema
from repro.eide.dataflow import DataflowProgram, Dataset
from repro.eide.program import Param
from repro.exceptions import ConfigurationError
from repro.stores import KeyValueEngine, RelationalEngine


REGIONS = ("north", "south", "east")


def _system(rows: int = 300):
    system = PolystorePlusPlus()
    db = system.register_engine(RelationalEngine("salesdb"))
    schema = make_schema(("order_id", DataType.INT), ("region", DataType.STRING),
                         ("amount", DataType.FLOAT))
    db.load_table("orders", Table(schema, [
        (i, REGIONS[i % 3], float(i % 7)) for i in range(rows)
    ]))
    return system, db


def _spend_expr(system):
    return (system.dataset("salesdb").table("orders")
            .filter(col("amount") > 1.0)
            .aggregate(["region"], total=("sum", "amount"), n=("count", None)))


def _recompute(system, expr):
    program = DataflowProgram("recompute-baseline")
    program.output("res", Dataset(expr.node))
    result = system.execute(program, options=CompilerOptions(use_views=False))
    return _sorted_rows(result.output("res").to_dicts())


def _sorted_rows(rows):
    return sorted(tuple(sorted(r.items())) for r in rows)


class TestViewLifecycle:
    def test_create_read_matches_recompute(self):
        system, _ = _system()
        expr = _spend_expr(system)
        view = system.create_view("spend", expr, policy="manual")
        assert view.incremental
        assert _sorted_rows(view.read()[0].to_dicts()) == _recompute(system, expr)

    def test_incremental_refresh_tracks_mixed_writes(self):
        system, db = _system()
        expr = _spend_expr(system)
        view = system.create_view("spend", expr, policy="manual")
        db.insert("orders", [(1000, "north", 50.0), (1001, "south", None)])
        db.delete_rows("orders", col("order_id") < 10)
        db.update_rows("orders", col("order_id") == 20, {"amount": 33.0})
        outcome = view.refresh()
        assert outcome.kind == "incremental"
        assert _sorted_rows(view.read()[0].to_dicts()) == _recompute(system, expr)

    def test_refresh_without_changes_is_a_noop(self):
        system, _ = _system()
        view = system.create_view("spend", _spend_expr(system), policy="manual")
        assert view.refresh().kind == "noop"
        assert view.skipped_refreshes == 1

    def test_charged_time_scales_with_delta_not_base(self):
        system, db = _system(rows=4000)
        view = system.create_view("spend", _spend_expr(system), policy="manual")
        db.insert("orders", [(10_000, "north", 5.0)])
        outcome = view.refresh()
        assert outcome.kind == "incremental"
        assert outcome.charged_time_s < view.initial_charged_s / 3

    def test_duplicate_and_param_views_rejected(self):
        system, _ = _system()
        expr = _spend_expr(system)
        system.create_view("spend", expr, policy="manual")
        with pytest.raises(ConfigurationError):
            system.create_view("spend", _spend_expr(system))
        with pytest.raises(ConfigurationError):
            system.create_view("other", _spend_expr(system))  # same expression
        with pytest.raises(ConfigurationError):
            system.create_view("paramed", system.dataset("salesdb").table("orders")
                               .filter(col("amount") > Param("lo", 1.0)))

    def test_view_over_view_rejected(self):
        # A view over a view_read has no engine sources to watch; it would
        # serve its creation-time snapshot forever under every policy.
        system, _ = _system()
        system.create_view("spend", _spend_expr(system), policy="manual")
        with pytest.raises(ConfigurationError):
            system.create_view("over", view_dataset("spend").top_k("total", 1))

    def test_drop_view_restores_base_execution(self):
        system, _ = _system()
        expr = _spend_expr(system)
        system.create_view("spend", expr, policy="manual")
        system.drop_view("spend")
        program = DataflowProgram("after-drop")
        program.output("res", Dataset(expr.node))
        result = system.execute(program)
        assert "view_read" not in {r.kind for r in result.report.records}
        with pytest.raises(ConfigurationError):
            system.view("spend")


class TestPolicies:
    def test_eager_refreshes_on_write(self):
        system, db = _system()
        view = system.create_view("spend", _spend_expr(system), policy="eager")
        db.insert("orders", [(2000, "east", 30.0)])
        # No explicit refresh: the changelog subscription already ran one.
        assert view.incremental_refreshes >= 1
        assert not view.stale

    def test_deferred_refreshes_on_read(self):
        system, db = _system()
        expr = _spend_expr(system)
        view = system.create_view("spend", expr, policy="deferred")
        db.insert("orders", [(2000, "east", 30.0)])
        assert view.stale
        table, charged, _ = view.read()
        assert charged > 0.0
        assert not view.stale
        assert _sorted_rows(table.to_dicts()) == _recompute(system, expr)

    def test_manual_stays_stale_until_refreshed(self):
        system, db = _system()
        view = system.create_view("spend", _spend_expr(system), policy="manual")
        before = _sorted_rows(view.read()[0].to_dicts())
        db.insert("orders", [(2000, "east", 30.0)])
        assert view.stale
        assert _sorted_rows(view.read()[0].to_dicts()) == before
        view.refresh()
        assert _sorted_rows(view.read()[0].to_dicts()) != before

    def test_eager_refresh_failure_does_not_break_the_writer(self):
        # Regression: a committed mutation must not appear to fail because
        # the synchronous eager listener's refresh blew up.
        system, db = _system()
        expr = _spend_expr(system)
        view = system.create_view("spend", expr, policy="eager")
        db.drop_table("orders")  # commits, logs a gap, listener resync fails
        assert not db.has_table("orders")
        assert view.last_error is not None
        assert view.describe()["last_error"] is not None
        # The reader, not the writer, sees the failure.
        with pytest.raises(Exception):
            view.refresh(force_full=True)

    def test_auto_defers_once_observed_deltas_grow(self):
        system, db = _system()
        view = system.create_view("spend", _spend_expr(system), policy="auto",
                                  auto_delta_rows=2)
        db.insert("orders", [(3000, "north", 9.0)])  # small: handled eagerly
        assert view.incremental_refreshes >= 1
        # A burst far past the threshold drives the EWMA up...
        db.insert("orders", [(4000 + i, "south", 2.0) for i in range(500)])
        refreshes_after_burst = view.refreshes
        # ...so the next writes are deferred to read time.
        db.insert("orders", [(9000, "east", 1.0)])
        assert view.refreshes == refreshes_after_burst
        assert view.stale
        view.read()
        assert not view.stale


class TestRewriting:
    def test_prepared_program_reads_maintained_state(self):
        system, db = _system()
        expr = _spend_expr(system)
        system.create_view("spend", expr, policy="deferred")
        program = DataflowProgram("dashboard")
        program.output("res", Dataset(expr.node))
        session = system.session()
        prepared = session.prepare(program)
        first = prepared.run()
        assert {r.kind for r in first.report.records} == {"view_read"}
        db.insert("orders", [(5000, "north", 70.0)])
        second = prepared.run()
        assert _sorted_rows(second.output("res").to_dicts()) == \
            _recompute(system, expr)
        view = system.view("spend")
        assert view.incremental_refreshes >= 1

    def test_rewrite_matches_inner_subtrees(self):
        system, _ = _system()
        expr = _spend_expr(system)
        system.create_view("spend", expr, policy="deferred")
        program = DataflowProgram("top-region")
        program.output("top", Dataset(expr.node).top_k("total", 1))
        result = system.execute(program)
        kinds = {r.kind for r in result.report.records}
        assert "view_read" in kinds and "top_k" in kinds
        assert "scan" not in kinds

    def test_explicit_view_dataset_read(self):
        system, _ = _system()
        expr = _spend_expr(system)
        system.create_view("spend", expr, policy="deferred")
        program = DataflowProgram("explicit")
        program.output("res", view_dataset("spend").filter(col("n") > 0))
        result = system.execute(program)
        assert len(result.output("res")) == 3

    def test_use_views_false_bypasses_the_registry(self):
        system, _ = _system()
        expr = _spend_expr(system)
        system.create_view("spend", expr, policy="deferred")
        program = DataflowProgram("baseline")
        program.output("res", Dataset(expr.node))
        result = system.execute(program, options=CompilerOptions(use_views=False))
        kinds = {r.kind for r in result.report.records}
        assert "view_read" not in kinds and "scan" in kinds


class TestFallbacks:
    def test_non_incremental_tree_recomputes(self):
        system, db = _system()
        expr = (system.dataset("salesdb").table("orders")
                .apply(lambda t: t))  # python_udf: no delta form
        view = system.create_view("verbatim", expr, policy="manual")
        assert not view.incremental
        db.insert("orders", [(7000, "north", 1.0)])
        assert view.stale
        assert view.refresh().kind == "full"
        assert view.full_recomputes == 1

    def test_changelog_gap_triggers_resync(self):
        system, db = _system()
        expr = _spend_expr(system)
        view = system.create_view("spend", expr, policy="manual")
        # An undescribed engine-wide mutation (gap batch) breaks the cursor.
        db.mark_data_changed()
        outcome = view.refresh()
        assert outcome.kind == "full"
        assert "resync_reason" in outcome.details
        # The rebuilt cursor keeps tracking deltas afterwards.
        db.insert("orders", [(8000, "south", 2.0)])
        assert view.refresh().kind == "incremental"
        assert _sorted_rows(view.read()[0].to_dicts()) == _recompute(system, expr)

    def test_full_rebuild_to_empty_drops_cached_materialization(self):
        # Regression: a resync that rebuilds the state to *empty* content
        # must still invalidate the version-keyed materialization cache.
        system, db = _system()
        expr = _spend_expr(system)
        view = system.create_view("spend", expr, policy="manual")
        assert len(view.read()[0]) == 3  # caches the 3-region table
        db.delete_rows("orders", col("order_id") >= 0)
        db.mark_data_changed()  # gap: the next refresh is a full rebuild
        outcome = view.refresh()
        assert outcome.kind == "full"
        assert view.read()[0].to_dicts() == []

    def test_other_table_churn_never_forces_resync(self):
        # Regression: the cursor advances to the log head on every complete
        # pull, so heavy writes to *other* tables on the same engine must
        # not trim the log past a quiet view's cursor.
        system, db = _system()
        other = make_schema(("k", DataType.INT), ("v", DataType.FLOAT))
        db.load_table("hot", Table(other, [(0, 0.0)]))
        view = system.create_view("spend", _spend_expr(system), policy="manual")
        db.changelog.capacity = 50
        for round_index in range(5):
            for i in range(40):  # 200 total: far past the log capacity
                db.insert("hot", [(round_index * 100 + i, 1.0)])
            outcome = view.refresh()
            assert outcome.kind == "noop", (round_index, outcome)
        assert view.full_recomputes == 0
        # The orders table still tracks incrementally afterwards.
        db.insert("orders", [(9000, "north", 1.0)])
        assert view.refresh().kind == "incremental"

    def test_diverged_state_recovers_on_read(self):
        # Regression: a negative-weight record surfacing at materialization
        # must trigger a full rebuild instead of wedging every view_read.
        from repro.views.zset import ZSet, freeze_row

        system, _ = _system()
        expr = _spend_expr(system)
        view = system.create_view("spend", expr, policy="deferred")
        poisoned = ZSet()
        poisoned.add(freeze_row({"region": "ghost", "total": 1.0, "n": 1}), -1)
        view._state.update(poisoned)
        view._materialized = None  # drop the cached table
        view._version += 1
        table, charged, _ = view.read()
        assert charged > 0.0  # the recovery rebuild was charged
        assert _sorted_rows(table.to_dicts()) == _recompute(system, expr)
        assert view.full_recomputes == 1

    def test_log_truncation_triggers_resync(self):
        system, db = _system()
        view = system.create_view("spend", _spend_expr(system), policy="manual")
        db.changelog.capacity = 2
        for i in range(10):
            db.insert("orders", [(9000 + i, "north", 1.0)])
        outcome = view.refresh()
        assert outcome.kind == "full"
        assert _sorted_rows(view.read()[0].to_dicts()) == \
            _recompute(system, _spend_expr(system))


class TestConcurrency:
    def test_create_view_does_not_deadlock_against_prepare(self):
        # Regression (ABBA): create_view must not hold the registry lock
        # while initialization takes the session prepare lock, because
        # prepare -> compile -> rewrite takes the registry lock.
        import threading

        system, _ = _system()
        base_expr = _spend_expr(system)
        system.create_view("warm", base_expr, policy="deferred")
        program = DataflowProgram("reader")
        program.output("res", Dataset(base_expr.node))
        errors = []

        def creator():
            try:
                system.create_view(
                    "second",
                    system.dataset("salesdb").table("orders")
                    .aggregate(["region"], n=("count", None)))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def preparer():
            try:
                for _ in range(20):
                    system.execute(program)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=creator),
                   threading.Thread(target=preparer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads), \
            "create_view deadlocked against prepare"
        assert not errors

    def test_eager_writers_and_readers_with_forced_resyncs_no_deadlock(self):
        # Regression (ABBA): engine mutators must notify changelog listeners
        # outside the write lock — an eager refresh fired under it would
        # deadlock against a reader whose resync takes snapshot_scan.
        import threading

        system, db = _system()
        view = system.create_view("spend", _spend_expr(system), policy="eager")
        errors = []

        def writer():
            try:
                for i in range(30):
                    db.insert("orders", [(50_000 + i, "north", 2.0)])
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def reader():
            try:
                for _ in range(30):
                    view.read()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        db.mark_data_changed()  # gap: forces resyncs through snapshot_scan
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads), \
            "writer/reader deadlocked under eager maintenance"
        assert not errors
        view.refresh()
        assert _sorted_rows(view.read()[0].to_dicts()) == \
            _recompute(system, _spend_expr(system))

    def test_concurrent_creates_of_same_name_conflict_cleanly(self):
        import threading

        system, _ = _system()
        outcomes = []

        def create():
            try:
                system.create_view("spend", _spend_expr(system))
                outcomes.append("ok")
            except ConfigurationError:
                outcomes.append("conflict")

        threads = [threading.Thread(target=create) for _ in range(2)]
        [t.start() for t in threads]
        [t.join() for t in threads]
        assert sorted(outcomes) == ["conflict", "ok"]


class TestOrderedRoots:
    def test_non_incremental_view_preserves_program_order(self):
        # Regression: a full-recompute-only view (python_udf in the tree)
        # ending in a sort must return the program's order, not a canonical
        # Z-set expansion.
        system, db = _system()
        expr = (system.dataset("salesdb").table("orders")
                .apply(lambda t: t)
                .sort("amount", descending=True))
        view = system.create_view("ordered-verbatim", expr, policy="manual")
        assert not view.incremental
        db.insert("orders", [(7000, "north", 999.0)])
        view.refresh()
        program = DataflowProgram("baseline")
        program.output("res", Dataset(expr.node))
        expected = system.execute(
            program, options=CompilerOptions(use_views=False)).output("res")
        assert view.read()[0].to_dicts() == expected.to_dicts()

    def test_top_k_view_matches_recompute_order(self):
        system, db = _system()
        expr = (_spend_expr(system).top_k("total", 2))
        view = system.create_view("top-spend", expr, policy="manual")
        db.insert("orders", [(6000, "east", 500.0)])
        view.refresh()
        program = DataflowProgram("baseline")
        program.output("res", Dataset(expr.node))
        expected = system.execute(
            program, options=CompilerOptions(use_views=False)).output("res")
        assert view.read()[0].to_dicts() == expected.to_dicts()


class TestSnapshotDiffSources:
    def test_kv_side_input_only_rereads_on_change(self):
        system, db = _system()
        kv = system.register_engine(KeyValueEngine("profiles"))
        for region in REGIONS:
            kv.put(region, {"manager": f"m-{region}"})
        expr = (system.dataset("salesdb").table("orders")
                .aggregate(["region"], total=("sum", "amount")))
        view = system.create_view("spend-kv", expr, policy="manual")
        assert view.incremental
        db.insert("orders", [(5000, "north", 3.0)])
        assert view.refresh().kind == "incremental"

    def test_sharded_kv_source_sees_every_shard(self):
        system, _ = _system()
        kv = system.register_sharded_engine("profiles", KeyValueEngine, 3)
        for i in range(12):
            kv.put(f"user/{i}", {"grp": REGIONS[i % 3], "score": float(i)})
        expr = (system.dataset("profiles").kv(key_prefix="user/")
                .aggregate(["grp"], best=("max", "score"), n=("count", None),
                           engine="salesdb"))
        view = system.create_view("scores", expr, policy="manual")
        assert view.incremental
        baseline = _recompute(system, expr)
        assert _sorted_rows(view.read()[0].to_dicts()) == baseline
        # Writes land on whichever shard owns the key — all must be seen.
        for i in range(12, 24):
            kv.put(f"user/{i}", {"grp": REGIONS[i % 3], "score": float(i)})
        kv.delete("user/0")
        assert view.refresh().kind == "incremental"
        assert _sorted_rows(view.read()[0].to_dicts()) == _recompute(system, expr)

    def test_view_with_join_over_two_tables(self):
        system, db = _system()
        customers = make_schema(("region", DataType.STRING),
                                ("priority", DataType.INT))
        db.load_table("regions", Table(customers, [
            (region, i) for i, region in enumerate(REGIONS)
        ]))
        expr = (system.dataset("salesdb").table("orders")
                .join(system.dataset("salesdb").table("regions"), on="region")
                .filter(col("priority") > 0)
                .aggregate(["region"], total=("sum", "amount")))
        view = system.create_view("joined", expr, policy="manual")
        assert view.incremental
        db.insert("orders", [(5000, "south", 41.0)])
        db.insert("regions", [("west", 9)])
        db.insert("orders", [(5001, "west", 7.0)])
        assert view.refresh().kind == "incremental"
        assert _sorted_rows(view.read()[0].to_dicts()) == _recompute(system, expr)


class TestAccounting:
    def test_view_read_record_carries_refresh_charge(self):
        system, db = _system()
        expr = _spend_expr(system)
        system.create_view("spend", expr, policy="deferred")
        program = DataflowProgram("dash")
        program.output("res", Dataset(expr.node))
        session = system.session()
        prepared = session.prepare(program)
        prepared.run()
        db.insert("orders", [(5000, "north", 3.0)])
        result = prepared.run()
        (record,) = result.report.records
        assert record.kind == "view_read"
        assert record.details["refresh_charged_s"] > 0.0
        assert record.charged_time_s >= record.details["refresh_charged_s"]

    def test_refreshes_land_in_the_feedback_store(self):
        system, db = _system()
        view = system.create_view("spend", _spend_expr(system), policy="manual")
        db.insert("orders", [(5000, "north", 3.0)])
        view.refresh()
        observed = system.runtime_stats.observed(view.stats_fingerprint)
        assert observed is not None and observed.kind == "view_refresh"

    def test_describe_reports_views(self):
        system, _ = _system()
        system.create_view("spend", _spend_expr(system), policy="manual")
        (entry,) = system.describe()["views"]
        assert entry["name"] == "spend" and entry["incremental"]
