"""The changelog layer: scoped delta batches, gaps, retention, scoped versions."""

from __future__ import annotations

import pytest

from repro.datamodel import DataType, Table, make_schema
from repro.eide.expressions import col
from repro.cluster import ShardedEngine
from repro.stores import KeyValueEngine, RelationalEngine, TextEngine, TimeseriesEngine
from repro.stores.changelog import (
    ChangeLog,
    docs_scope,
    kv_scope,
    leaf_read_scope,
    series_scope,
    table_scope,
)


def _orders_schema():
    return make_schema(("order_id", DataType.INT), ("customer_id", DataType.INT),
                       ("amount", DataType.FLOAT))


class TestChangeLogUnit:
    def test_append_read_since_and_scope_filtering(self):
        log = ChangeLog()
        log.append("table:a", [(("r1",), 1)])
        log.append("table:b", [(("r2",), 1)])
        log.append("table:a", [(("r1",), -1)])
        batches, complete = log.read_since(0, "table:a")
        assert complete
        assert [b.entries for b in batches] == [((("r1",), 1),), ((("r1",), -1),)]
        all_batches, _ = log.read_since(0, None)
        assert len(all_batches) == 3

    def test_cursor_advances_past_read_batches(self):
        log = ChangeLog()
        first = log.append("s", [(1, 1)])
        batches, complete = log.read_since(first.seq, "s")
        assert complete and batches == []
        log.append("s", [(2, 1)])
        batches, complete = log.read_since(first.seq, "s")
        assert complete and len(batches) == 1

    def test_gap_poisons_scope_readers(self):
        log = ChangeLog()
        log.append("table:a", [(1, 1)])
        log.mark_gap("table:a")
        _, complete = log.read_since(0, "table:a")
        assert not complete
        # Other scopes are unaffected by a scoped gap.
        log.append("table:b", [(2, 1)])
        _, complete_b = log.read_since(0, "table:b")
        assert complete_b

    def test_unscoped_gap_poisons_everyone(self):
        log = ChangeLog()
        log.append("table:a", [(1, 1)])
        log.mark_gap(None)
        _, complete = log.read_since(0, "table:a")
        assert not complete

    def test_retention_truncation_forces_resync(self):
        log = ChangeLog(capacity=2)
        for i in range(5):
            log.append("s", [(i, 1)])
        _, complete = log.read_since(0, "s")
        assert not complete
        # A cursor inside the retained window still reads fine.
        batches, complete = log.read_since(3, "s")
        assert complete and len(batches) == 2

    def test_pull_reports_head_and_scope_filtered_batches(self):
        log = ChangeLog()
        batches, complete, head = log.pull(0, "s")
        assert complete and batches == [] and head == 0
        log.append("s", [(1, 1)])
        log.append("other", [(2, 1)])
        batches, complete, head = log.pull(0, "s")
        assert complete and len(batches) == 1 and head == 2
        batches, complete, head = log.pull(head, "s")
        assert complete and batches == [] and head == 2

    def test_subscribe_and_unsubscribe(self):
        log = ChangeLog()
        seen = []
        log.subscribe(seen.append)
        log.append("s", [(1, 1)])
        log.mark_gap("s")
        assert [b.gap for b in seen] == [False, True]
        log.unsubscribe(seen.append)
        log.append("s", [(2, 1)])
        assert len(seen) == 2


class TestEngineDeltas:
    def test_relational_insert_emits_weighted_rows(self):
        engine = RelationalEngine("db")
        engine.load_table("orders", Table(_orders_schema(), [(1, 1, 2.0)]))
        engine.insert("orders", [(2, 2, 3.0)])
        batches, complete = engine.changelog.read_since(0, table_scope("orders"))
        assert complete
        entries = [e for b in batches for e in b.entries]
        assert ((1, 1, 2.0), 1) in entries and ((2, 2, 3.0), 1) in entries

    def test_relational_delete_and_update_entries(self):
        engine = RelationalEngine("db")
        engine.load_table("orders", Table(_orders_schema(),
                                          [(1, 1, 2.0), (2, 2, 3.0)]))
        deleted = engine.delete_rows("orders", col("order_id") == 1)
        assert deleted == [(1, 1, 2.0)]
        updated = engine.update_rows("orders", col("order_id") == 2,
                                     {"amount": 9.0})
        assert updated == [((2, 2, 3.0), (2, 2, 9.0))]
        batches, _ = engine.changelog.read_since(0, table_scope("orders"))
        entries = [e for b in batches for e in b.entries]
        assert ((1, 1, 2.0), -1) in entries
        assert ((2, 2, 3.0), -1) in entries and ((2, 2, 9.0), 1) in entries
        assert len(engine.scan("orders")) == 1

    def test_partial_insert_failure_logs_a_gap(self):
        # Rows that landed before a mid-batch failure must not go
        # unrecorded: pinned snapshots would replay pre-insert data and
        # delta consumers would diverge with no resync signal.
        engine = RelationalEngine("db")
        engine.load_table("orders", Table(_orders_schema(), [(1, 1, 1.0)]))
        version = engine.data_version_for(table_scope("orders"))
        with pytest.raises(Exception):
            engine.insert("orders", [(2, 2, 2.0), ("bad", None)], validate=True)
        assert engine.data_version_for(table_scope("orders")) > version
        _, complete = engine.changelog.read_since(0, table_scope("orders"))
        assert not complete  # consumers are forced to resync

    def test_relational_drop_table_is_a_gap(self):
        engine = RelationalEngine("db")
        engine.load_table("orders", Table(_orders_schema(), [(1, 1, 2.0)]))
        engine.drop_table("orders")
        _, complete = engine.changelog.read_since(0, table_scope("orders"))
        assert not complete

    def test_kv_put_delete_entries_with_previous_values(self):
        engine = KeyValueEngine("kv")
        engine.put("a", 1)
        engine.put("a", 2)
        engine.delete("a")
        batches, complete = engine.changelog.read_since(0, kv_scope())
        assert complete
        entries = [e for b in batches for e in b.entries]
        assert entries == [(("a", 1), 1), (("a", 1), -1), (("a", 2), 1),
                           (("a", 2), -1)]

    def test_timeseries_append_entries(self):
        engine = TimeseriesEngine("ts")
        engine.append_many("s/1", [(1.0, 2.0), (2.0, 3.0)])
        batches, complete = engine.changelog.read_since(0, series_scope("s/1"))
        assert complete
        entries = [e for b in batches for e in b.entries]
        assert ((1.0, 2.0), 1) in entries and ((2.0, 3.0), 1) in entries

    def test_text_add_remove_entries(self):
        engine = TextEngine("txt")
        engine.add_document("d1", "hello")
        engine.add_document("d1", "world")
        engine.remove_document("d1")
        batches, complete = engine.changelog.read_since(0, docs_scope())
        assert complete
        entries = [e for b in batches for e in b.entries]
        assert entries == [(("d1", "hello"), 1), (("d1", "hello"), -1),
                           (("d1", "world"), 1), (("d1", "world"), -1)]


class TestScopedVersions:
    def test_table_scoped_versions_are_independent(self):
        engine = RelationalEngine("db")
        engine.load_table("a", Table(_orders_schema(), [(1, 1, 1.0)]))
        engine.load_table("b", Table(_orders_schema(), [(2, 2, 2.0)]))
        version_a = engine.data_version_for(table_scope("a"))
        version_b = engine.data_version_for(table_scope("b"))
        engine.insert("b", [(3, 3, 3.0)])
        assert engine.data_version_for(table_scope("a")) == version_a
        assert engine.data_version_for(table_scope("b")) > version_b

    def test_unscoped_mutation_bumps_every_scope(self):
        engine = RelationalEngine("db")
        engine.load_table("a", Table(_orders_schema(), [(1, 1, 1.0)]))
        version_a = engine.data_version_for(table_scope("a"))
        engine.mark_data_changed()  # an undescribed engine-wide mutation
        assert engine.data_version_for(table_scope("a")) > version_a

    def test_series_scoped_versions(self):
        engine = TimeseriesEngine("ts")
        engine.append("s/1", 1.0, 1.0)
        engine.append("s/2", 1.0, 1.0)
        version_1 = engine.data_version_for(series_scope("s/1"))
        engine.append("s/2", 2.0, 2.0)
        assert engine.data_version_for(series_scope("s/1")) == version_1
        assert engine.data_version > 0

    def test_engine_wide_counter_still_bumps_on_every_write(self):
        engine = RelationalEngine("db")
        engine.load_table("a", Table(_orders_schema(), [(1, 1, 1.0)]))
        before = engine.data_version
        engine.insert("a", [(2, 2, 2.0)])
        assert engine.data_version > before


class TestShardedChangelog:
    def _sharded(self, shards=3):
        engine = ShardedEngine("cluster", RelationalEngine, shards)
        engine.load_table("orders", Table(_orders_schema(), [
            (i, i % 5, float(i)) for i in range(20)
        ]))
        return engine

    def test_facade_log_carries_routed_writes(self):
        engine = self._sharded()
        engine.insert("orders", [(100, 1, 9.0)])
        batches, complete = engine.changelog.read_since(0, table_scope("orders"))
        assert complete
        entries = [e for b in batches for e in b.entries]
        assert ((100, 1, 9.0), 1) in entries
        # Every seeded row is on the facade log exactly once.
        weights = [w for _, w in entries]
        assert weights.count(1) == 21

    def test_facade_log_survives_rebalance_cutover(self):
        engine = self._sharded()
        cursor = engine.changelog.latest_seq
        from repro.cluster import ShardRebalancer

        ShardRebalancer(engine).rebalance(5)
        # The cutover appended nothing and invalidated nothing on the log:
        # a delta consumer's cursor stays valid across the topology change.
        batches, complete = engine.changelog.read_since(cursor, table_scope("orders"))
        assert complete and batches == []
        engine.insert("orders", [(200, 2, 1.0)])
        batches, complete = engine.changelog.read_since(cursor, table_scope("orders"))
        assert complete
        assert [e for b in batches for e in b.entries] == [((200, 2, 1.0), 1)]

    def test_per_shard_logs_exist(self):
        engine = self._sharded()
        per_shard_entries = 0
        for shard in engine.shards:
            batches, complete = shard.changelog.read_since(0, table_scope("orders"))
            assert complete
            per_shard_entries += sum(len(b.entries) for b in batches)
        assert per_shard_entries == 20

    def test_scoped_versions_aggregate_across_shards(self):
        engine = self._sharded()
        version = engine.data_version_for(table_scope("orders"))
        engine.insert("orders", [(300, 3, 1.0)])
        assert engine.data_version_for(table_scope("orders")) > version

    def test_rebalance_changes_scoped_version(self):
        engine = self._sharded()
        version = engine.data_version_for(table_scope("orders"))
        from repro.cluster import ShardRebalancer

        ShardRebalancer(engine).rebalance(4)
        assert engine.data_version_for(table_scope("orders")) != version

    def test_scoped_versions_never_regress_across_cutover(self):
        # ABA regression: the new shard set's counters start near zero, so
        # without per-scope re-basing a scope could return to a previously
        # observed value and falsely re-validate a pinned snapshot.
        from repro.cluster import ShardRebalancer

        engine = ShardedEngine("cluster", RelationalEngine, 1)
        engine.load_table("orders", Table(_orders_schema(), [
            (i, i, float(i)) for i in range(10)]))
        observed = [engine.data_version_for(table_scope("orders"))]
        engine.insert("orders", [(100, 1, 1.0)])
        observed.append(engine.data_version_for(table_scope("orders")))
        ShardRebalancer(engine).rebalance(4)
        observed.append(engine.data_version_for(table_scope("orders")))
        assert observed == sorted(observed)
        assert len(set(observed)) == len(observed), \
            f"scoped version repeated across cutover: {observed}"

    def test_scope_bases_survive_a_second_cutover(self):
        # Regression: a scope recorded only on retired shards (here via a
        # direct-to-shard write) must keep its cutover base through later
        # rebalances, or its version would regress to zero.
        from repro.cluster import ShardRebalancer

        engine = self._sharded(shards=1)
        engine.shard(0).load_table("direct", Table(_orders_schema(),
                                                   [(1, 1, 1.0)]))
        observed = [engine.data_version_for(table_scope("direct"))]
        ShardRebalancer(engine).rebalance(2)
        observed.append(engine.data_version_for(table_scope("direct")))
        ShardRebalancer(engine).rebalance(3)
        observed.append(engine.data_version_for(table_scope("direct")))
        assert observed == sorted(observed)
        assert len(set(observed)) == len(observed), \
            f"scoped version regressed across cutovers: {observed}"

    def test_bulk_batches_age_out_by_retained_rows(self):
        log = ChangeLog(capacity=100, max_rows=10)
        log.append("s", [(i, 1) for i in range(8)])
        assert log.stats()["retained_rows"] == 8
        log.append("s", [(i, 1) for i in range(8)])  # 16 > 10: oldest drops
        stats = log.stats()
        assert stats["batches"] == 1 and stats["retained_rows"] == 8
        _, complete = log.read_since(0, "s")
        assert not complete  # trimmed-past cursors resync
        # A single oversized batch ages out immediately; head cursors and
        # later appends keep working.
        head = log.latest_seq
        log.append("s", [(i, 1) for i in range(50)])
        assert log.stats()["retained_rows"] == 0
        _, complete = log.read_since(head, "s")
        assert not complete
        log.append("s", [(0, 1)])
        batches, complete = log.read_since(log.latest_seq - 1, "s")
        assert complete and len(batches) == 1

    def test_pinned_scan_not_replayed_after_insert_plus_rebalance(self):
        # End-to-end form of the ABA scenario: write then rebalance; the
        # next prepared run must see the write, not replay the stale pin.
        from repro.core import build_accelerated_polystore
        from repro.eide.dataflow import DataflowProgram, dataset

        engine = ShardedEngine("cluster", RelationalEngine, 1)
        engine.load_table("orders", Table(_orders_schema(), [
            (i, i, float(i)) for i in range(10)]))
        system = build_accelerated_polystore([engine])
        program = DataflowProgram("scan-orders")
        program.output("orders", dataset("cluster").table("orders"))
        session = system.session()
        prepared = session.prepare(program)
        assert len(prepared.run().output("orders")) == 10
        engine.insert("orders", [(100, 1, 1.0)])
        system.rebalance_sharded_engine("cluster", 4)
        result = prepared.run()
        assert len(result.output("orders")) == 11
        assert not any(r.cached for r in result.report.records)

    def test_delete_update_refused_during_rebalance(self):
        from repro.exceptions import ConfigurationError
        from repro.cluster.partition import HashPartitioner

        engine = self._sharded()
        engine.begin_rebalance(HashPartitioner(4))
        with pytest.raises(ConfigurationError):
            engine.delete_rows("orders", col("order_id") == 1)
        with pytest.raises(ConfigurationError):
            engine.update_rows("orders", col("order_id") == 1, {"amount": 0.0})
        engine.abort_rebalance()
        assert len(engine.delete_rows("orders", col("order_id") == 1)) == 1


class TestLeafReadScopes:
    def test_scope_mapping(self):
        assert leaf_read_scope("scan", {"table": "t"}) == table_scope("t")
        assert leaf_read_scope("index_seek", {"table": "t", "column": "c",
                                              "value": 1}) == table_scope("t")
        assert leaf_read_scope("kv_get", {"keys": ["a"]}) == kv_scope()
        assert leaf_read_scope("ts_range", {"series": "s"}) == series_scope("s")
        assert leaf_read_scope("text_search", {"query": "q"}) == docs_scope()
        # Prefix reads cannot name their footprint: engine-wide.
        assert leaf_read_scope("ts_summarize", {"series_prefix": "s/"}) is None
