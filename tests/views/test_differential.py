"""Randomized differential tests: incremental refresh vs full recompute.

For each seed, a random stream of mixed insert/update/delete batches is
applied to the base table(s); after *every* batch the maintained view is
refreshed and compared against a from-scratch recompute of the same
expression (``use_views=False``).  Edge cases are forced into the stream:
empty deltas, deletes emptying a group, aggregates over zero non-NULL
values, and the same streams run against sharded and single-node bases.
"""

from __future__ import annotations

import random

import pytest

from repro import PolystorePlusPlus, col
from repro.cluster import ShardedEngine
from repro.compiler.pipeline import CompilerOptions
from repro.datamodel import DataType, Table, make_schema
from repro.eide.dataflow import DataflowProgram, Dataset
from repro.stores import RelationalEngine

GROUPS = ("alpha", "beta", "gamma", "delta")


def _schema():
    return make_schema(("row_id", DataType.INT), ("grp", DataType.STRING),
                       ("value", DataType.FLOAT))


def _build_system(sharded: bool, seed: int):
    rng = random.Random(seed)
    system = PolystorePlusPlus()
    if sharded:
        engine = system.register_sharded_engine("base", RelationalEngine, 3)
    else:
        engine = system.register_engine(RelationalEngine("base"))
    rows = [(i, rng.choice(GROUPS),
             None if rng.random() < 0.15 else float(rng.randint(0, 20)))
            for i in range(rng.randint(30, 80))]
    engine.load_table("events", Table(_schema(), rows), **(
        {"shard_key": "row_id"} if sharded else {}))
    return system, engine, rng


def _agg_expr(system):
    return (system.dataset("base").table("events")
            .filter(col("value") >= 0.0)  # NULLs drop here, like SQL
            .aggregate(["grp"],
                       total=("sum", "value"),
                       n=("count", None),
                       n_vals=("count", "value"),
                       mean=("avg", "value"),
                       lo=("min", "value"),
                       hi=("max", "value")))


def _recompute(system, expr):
    program = DataflowProgram("differential-recompute")
    program.output("res", Dataset(expr.node))
    result = system.execute(program, options=CompilerOptions(use_views=False))
    return result.output("res").to_dicts()


def _canon(rows):
    return sorted(tuple(sorted(r.items())) for r in rows)


def _mutate(engine, rng, next_id, step):
    """One random mutation batch; returns the advanced id counter."""
    choice = rng.random()
    if step == 3:
        # Forced edge case: delete a whole group (possibly emptying it).
        engine.delete_rows("events", col("grp") == rng.choice(GROUPS))
    elif step == 5:
        # Forced edge case: an empty delta (predicate matches nothing).
        engine.delete_rows("events", col("row_id") == -1)
    elif choice < 0.45:
        batch = [(next_id + i, rng.choice(GROUPS),
                  None if rng.random() < 0.25 else float(rng.randint(0, 20)))
                 for i in range(rng.randint(1, 12))]
        engine.insert("events", batch)
        next_id += len(batch)
    elif choice < 0.75:
        threshold = rng.randint(0, max(1, next_id))
        engine.delete_rows("events", col("row_id") < threshold)
    else:
        engine.update_rows(
            "events", col("grp") == rng.choice(GROUPS),
            {"value": None if rng.random() < 0.3
             else float(rng.randint(0, 20))})
    return next_id


@pytest.mark.parametrize("sharded", [False, True],
                         ids=["single-node", "sharded"])
@pytest.mark.parametrize("seed", [7, 23, 101, 911])
def test_grouped_aggregate_differential(seed, sharded):
    system, engine, rng = _build_system(sharded, seed)
    expr = _agg_expr(system)
    view = system.create_view("agg", expr, policy="manual")
    assert view.incremental
    next_id = 10_000
    for step in range(10):
        next_id = _mutate(engine, rng, next_id, step)
        view.refresh()
        assert _canon(view.read()[0].to_dicts()) == \
            _canon(_recompute(system, expr)), f"diverged at step {step}"
    # The stream must have exercised the incremental path, not fallbacks.
    assert view.incremental_refreshes > 0
    assert view.full_recomputes == 0


@pytest.mark.parametrize("seed", [3, 77])
def test_prepared_program_over_view_matches_recompute(seed):
    """Acceptance: a prepared program reading a registered view returns
    results identical to recompute after every mutation batch."""
    system, engine, rng = _build_system(False, seed)
    expr = _agg_expr(system)
    system.create_view("agg", expr, policy="deferred")
    program = DataflowProgram("dashboard")
    program.output("res", Dataset(expr.node))
    session = system.session()
    prepared = session.prepare(program)
    assert {r.kind for r in prepared.run().report.records} == {"view_read"}
    next_id = 20_000
    for step in range(8):
        next_id = _mutate(engine, rng, next_id, step)
        got = prepared.run().output("res").to_dicts()
        assert _canon(got) == _canon(_recompute(system, expr)), \
            f"diverged at step {step}"


@pytest.mark.parametrize("seed", [11, 42])
def test_join_view_differential(seed):
    system, engine, rng = _build_system(False, seed)
    dims = make_schema(("grp", DataType.STRING), ("weight", DataType.INT))
    engine.load_table("dims", Table(dims, [(g, i + 1)
                                           for i, g in enumerate(GROUPS)]))
    expr = (system.dataset("base").table("events")
            .join(system.dataset("base").table("dims"), on="grp")
            .filter(col("weight") > 1)
            .aggregate(["grp"], total=("sum", "value"), n=("count", None)))
    view = system.create_view("joined", expr, policy="manual")
    assert view.incremental
    next_id = 30_000
    for step in range(8):
        next_id = _mutate(engine, rng, next_id, step)
        if step == 4:  # mutate the other join side too
            engine.update_rows("dims", col("grp") == rng.choice(GROUPS),
                               {"weight": rng.randint(0, 5)})
        view.refresh()
        assert _canon(view.read()[0].to_dicts()) == \
            _canon(_recompute(system, expr)), f"diverged at step {step}"
    assert view.full_recomputes == 0


@pytest.mark.parametrize("seed", [13, 59])
def test_sort_then_limit_chain_differential(seed):
    # Regression: a sort feeding a limit must recompute as one unit — the
    # ordering would not survive a Z-set boundary between two recomputes
    # and the limit would cut arbitrary rows.
    system, engine, rng = _build_system(False, seed)
    expr = (system.dataset("base").table("events")
            .sort("value", descending=True)
            .limit(4))
    view = system.create_view("topfour", expr, policy="manual")
    assert view.incremental
    next_id = 60_000
    for step in range(8):
        next_id = _mutate(engine, rng, next_id, step)
        view.refresh()
        got = view.read()[0].to_dicts()
        expected = _recompute(system, expr)
        # The descending sort's value order must match exactly (ties among
        # equal values may legitimately differ in row identity).
        assert [r["value"] for r in got] == [r["value"] for r in expected], \
            f"diverged at step {step}"


def test_mid_refresh_failure_falls_back_to_full_rebuild():
    # Regression: any exception during delta application (cursors already
    # advanced, operator state partially mutated) must trigger a full
    # rebuild — not leave half-applied state that reads as fresh.
    system = PolystorePlusPlus()
    engine = system.register_engine(RelationalEngine("base"))
    engine.load_table("events", Table(_schema(), [(1, "alpha", 3.0)]))
    expr = (system.dataset("base").table("events")
            .aggregate(["grp"], total=("sum", "value"), n=("count", None)))
    view = system.create_view("sums", expr, policy="manual")
    # A type-confused row makes the weighted sum raise mid-apply; the
    # refresh falls back to a full rebuild, whose aggregate hits the same
    # bad row — the failure surfaces loudly (exactly like the engine's own
    # sum over mixed types would) instead of leaving silent divergence.
    engine.insert("events", [(2, "alpha", "oops")])
    with pytest.raises(TypeError):
        view.refresh()
    # Repairing the data lets the next refresh rebuild and converge.
    engine.delete_rows("events", col("row_id") == 2)
    view.refresh()
    assert _canon(view.read()[0].to_dicts()) == _canon(_recompute(system, expr))


def test_direct_shard_write_detected_via_scoped_version():
    # A write applied straight to a shard instance bypasses the facade log;
    # the writer-side log-mark cross-check must force a resync instead of
    # serving stale state forever.
    system = PolystorePlusPlus()
    engine = system.register_sharded_engine("base", RelationalEngine, 2)
    engine.load_table("events", Table(_schema(), [
        (i, "alpha", 1.0) for i in range(6)]))
    expr = (system.dataset("base").table("events")
            .aggregate(["grp"], n=("count", None)))
    view = system.create_view("counts", expr, policy="manual")
    assert view.read()[0].to_dicts()[0]["n"] == 6
    engine.shard(0).insert("events", [(100, "alpha", 1.0)])  # off-facade
    assert view.stale
    view.refresh()
    assert view.read()[0].to_dicts()[0]["n"] == 7
    # Detection is probe-point based: an off-log write followed by a routed
    # write *before any probe* is absorbed into the next log mark (see
    # DESIGN.md — off-API writes carry no exactness contract with the
    # changelog); a forced full refresh always reconverges.
    engine.shard(1).insert("events", [(101, "beta", 1.0)])   # off-facade
    engine.insert("events", [(102, "alpha", 1.0)])           # routed
    view.refresh(force_full=True)
    counts = {r["grp"]: r["n"] for r in view.read()[0].to_dicts()}
    assert counts == {"alpha": 8, "beta": 1}
    assert _canon(view.read()[0].to_dicts()) == _canon(_recompute(system, expr))


def test_facade_partial_write_failure_still_relays_landed_rows():
    # Regression: a routed insert that fails mid-batch must relay the shard
    # batches that DID land — dropping them would leave orphaned version
    # bumps that the next write's log mark absorbs, silently diverging the
    # view even though the rows are visible to scans.
    system = PolystorePlusPlus()
    engine = system.register_sharded_engine("base", RelationalEngine, 2)
    engine.load_table("events", Table(_schema(), [
        (i, "alpha", 5.0) for i in range(10)]))
    expr = (system.dataset("base").table("events")
            .aggregate(["grp"], total=("sum", "value"), n=("count", None)))
    view = system.create_view("sums", expr, policy="manual")
    with pytest.raises(Exception):
        engine.insert("events", [(100, "alpha", 5.0), ("bad",)], validate=True)
    engine.insert("events", [(200, "alpha", 2.0)])  # absorbs the log mark
    view.refresh()
    assert _canon(view.read()[0].to_dicts()) == _canon(_recompute(system, expr))


def test_rebalance_alone_does_not_force_a_resync():
    # A cutover moves every scoped version without changing data; the log
    # marks are refreshed with it, so an incremental view must not misread
    # the bump as an off-log write and pay an O(base) rebuild.
    system = PolystorePlusPlus()
    engine = system.register_sharded_engine("base", RelationalEngine, 2)
    engine.load_table("events", Table(_schema(), [
        (i, "alpha", 1.0) for i in range(20)]))
    expr = (system.dataset("base").table("events")
            .aggregate(["grp"], n=("count", None)))
    view = system.create_view("counts", expr, policy="manual")
    system.rebalance_sharded_engine("base", 4)
    assert view.refresh().kind == "noop"
    engine.insert("events", [(100, "alpha", 1.0)])
    outcome = view.refresh()
    assert outcome.kind == "incremental"
    assert view.full_recomputes == 0
    assert view.read()[0].to_dicts()[0]["n"] == 21


def test_limit_without_an_ordering_producer_falls_back_to_recompute():
    # Regression: a limit separated from its sort by a linear operator (or
    # with no sort at all) cannot be maintained from unordered Z-sets —
    # the view must fall back to full recomputation and stay row-exact.
    system = PolystorePlusPlus()
    engine = system.register_engine(RelationalEngine("base"))
    engine.load_table("events", Table(_schema(), [
        (i, "alpha", float(i)) for i in range(50)]))
    expr = (system.dataset("base").table("events")
            .sort("value", descending=True)
            .project("row_id")
            .limit(3))
    view = system.create_view("broken-chain", expr, policy="manual")
    assert not view.incremental  # no ordering producer in the limit's unit
    engine.insert("events", [(100, "alpha", 1000.0)])
    view.refresh()
    assert view.read()[0].to_dicts() == _recompute(system, expr)
    # A contiguous sort->limit (ordering producer present) stays incremental.
    contiguous = (system.dataset("base").table("events")
                  .sort("value", descending=True).limit(3))
    assert system.create_view("contiguous", contiguous,
                              policy="manual").incremental


@pytest.mark.parametrize("seed", [5, 131])
def test_top_k_view_differential_with_exact_order(seed):
    system, engine, rng = _build_system(False, seed)
    expr = _agg_expr(system).top_k("total", 2)
    view = system.create_view("top", expr, policy="manual")
    next_id = 40_000
    for step in range(8):
        next_id = _mutate(engine, rng, next_id, step)
        view.refresh()
        # Ordered roots must match the recompute row-for-row, order included.
        assert view.read()[0].to_dicts() == _recompute(system, expr), \
            f"diverged at step {step}"


def test_avg_over_zero_non_null_rows():
    system = PolystorePlusPlus()
    engine = system.register_engine(RelationalEngine("base"))
    engine.load_table("events", Table(_schema(), [
        (1, "alpha", 3.0), (2, "alpha", 4.0), (3, "beta", None),
    ]))
    expr = (system.dataset("base").table("events")
            .aggregate(["grp"], mean=("avg", "value"), n=("count", None),
                       n_vals=("count", "value")))
    view = system.create_view("avgs", expr, policy="manual")
    # beta has rows but zero non-NULL values: avg must be NULL, count 1.
    assert _canon(view.read()[0].to_dicts()) == _canon(_recompute(system, expr))
    # Delete alpha's values so it too averages over nothing, then empty it.
    engine.update_rows("events", col("grp") == "alpha", {"value": None})
    view.refresh()
    assert _canon(view.read()[0].to_dicts()) == _canon(_recompute(system, expr))
    engine.delete_rows("events", col("grp") == "alpha")
    view.refresh()
    rows = view.read()[0].to_dicts()
    assert _canon(rows) == _canon(_recompute(system, expr))
    assert all(r["grp"] != "alpha" for r in rows)


def test_global_aggregate_survives_emptying_the_table():
    system = PolystorePlusPlus()
    engine = system.register_engine(RelationalEngine("base"))
    engine.load_table("events", Table(_schema(), [(1, "alpha", 3.0)]))
    expr = (system.dataset("base").table("events")
            .aggregate([], total=("sum", "value"), n=("count", None)))
    view = system.create_view("global", expr, policy="manual")
    engine.delete_rows("events", col("row_id") >= 0)
    view.refresh()
    # A global aggregate over an empty input still yields exactly one row.
    assert view.read()[0].to_dicts() == _recompute(system, expr)
    assert view.read()[0].to_dicts() == [{"total": None, "n": 0}]


@pytest.mark.parametrize("seed", [19])
def test_sharded_base_with_rebalance_mid_stream(seed):
    system, engine, rng = _build_system(True, seed)
    expr = _agg_expr(system)
    view = system.create_view("agg", expr, policy="manual")
    next_id = 50_000
    for step in range(6):
        next_id = _mutate(engine, rng, next_id, step)
        if step == 2:
            system.rebalance_sharded_engine("base", 5)
        view.refresh()
        assert _canon(view.read()[0].to_dicts()) == \
            _canon(_recompute(system, expr)), f"diverged at step {step}"
    assert isinstance(engine, ShardedEngine) and engine.num_shards == 5
