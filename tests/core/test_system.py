"""End-to-end tests of the PolystorePlusPlus facade and execution modes."""

from __future__ import annotations

import pytest

from repro.core import (
    EXECUTION_MODES,
    PolystorePlusPlus,
    build_accelerated_polystore,
    one_size_fits_all_latency,
)
from repro.exceptions import CatalogError, ConfigurationError
from repro.stores import RelationalEngine
from repro.workloads import build_admission_history_program, build_mimic_program


class TestDeployment:
    def test_register_and_describe(self, mimic_accelerated_system):
        description = mimic_accelerated_system.describe()
        engine_names = {e["name"] for e in description["engines"]}
        assert {"clinical-db", "monitors", "notes-db", "dnn-engine"} <= engine_names
        assert description["accelerators"]
        assert description["config"]["objective"] == "latency"

    def test_duplicate_engine_rejected(self, mimic_cpu_system):
        with pytest.raises(CatalogError):
            mimic_cpu_system.register_engine(RelationalEngine("clinical-db"))

    def test_unknown_mode_rejected(self, mimic_cpu_system):
        with pytest.raises(ConfigurationError):
            mimic_cpu_system.execute(build_mimic_program(epochs=1), mode="warp-speed")

    def test_unregistered_engine_lookup(self):
        with pytest.raises(CatalogError):
            PolystorePlusPlus().engine("ghost")


class TestExecutionModes:
    def test_all_modes_produce_a_model(self, mimic_accelerated_system):
        program = build_mimic_program(epochs=2)
        results = mimic_accelerated_system.compare_modes(program)
        assert set(results) == set(EXECUTION_MODES)
        for result in results.values():
            model = result.output("stay_model")
            assert model["rows"] == 60
            assert 0.0 <= model["metrics"]["accuracy"] <= 1.0

    def test_accelerated_mode_not_slower_than_strawman(self, mimic_accelerated_system):
        program = build_mimic_program(epochs=1)
        accelerated = mimic_accelerated_system.execute(program, mode="polystore++")
        strawman = mimic_accelerated_system.execute(program, mode="one_size_fits_all")
        assert accelerated.total_time_s <= strawman.total_time_s * 1.5

    def test_cpu_polystore_has_no_offloads(self, mimic_cpu_system):
        result = mimic_cpu_system.execute(build_mimic_program(epochs=1),
                                          mode="cpu_polystore")
        assert result.report.offloaded_tasks == 0
        assert result.compilation.offloaded_operators == 0

    def test_migration_accounting_present(self, mimic_accelerated_system):
        result = mimic_accelerated_system.execute(build_mimic_program(epochs=1))
        assert result.report.migration_bytes > 0
        assert result.report.migration_time_s > 0
        summary = result.summary()
        assert summary["mode"] == "polystore++"
        assert summary["compilation"]["nodes"] == len(result.compilation.graph)

    def test_single_store_query_program(self, mimic_cpu_system):
        result = mimic_cpu_system.execute(build_admission_history_program(5),
                                          mode="cpu_polystore")
        history = result.output("history")
        assert all(row["pid"] == 5 for row in history.to_dicts())

    def test_recalibration_uses_engine_metrics(self, mimic_cpu_system):
        mimic_cpu_system.execute(build_mimic_program(epochs=1), mode="cpu_polystore")
        assert mimic_cpu_system.recalibrate_cost_model() > 0


class TestBaselines:
    def test_one_size_fits_all_estimate(self, mimic_engines):
        dataset = mimic_engines["dataset"]
        estimate = one_size_fits_all_latency([dataset.admissions],
                                             processing_rows=len(dataset.admissions))
        assert estimate.migration_time_s > 0
        assert estimate.total_time_s > estimate.processing_time_s

    def test_build_accelerated_polystore_registers_fleet(self, mimic_engines):
        system = build_accelerated_polystore([mimic_engines["relational"]])
        names = {a["name"] for a in system.describe()["accelerators"]}
        assert {"fpga0", "gpu0", "tpu0", "migration-asic0"} <= names
