"""Tests for the composable dataflow API: expressions, datasets, programs."""

from __future__ import annotations

import pytest

from repro.eide import (
    DataflowProgram,
    HeterogeneousProgram,
    Param,
    canonicalize,
    col,
    dataset,
    lit,
    to_dataflow,
)
from repro.eide.expressions import bind_params, find_params
from repro.exceptions import CompilationError
from repro.stores.relational.expressions import (
    BooleanOp,
    ColumnRef,
    Comparison,
    InList,
    Literal,
)


class TestExpressionBuilders:
    def test_comparisons_build_predicates(self):
        predicate = col("age") > 60
        assert isinstance(predicate, Comparison)
        assert predicate.op == ">"
        assert predicate.evaluate({"age": 70}) and not predicate.evaluate({"age": 50})

    def test_equality_sugar_on_col(self):
        predicate = col("region") == "north"
        assert isinstance(predicate, Comparison) and predicate.op == "="
        assert (col("region") != "north").op == "!="

    def test_boolean_connectives(self):
        predicate = (col("age") > 60) & ~(col("region") == "north")
        assert predicate.evaluate({"age": 70, "region": "south"})
        assert not predicate.evaluate({"age": 70, "region": "north"})
        either = (col("a") > 1) | (col("b") > 1)
        assert either.evaluate({"a": 0, "b": 2})

    def test_membership_and_null_checks(self):
        assert col("x").isin(1, 2, 3).evaluate({"x": 2})
        assert col("x").isin([1, 2]).evaluate({"x": 1})
        assert col("x").is_null().evaluate({"x": None})
        assert col("x").is_not_null().evaluate({"x": 5})

    def test_arithmetic_operands(self):
        expr = (col("price") * col("qty")) > lit(10)
        assert expr.evaluate({"price": 3, "qty": 4})

    def test_python_and_or_rejected_loudly(self):
        # `a and b` would silently drop the first conjunct; `1 < col < 5`
        # would drop one bound.  Both must raise instead.
        from repro.exceptions import QueryError

        with pytest.raises(QueryError):
            bool((col("a") > 1) and (col("b") > 2))
        with pytest.raises(QueryError):
            1 < col("a") < 5

    def test_canonicalize_sorts_commutative_operands(self):
        a, b = col("age") > 60, col("pid") < 5
        assert canonicalize(a & b) == canonicalize(b & a)
        assert canonicalize(a | b) == canonicalize(b | a)

    def test_canonicalize_flattens_nested_conjunctions(self):
        a, b, c = col("x") > 1, col("y") > 2, col("z") > 3
        flat = canonicalize((a & b) & c)
        assert isinstance(flat, BooleanOp) and len(flat.operands) == 3

    def test_canonicalize_strips_col_sugar(self):
        predicate = canonicalize(col("age") > 60)
        assert type(predicate.left) is ColumnRef

    def test_params_found_and_bound_inside_expressions(self):
        predicate = (col("age") > Param("min_age", default=60)) & \
            col("region").isin(Param("regions"))
        declared = find_params(predicate)
        assert set(declared) == {"min_age", "regions"}
        bound = bind_params(predicate, lambda p: {"min_age": 50,
                                                  "regions": "north"}[p.name])
        assert bound.evaluate({"age": 55, "region": "north"})

    def test_param_comparison_fingerprint_stability(self):
        one = canonicalize(col("age") > Param("min_age", default=60))
        two = canonicalize(col("age") > Param("min_age", default=60))
        assert repr(one) == repr(two)


class TestDatasetBuilding:
    def test_scan_filter_project_chain(self):
        ds = (dataset("db").table("orders")
              .filter(col("amount") > 10).project("customer_id", "amount"))
        assert ds.node.kind == "project"
        assert ds.node.inputs[0].kind == "filter"
        assert ds.node.inputs[0].inputs[0].params["table"] == "orders"
        # combinators inherit the source engine
        assert ds.node.engine == "db"

    def test_filter_requires_expression(self):
        with pytest.raises(CompilationError):
            dataset("db").table("t").filter("age > 60")

    def test_join_requires_keys(self):
        left, right = dataset("db").table("a"), dataset("db").table("b")
        with pytest.raises(CompilationError):
            left.join(right)
        joined = left.join(right, on="k")
        assert joined.node.params["left_key"] == "k"

    def test_aggregate_kwarg_specs(self):
        ds = dataset("db").table("t").aggregate(
            ["region"], total=("sum", "amount"), n=("count", None))
        specs = ds.node.params["aggregates"]
        assert [(s.function, s.column, s.alias) for s in specs] == \
            [("sum", "amount", "total"), ("count", None, "n")]

    def test_kv_needs_keys_or_prefix(self):
        with pytest.raises(CompilationError):
            dataset("kv").kv()
        ds = dataset("kv").kv(key_prefix="user/")
        assert ds.node.kind == "kv_get"

    def test_text_and_graph_handles(self):
        hits = dataset("notes").text().search("sepsis", top_k=5)
        assert hits.node.kind == "text_search"
        features = dataset("notes").text().keyword_features(["sepsis"],
                                                            doc_prefix="note/")
        assert features.node.kind == "keyword_features"
        nodes = dataset("social").graph().nodes("person")
        assert nodes.node.kind == "graph_nodes"

    def test_apply_accepts_multiple_inputs(self):
        def merge(left, right):
            return left

        a, b = dataset("db").table("a"), dataset("db").table("b")
        ds = a.apply(merge, b)
        assert ds.node.kind == "python_udf" and len(ds.node.inputs) == 2

    def test_ml_heads_default_to_auto_engine(self):
        ds = dataset("db").table("t").train(label_column="y", model_name="m")
        assert ds.node.engine is None  # placement picks the tensor engine


class TestDataflowProgram:
    def _program(self) -> DataflowProgram:
        program = DataflowProgram("p")
        program.output("out", dataset("db").table("t").filter(col("x") > 1))
        return program

    def test_fingerprint_stable_and_structure_sensitive(self):
        assert self._program().fingerprint() == self._program().fingerprint()
        other = DataflowProgram("p")
        other.output("out", dataset("db").table("t").filter(col("x") > 2))
        assert other.fingerprint() != self._program().fingerprint()

    def test_commutative_conjunctions_share_fingerprints(self):
        a, b = col("x") > 1, col("y") < 2
        one = DataflowProgram("p")
        one.output("out", dataset("db").table("t").filter(a & b))
        two = DataflowProgram("p")
        two.output("out", dataset("db").table("t").filter(b & a))
        assert one.fingerprint() == two.fingerprint()

    def test_intermediate_labels_do_not_change_fingerprint(self):
        named = DataflowProgram("p")
        named.output("out", dataset("db").table("t")
                     .named("base").filter(col("x") > 1))
        assert named.fingerprint() == self._program().fingerprint()

    def test_freeze_blocks_output_mutation(self):
        program = self._program().freeze()
        assert program.frozen
        with pytest.raises(CompilationError):
            program.output("late", dataset("db").table("t"))

    def test_duplicate_output_rejected(self):
        program = self._program()
        with pytest.raises(CompilationError):
            program.output("out", dataset("db").table("t"))

    def test_same_dataset_under_two_names_rejected(self):
        # One operator cannot answer under two output names; the program
        # must refuse instead of silently dropping the first name.
        program = DataflowProgram("p")
        ds = dataset("db").table("t").filter(col("x") > 1)
        program.output("first", ds)
        with pytest.raises(CompilationError):
            program.output("second", ds)

    def test_output_does_not_mutate_shared_dataset(self):
        # The same dataset tail may appear in several programs under
        # different output names; building one program must not rename the
        # other's output.
        ds = dataset("db").table("t").filter(col("x") > 1)
        one = DataflowProgram("one")
        one.output("a", ds)
        two = DataflowProgram("two")
        two.output("b", ds)
        assert ds.node.label is None
        assert one.outputs == ["a"] and two.outputs == ["b"]

    def test_declared_params_walk_expression_trees(self):
        program = DataflowProgram("p")
        program.output("out", dataset("db").table("t")
                       .filter(col("x") > Param("min_x", default=0)))
        assert set(program.declared_params()) == {"min_x"}

    def test_describe_renders_trees(self):
        text = self._program().describe()
        assert "scan" in text and "filter" in text and "out" in text

    def test_fingerprint_requires_outputs(self):
        with pytest.raises(CompilationError):
            DataflowProgram("empty").fingerprint()


class TestLegacyConversion:
    def test_sql_fragments_parse_into_trees(self):
        program = HeterogeneousProgram("legacy")
        program.sql("q", "SELECT pid FROM t WHERE age > 60", engine="db")
        flow = to_dataflow(program)
        (name, root), = flow.output_items()
        assert name == "q"
        kinds = [node.kind for node in root.walk()]
        assert kinds == ["scan", "filter", "project"]
        filter_node = [n for n in root.walk() if n.kind == "filter"][0]
        assert isinstance(filter_node.params["predicate"], Comparison)

    def test_legacy_fingerprint_ignores_sql_formatting(self):
        one = HeterogeneousProgram("p")
        one.sql("q", "SELECT pid FROM t WHERE age > 60", engine="db")
        two = HeterogeneousProgram("p")
        two.sql("q", "SELECT  pid  FROM  t  WHERE  age > 60", engine="db")
        assert one.fingerprint() == two.fingerprint()

    def test_shared_fragment_converts_once(self):
        program = HeterogeneousProgram("p")
        program.sql("base", "SELECT pid FROM t", engine="db")
        program.join("selfjoin", left="base", right="base", on="pid")
        flow = to_dataflow(program)
        (_, root), = flow.output_items()
        assert root.inputs[0] is root.inputs[1]


class TestLiteralHelpers:
    def test_inlist_and_literal_types(self):
        predicate = col("x").isin(1, 2)
        assert isinstance(predicate, InList)
        assert isinstance(lit(5), Literal)
