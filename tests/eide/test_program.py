"""Tests for the EIDE program model and the natural-language frontend."""

from __future__ import annotations

import pytest

from repro.eide import (
    HeterogeneousProgram,
    Param,
    SubProgram,
    compile_natural_language,
    recognize_intent,
)
from repro.exceptions import CompilationError


def _build_demo() -> HeterogeneousProgram:
    program = HeterogeneousProgram("demo")
    program.sql("a", "SELECT x FROM t", engine="db")
    program.timeseries_summary("b", series_prefix="hr/")
    program.join("c", left="a", right="b", on="x")
    program.output("c")
    return program


class TestFreezeAndFingerprint:
    def test_fingerprint_stable_across_rebuilds(self):
        assert _build_demo().fingerprint() == _build_demo().fingerprint()

    def test_fingerprint_sensitive_to_structure(self):
        base = _build_demo().fingerprint()
        renamed = HeterogeneousProgram("demo2")
        renamed.sql("a", "SELECT x FROM t", engine="db")
        assert renamed.fingerprint() != base
        changed_sql = _build_demo()
        changed_sql.fragment("a").params["query"] = "SELECT y FROM t"
        assert changed_sql.fingerprint() != base

    def test_python_callables_hash_by_identity(self):
        def transform(table):
            return table

        one = HeterogeneousProgram("py")
        one.python("t", transform)
        again = HeterogeneousProgram("py")
        again.python("t", transform)
        other = HeterogeneousProgram("py")
        other.python("t", lambda table: table)
        assert one.fingerprint() == again.fingerprint()
        assert one.fingerprint() != other.fingerprint()

    def test_freeze_blocks_mutation(self):
        program = _build_demo().freeze()
        assert program.frozen
        with pytest.raises(CompilationError):
            program.sql("late", "SELECT 1 FROM t")
        with pytest.raises(CompilationError):
            program.output("a")

    def test_declared_params_found_in_nested_values(self):
        program = HeterogeneousProgram("parametrized")
        program.timeseries_summary("b", series_prefix="hr/",
                                   end=Param("end", default=None))
        program.kv_lookup("k", keys=[Param("key")])
        declared = program.declared_params()
        assert set(declared) == {"end", "key"}
        assert declared["end"].has_default and not declared["key"].has_default


class TestProgramModel:
    def test_fluent_builder_and_dependencies(self):
        program = HeterogeneousProgram("demo")
        program.sql("a", "SELECT x FROM t", engine="db")
        program.timeseries_summary("b", series_prefix="hr/")
        program.join("c", left="a", right="b", on="x")
        program.train("d", features="c", label_column="y")
        program.output("d")
        assert len(program) == 4
        assert program.fragment("c").inputs == ["a", "b"]
        assert program.outputs == ["d"]
        assert set(program.paradigms_used()) == {"sql", "timeseries_summary", "join", "train"}

    def test_duplicate_fragment_name_rejected(self):
        program = HeterogeneousProgram("demo")
        program.sql("a", "SELECT x FROM t")
        with pytest.raises(CompilationError):
            program.sql("a", "SELECT y FROM t")

    def test_unknown_dependency_rejected(self):
        program = HeterogeneousProgram("demo")
        with pytest.raises(CompilationError):
            program.join("j", left="ghost", right="ghost2", on="x")

    def test_join_requires_keys(self):
        program = HeterogeneousProgram("demo")
        program.sql("a", "SELECT x FROM t")
        program.sql("b", "SELECT x FROM u")
        with pytest.raises(CompilationError):
            program.join("c", left="a", right="b")

    def test_kv_lookup_requires_keys_or_prefix(self):
        program = HeterogeneousProgram("demo")
        with pytest.raises(CompilationError):
            program.kv_lookup("k")

    def test_unknown_paradigm_rejected(self):
        with pytest.raises(CompilationError):
            SubProgram("x", "quantum", {})

    def test_default_output_is_last_fragment(self):
        program = HeterogeneousProgram("demo")
        program.sql("a", "SELECT x FROM t")
        program.sql("b", "SELECT y FROM t")
        assert program.outputs == ["b"]

    def test_output_requires_known_fragment(self):
        program = HeterogeneousProgram("demo")
        with pytest.raises(CompilationError):
            program.output("nope")

    def test_describe_lists_fragments(self):
        program = HeterogeneousProgram("demo")
        program.sql("a", "SELECT x FROM t", engine="db")
        text = program.describe()
        assert "a: sql @ db" in text


class TestNaturalLanguage:
    def test_recognize_icu_stay_intent(self):
        intent = recognize_intent(
            "Will patients have a long stay at the hospital when they exit the ICU?")
        assert intent.name == "predict_stay"

    def test_recognize_history_with_patient_slot(self):
        intent = recognize_intent("Show the admission history of patient 42")
        assert intent.name == "patient_history"
        assert intent.slots["patient_id"] == "42"

    def test_recognize_top_customers_with_number(self):
        intent = recognize_intent("Who are the top 25 customers by spend?")
        assert intent.name == "top_customers"
        assert intent.slots["number"] == "25"

    def test_unknown_text_raises(self):
        with pytest.raises(CompilationError):
            recognize_intent("please water the office plants")

    def test_compile_predict_stay_program_shape(self):
        program = compile_natural_language(
            "Will patients have a long stay at the hospital (> 5 days)?")
        assert "train" in program.paradigms_used()
        assert "sql" in program.paradigms_used()
        assert program.outputs == ["model"]

    def test_compile_history_embeds_patient_id(self):
        program = compile_natural_language("admission history of patient 7",
                                           relational_engine="db1")
        query = program.fragment("history").params["query"]
        assert "pid = 7" in query
        assert program.fragment("history").engine == "db1"

    def test_compile_top_customers_limit(self):
        program = compile_natural_language("top 3 customers this quarter")
        assert "LIMIT 3" in program.fragment("spend").params["query"]

    def test_compile_recommendation(self):
        program = compile_natural_language("recommend the next best offer for users")
        assert "kv_lookup" in program.paradigms_used()
