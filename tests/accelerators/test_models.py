"""Tests for the LogCA and Roofline analytical models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerators import LogCAModel, LogCAParameters, RooflineModel
from repro.exceptions import AcceleratorError


def make_model(**overrides) -> LogCAModel:
    parameters = {
        "latency_per_byte_s": 1e-9,
        "overhead_s": 1e-4,
        "compute_index_s_per_byte": 5e-8,
        "peak_acceleration": 20.0,
        "beta": 1.0,
    }
    parameters.update(overrides)
    return LogCAModel(LogCAParameters(**parameters))


class TestLogCA:
    def test_small_granularity_not_beneficial(self):
        model = make_model()
        assert not model.offload_beneficial(64)

    def test_large_granularity_beneficial(self):
        model = make_model()
        assert model.offload_beneficial(10_000_000)

    def test_break_even_separates_regimes(self):
        model = make_model()
        g1 = model.break_even_granularity()
        assert g1 is not None
        assert model.speedup(g1 * 0.5) < 1.0 < model.speedup(g1 * 2.0)

    def test_speedup_bounded_by_asymptote(self):
        model = make_model()
        asymptote = model.asymptotic_speedup()
        assert model.speedup(1e11) <= asymptote + 1e-6
        assert asymptote <= model.parameters.peak_acceleration

    def test_half_peak_granularity_larger_than_break_even(self):
        model = make_model(beta=1.2)
        g1 = model.break_even_granularity()
        g_half = model.half_peak_granularity()
        assert g1 is not None and g_half is not None and g_half > g1

    def test_never_breaks_even_when_latency_dominates(self):
        model = make_model(latency_per_byte_s=1e-6, peak_acceleration=2.0)
        assert model.break_even_granularity(upper_bytes=1e9) is None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(AcceleratorError):
            LogCAParameters(-1e-9, 0.0, 1e-8, 10.0)
        with pytest.raises(AcceleratorError):
            LogCAParameters(1e-9, 0.0, 1e-8, 0.0)

    def test_zero_granularity_rejected(self):
        with pytest.raises(AcceleratorError):
            make_model().speedup(0)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(1e2, 1e9))
    def test_property_speedup_monotone_for_linear_kernels(self, granularity):
        """For beta=1 the speedup never decreases with granularity."""
        model = make_model()
        assert model.speedup(granularity * 2) >= model.speedup(granularity) - 1e-9

    def test_speedup_curve_shape(self):
        model = make_model()
        curve = model.speedup_curve([1e3, 1e5, 1e7])
        speedups = [s for _, s in curve]
        assert speedups == sorted(speedups)


class TestRoofline:
    def test_ridge_point(self):
        roofline = RooflineModel(peak_gflops=1000.0, memory_bandwidth_gbs=100.0)
        assert roofline.ridge_point == 10.0

    def test_memory_vs_compute_bound(self):
        roofline = RooflineModel(1000.0, 100.0)
        assert roofline.is_memory_bound(1.0)
        assert not roofline.is_memory_bound(100.0)
        assert roofline.attainable_gflops(1.0) == 100.0
        assert roofline.attainable_gflops(100.0) == 1000.0

    def test_execution_time_uses_binding_ceiling(self):
        roofline = RooflineModel(1000.0, 100.0)
        # Low intensity: bandwidth bound -> time = bytes / bandwidth.
        assert roofline.execution_time_s(1e9, 1e9) == pytest.approx(1e9 / (100.0 * 1e9))
        # High intensity: compute bound -> time = flops / peak.
        assert roofline.execution_time_s(1e12, 1e6) == pytest.approx(1e12 / (1000.0 * 1e9))

    def test_degenerate_cases(self):
        roofline = RooflineModel(1000.0, 100.0)
        assert roofline.execution_time_s(0, 0) == 0.0
        assert roofline.execution_time_s(0, 1e6) > 0.0
        assert roofline.execution_time_s(1e6, 0) > 0.0

    def test_invalid_parameters(self):
        with pytest.raises(AcceleratorError):
            RooflineModel(0.0, 10.0)
        with pytest.raises(AcceleratorError):
            RooflineModel(10.0, 10.0).attainable_gflops(0.0)

    def test_curve_is_nondecreasing(self):
        roofline = RooflineModel(500.0, 50.0)
        values = [v for _, v in roofline.curve([0.1, 1.0, 10.0, 100.0])]
        assert values == sorted(values)
