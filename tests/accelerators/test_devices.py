"""Tests for the simulated accelerator devices and the offload planner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerators import (
    CGRAAccelerator,
    FPGAAccelerator,
    GPUAccelerator,
    KernelRegistry,
    KernelSpec,
    MigrationASIC,
    Objective,
    OffloadPlanner,
    TPUAccelerator,
    WorkEstimate,
)
from repro.datamodel import DataType, Table, make_schema
from repro.exceptions import AcceleratorError


@pytest.fixture
def fleet():
    return [FPGAAccelerator(), GPUAccelerator(), TPUAccelerator(), CGRAAccelerator(),
            MigrationASIC()]


class TestFunctionalKernels:
    def test_fpga_bitonic_sort_is_correct(self):
        fpga = FPGAAccelerator()
        values, report = fpga.offload("bitonic_sort", [5, 2, 9, 1])
        assert values == [1, 2, 5, 9]
        assert report.total_s > 0
        assert report.kernel == "bitonic_sort"

    def test_fpga_filter_and_project(self):
        fpga = FPGAAccelerator()
        rows = [{"a": i, "b": i * 2} for i in range(10)]
        kept, _ = fpga.offload("filter", rows, lambda r: r["a"] >= 5)
        assert len(kept) == 5
        projected, report = fpga.offload("project", rows, ["a"])
        assert projected[0] == {"a": 0}
        assert report.bytes_moved > 0

    def test_gpu_gemm_matches_numpy(self):
        gpu = GPUAccelerator()
        a, b = np.random.default_rng(0).normal(size=(8, 8)), np.eye(8)
        result, _ = gpu.offload("gemm", a, b)
        assert np.allclose(result, a)

    def test_tpu_rejects_non_2d(self):
        with pytest.raises(AcceleratorError):
            TPUAccelerator().offload("gemm", np.ones(3), np.ones(3))

    def test_unknown_kernel_rejected(self):
        with pytest.raises(AcceleratorError):
            GPUAccelerator().offload("bitonic_sort", [1, 2])

    def test_migration_asic_roundtrip(self):
        asic = MigrationASIC()
        schema = make_schema(("a", DataType.INT), ("b", DataType.FLOAT))
        table = Table(schema, [(i, i * 1.5) for i in range(20)])
        payload, _ = asic.offload("serialize", table)
        restored, _ = asic.offload("deserialize", payload, schema)
        assert restored.rows == table.rows

    def test_cgra_sort_and_reduce(self):
        cgra = CGRAAccelerator()
        values, _ = cgra.offload("sort", [3.0, 1.0, 2.0])
        assert values == [1.0, 2.0, 3.0]
        total, _ = cgra.offload("reduce", np.arange(10.0))
        assert total == 45.0


class TestCostAccounting:
    def test_reports_accumulate(self):
        fpga = FPGAAccelerator()
        fpga.offload("bitonic_sort", list(range(100)))
        fpga.offload("filter", [{"a": 1}], lambda r: True)
        assert len(fpga.reports) == 2
        assert fpga.total_simulated_time() > 0
        assert fpga.total_energy() > 0
        fpga.reset_reports()
        assert fpga.reports == []

    def test_reconfiguration_charged_on_kernel_change(self):
        fpga = FPGAAccelerator()
        first = fpga.estimate(KernelSpec("bitonic_sort", 1024, 1024, 1000, 100))
        second = fpga.estimate(KernelSpec("filter", 1024, 1024, 1000, 100))
        third = fpga.estimate(KernelSpec("filter", 1024, 1024, 1000, 100))
        assert first.reconfiguration_s == 0.0
        assert second.reconfiguration_s == fpga.profile.reconfiguration_s
        assert third.reconfiguration_s == 0.0

    def test_larger_transfers_cost_more(self):
        gpu = GPUAccelerator()
        small = gpu.estimate(KernelSpec("gemm", 10_000, 10_000, 10_000, 100_000))
        large = gpu.estimate(KernelSpec("gemm", 10_000_000, 10_000_000, 10_000, 100_000))
        assert large.transfer_s > small.transfer_s

    def test_gpu_small_launch_penalty(self):
        gpu = GPUAccelerator()
        tiny = gpu.estimate(KernelSpec("gemm", 1024, 1024, 1_000_000, elements=64))
        big = gpu.estimate(KernelSpec("gemm", 1024, 1024, 1_000_000, elements=1 << 20))
        assert tiny.compute_s > big.compute_s

    def test_describe_lists_kernels(self):
        description = FPGAAccelerator().describe()
        assert "bitonic_sort" in description["kernels"]
        assert description["mode"] == "coprocessor"


class TestPlanner:
    def test_registry_candidates(self, fleet):
        registry = KernelRegistry(fleet)
        operators = registry.accelerable_operators()
        assert {"sort", "filter", "gemm", "serialize"} <= set(operators)
        assert registry.best("sort", WorkEstimate(rows=1000)) is not None
        assert registry.candidates("unknown_operator") == []

    def test_sort_offload_crossover(self, fleet):
        planner = OffloadPlanner(KernelRegistry(fleet))
        small = planner.decide("sort", WorkEstimate(rows=500))
        large = planner.decide("sort", WorkEstimate(rows=2_000_000))
        assert not small.offloaded
        assert large.offloaded
        assert large.speedup > 1.0

    def test_gemm_prefers_accelerator_for_big_matrices(self, fleet):
        planner = OffloadPlanner(KernelRegistry(fleet))
        decision = planner.decide("gemm", WorkEstimate(matrix_dims=(2048, 2048, 2048)))
        assert decision.offloaded
        assert decision.target in ("gpu0", "tpu0")

    def test_unknown_operator_stays_on_host(self, fleet):
        planner = OffloadPlanner(KernelRegistry(fleet))
        decision = planner.decide("shortest_path_xyz", WorkEstimate(rows=100))
        assert decision.target == "host"
        assert decision.accelerator_time_s is None

    def test_energy_objective_changes_scores(self, fleet):
        latency_planner = OffloadPlanner(KernelRegistry(fleet), objective=Objective.LATENCY)
        energy_planner = OffloadPlanner(KernelRegistry(fleet), objective=Objective.ENERGY)
        work = WorkEstimate(rows=200_000)
        assert latency_planner.decide("filter", work) is not None
        assert energy_planner.decide("filter", work) is not None

    def test_summary_counts(self, fleet):
        planner = OffloadPlanner(KernelRegistry(fleet))
        planner.decide("sort", WorkEstimate(rows=10))
        planner.decide("sort", WorkEstimate(rows=5_000_000))
        summary = planner.summary()
        assert summary["offloaded"] + summary["host"] == 2

    def test_accelerator_named(self, fleet):
        planner = OffloadPlanner(KernelRegistry(fleet))
        assert planner.accelerator_named("gpu0").profile.name == "gpu0"
        with pytest.raises(AcceleratorError):
            planner.accelerator_named("missing")
