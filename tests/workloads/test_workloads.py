"""Tests for the synthetic workload generators and their programs."""

from __future__ import annotations

import pytest

from repro.core import build_cpu_polystore
from repro.stores import (
    GraphEngine,
    KeyValueEngine,
    MLEngine,
    RelationalEngine,
    TimeseriesEngine,
)
from repro.workloads import (
    build_recommendation_program,
    build_snorkel_program,
    build_top_spenders_program,
    generate_documents,
    generate_mimic,
    generate_recommendation,
    load_documents,
    load_recommendation,
    run_labeling_pipeline,
    weak_labels,
)
from repro.workloads.mimic import load_mimic


class TestMimicGenerator:
    def test_generation_is_reproducible(self):
        a = generate_mimic(40, seed=5)
        b = generate_mimic(40, seed=5)
        assert a.admissions.rows == b.admissions.rows
        assert a.notes == b.notes

    def test_shapes_and_label_balance(self):
        dataset = generate_mimic(300, seed=1)
        assert dataset.num_patients == 300
        labels = dataset.admissions.column("long_stay")
        positive_rate = sum(labels) / len(labels)
        assert 0.05 < positive_rate < 0.8
        assert len(dataset.vitals) == 300
        assert len(dataset.notes) == 300

    def test_acute_notes_mention_keywords_more_often(self):
        dataset = generate_mimic(300, seed=2)
        by_label = {0: 0, 1: 0}
        counts = {0: 0, 1: 0}
        for row in dataset.admissions.to_dicts():
            note = dataset.notes[row["pid"]]
            mentions = int("sepsis" in note or "ventilator" in note)
            by_label[row["long_stay"]] += mentions
            counts[row["long_stay"]] += 1
        assert by_label[1] / counts[1] > by_label[0] / counts[0]

    def test_load_into_engines_with_graph(self):
        dataset = generate_mimic(20, seed=3)
        relational, timeseries = RelationalEngine("clinical-db"), TimeseriesEngine("monitors")
        from repro.stores import TextEngine
        text, graph = TextEngine("notes-db"), GraphEngine("wards")
        load_mimic(dataset, relational=relational, timeseries=timeseries, text=text,
                   graph=graph)
        assert relational.table_statistics("admissions")["rows"] == 20
        assert len(timeseries.list_series()) == 20
        assert graph.graph.num_edges > 0


class TestRecommendation:
    def test_generation_and_loading(self):
        dataset = generate_recommendation(50, seed=4)
        relational, kv, ts = RelationalEngine("sales-db"), KeyValueEngine("profiles"), \
            TimeseriesEngine("clickstream")
        load_recommendation(dataset, relational=relational, keyvalue=kv, timeseries=ts)
        assert relational.table_statistics("customers")["rows"] == 50
        assert relational.table_statistics("transactions")["rows"] > 50
        assert len(kv) == 50
        assert len(ts.list_series()) == 50

    def test_end_to_end_recommendation_program(self):
        dataset = generate_recommendation(120, seed=6)
        relational, kv, ts, ml = (RelationalEngine("sales-db"), KeyValueEngine("profiles"),
                                  TimeseriesEngine("clickstream"), MLEngine("reco-ml"))
        load_recommendation(dataset, relational=relational, keyvalue=kv, timeseries=ts)
        system = build_cpu_polystore([relational, kv, ts, ml])
        result = system.execute(build_recommendation_program(epochs=2),
                                mode="cpu_polystore")
        model = result.output("offer_model")
        assert model["rows"] == 120
        assert model["metrics"]["accuracy"] > 0.5

    def test_top_spenders_query(self):
        dataset = generate_recommendation(60, seed=7)
        relational = RelationalEngine("sales-db")
        kv, ts = KeyValueEngine("profiles"), TimeseriesEngine("clickstream")
        load_recommendation(dataset, relational=relational, keyvalue=kv, timeseries=ts)
        system = build_cpu_polystore([relational, kv, ts, MLEngine("reco-ml")])
        result = system.execute(build_top_spenders_program(5), mode="cpu_polystore")
        table = result.output("top")
        assert len(table) == 5
        spends = table.column("total_spend")
        assert spends == sorted(spends, reverse=True)


class TestSnorkel:
    def test_weak_labels_majority_vote(self):
        rows = [{"length": 100, "num_tables": 5, "num_figures": 1,
                 "caption_overlap": 0.9, "header_score": 0.9}]
        assert weak_labels(rows)[0] == 1.0

    def test_pipeline_issues_one_query_per_batch(self):
        documents = generate_documents(300, seed=8)
        relational = RelationalEngine("corpus-db")
        load_documents(documents, relational)
        result = run_labeling_pipeline(relational, epochs=2, batch_size=100)
        assert result.sql_queries_issued == 2 * 3
        assert result.rows_loaded == 2 * 300
        assert result.accuracy_vs_true > 0.6

    def test_declarative_program_equivalent(self):
        documents = generate_documents(300, seed=9)
        relational = RelationalEngine("corpus-db")
        load_documents(documents, relational)
        system = build_cpu_polystore([relational, MLEngine("label-ml")])
        result = system.execute(build_snorkel_program(epochs=2), mode="cpu_polystore")
        assert result.output("label_model")["metrics"]["accuracy"] > 0.8


class TestSeedDeterminism:
    def test_generator_helpers_accept_seeds_and_generators(self):
        from repro.workloads import as_rng, rng_for
        from repro.workloads.generator import clinical_note, random_name, vital_sign_series

        assert random_name(21) == random_name(21)
        assert random_name(rng_for(21)) == random_name(21)
        assert clinical_note(5, acute=True) == clinical_note(5, acute=True)
        series = vital_sign_series(3, n_points=8, base=70.0, spread=2.0)
        assert series == vital_sign_series(3, n_points=8, base=70.0, spread=2.0)
        generator = rng_for(13)
        assert as_rng(generator) is generator

    def test_default_seed_makes_unseeded_generators_reproducible(self):
        from repro.workloads.generator import DEFAULT_SEED, random_name, rng_for

        assert rng_for().integers(1000) == rng_for(DEFAULT_SEED).integers(1000)
        # A shared generator varies call-to-call; a repeated seed does not.
        shared = rng_for()
        names = {random_name(shared) for _ in range(50)}
        assert len(names) > 1

    def test_datasets_identical_for_identical_seeds(self):
        first = generate_mimic(25, points_per_patient=4, seed=42)
        second = generate_mimic(25, points_per_patient=4, seed=42)
        different = generate_mimic(25, points_per_patient=4, seed=43)
        assert first.admissions.rows == second.admissions.rows
        assert first.notes == second.notes
        assert first.vitals == second.vitals
        assert different.admissions.rows != first.admissions.rows

    def test_labeling_pipeline_seed_reproducible(self):
        documents = generate_documents(200, seed=8)
        relational = RelationalEngine("corpus-db")
        load_documents(documents, relational)
        first = run_labeling_pipeline(relational, epochs=1, batch_size=100, seed=5)
        second = run_labeling_pipeline(relational, epochs=1, batch_size=100, seed=5)
        assert first.losses == second.losses
        assert first.accuracy_vs_true == second.accuracy_vs_true
