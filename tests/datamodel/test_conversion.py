"""Tests for cross-data-model conversions."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.datamodel import DataType, Table, make_schema
from repro.datamodel.conversion import (
    documents_to_table,
    kv_pairs_to_table,
    matrix_to_table,
    nodes_to_table,
    points_to_table,
    table_to_documents,
    table_to_edges,
    table_to_kv_pairs,
    table_to_matrix,
    table_to_points,
)
from repro.exceptions import DataModelError


@pytest.fixture
def table() -> Table:
    schema = make_schema(("pid", DataType.INT), ("age", DataType.INT),
                         ("note", DataType.STRING), ("score", DataType.FLOAT))
    return Table(schema, [(1, 70, "stable", 0.5), (2, 45, "sepsis", 0.9),
                          (3, 60, "ventilator", None)])


class TestMatrix:
    def test_numeric_columns_selected_by_default(self, table: Table):
        matrix = table_to_matrix(table)
        assert matrix.shape == (3, 3)   # pid, age, score

    def test_none_becomes_nan(self, table: Table):
        matrix = table_to_matrix(table, ["score"])
        assert math.isnan(matrix[2, 0])

    def test_string_column_rejected(self, table: Table):
        with pytest.raises(DataModelError):
            table_to_matrix(table, ["note"])

    def test_matrix_to_table_roundtrip(self):
        matrix = np.array([[1.0, 2.0], [3.0, 4.0]])
        restored = table_to_matrix(matrix_to_table(matrix, ["a", "b"]))
        assert np.allclose(restored, matrix)

    def test_matrix_name_mismatch(self):
        with pytest.raises(DataModelError):
            matrix_to_table(np.ones((2, 3)), ["just_one"])


class TestDocuments:
    def test_table_to_documents(self, table: Table):
        docs = table_to_documents(table, id_column="pid", text_columns=["note"])
        assert docs[0]["doc_id"] == 1
        assert docs[1]["text"] == "sepsis"
        assert docs[0]["metadata"]["age"] == 70

    def test_documents_to_table(self):
        table = documents_to_table([{"doc_id": 5, "text": "hello"}])
        assert table.column("doc_id") == ["5"]

    def test_unknown_column_raises(self, table: Table):
        with pytest.raises(DataModelError):
            table_to_documents(table, id_column="missing", text_columns=["note"])


class TestKeyValue:
    def test_roundtrip(self, table: Table):
        pairs = table_to_kv_pairs(table, key_column="pid")
        assert pairs[0][0] == "1"
        restored = kv_pairs_to_table(pairs, key_column="pid")
        assert restored.num_rows == 3

    def test_empty_pairs_raise(self):
        with pytest.raises(DataModelError):
            kv_pairs_to_table([])


class TestGraphAndPoints:
    def test_table_to_edges(self):
        schema = make_schema(("src", DataType.STRING), ("dst", DataType.STRING),
                             ("weight", DataType.FLOAT))
        table = Table(schema, [("a", "b", 1.0), ("b", "c", 2.0)])
        edges = table_to_edges(table, source_column="src", target_column="dst")
        assert edges[1]["target"] == "c"
        assert edges[1]["properties"]["weight"] == 2.0

    def test_nodes_to_table(self):
        table = nodes_to_table([{"node_id": "a", "degree": 3}])
        assert table.column("degree") == [3]

    def test_points_roundtrip(self, table: Table):
        points = table_to_points(table, time_column="age", value_column="score",
                                 series_column="pid")
        restored = points_to_table(points[:2])
        assert restored.column("series") == ["1", "2"]
