"""Tests for the shared in-memory Table."""

from __future__ import annotations

import pytest

from repro.datamodel import Column, DataType, Schema, Table, make_schema
from repro.exceptions import DataModelError, SchemaError


@pytest.fixture
def table() -> Table:
    schema = make_schema(("id", DataType.INT), ("name", DataType.STRING),
                         ("score", DataType.FLOAT))
    return Table(schema, [(1, "a", 0.5), (2, "b", 0.9), (3, "c", 0.1), (2, "b", 0.9)])


class TestConstruction:
    def test_from_dicts_infers_schema(self):
        table = Table.from_dicts([{"x": 1, "y": "a"}, {"x": 2, "y": "b"}])
        assert table.schema.names == ("x", "y")
        assert table.num_rows == 2

    def test_from_columns(self):
        table = Table.from_columns({"x": [1, 2, 3], "y": [0.1, 0.2, 0.3]})
        assert table.num_rows == 3
        assert table.column("y") == [0.1, 0.2, 0.3]

    def test_from_columns_mismatched_lengths(self):
        with pytest.raises(DataModelError):
            Table.from_columns({"x": [1, 2], "y": [1]})

    def test_validation_on_append(self, table: Table):
        with pytest.raises(SchemaError):
            table.append(("not int", "a", 0.5), validate=True)

    def test_empty(self):
        schema = make_schema(("a", DataType.INT))
        assert len(Table.empty(schema)) == 0


class TestDerivations:
    def test_select(self, table: Table):
        kept = table.select(lambda row: row["score"] > 0.4)
        assert {r[0] for r in kept} == {1, 2}

    def test_project_reorders(self, table: Table):
        projected = table.project(["score", "id"])
        assert projected.schema.names == ("score", "id")
        assert projected[0] == (0.5, 1)

    def test_sort_with_nones_first(self):
        schema = make_schema(("v", DataType.INT))
        table = Table(schema, [(3,), (None,), (1,)])
        assert table.sort(["v"]).column("v") == [None, 1, 3]

    def test_sort_descending(self, table: Table):
        assert table.sort(["score"], descending=True).column("score")[0] == 0.9

    def test_limit_negative_raises(self, table: Table):
        with pytest.raises(DataModelError):
            table.limit(-1)

    def test_distinct(self, table: Table):
        assert table.distinct().num_rows == 3

    def test_concat_schema_mismatch(self, table: Table):
        other = Table(make_schema(("id", DataType.INT)), [(1,)])
        with pytest.raises(SchemaError):
            table.concat(other)

    def test_concat(self, table: Table):
        combined = table.concat(table)
        assert combined.num_rows == 2 * table.num_rows

    def test_with_column(self, table: Table):
        extended = table.with_column(Column("flag", DataType.BOOL),
                                     [True, False, True, False])
        assert extended.schema.names[-1] == "flag"
        assert extended.column("flag") == [True, False, True, False]

    def test_with_column_length_mismatch(self, table: Table):
        with pytest.raises(DataModelError):
            table.with_column(Column("flag", DataType.BOOL), [True])

    def test_rename_shares_rows(self, table: Table):
        renamed = table.rename({"id": "identifier"})
        assert renamed.column("identifier") == table.column("id")

    def test_to_dicts_head(self, table: Table):
        assert table.head(2) == table.to_dicts()[:2]

    def test_estimated_bytes_scales_with_rows(self, table: Table):
        assert table.estimated_bytes() == table.schema.row_width() * len(table)

    def test_columns_view(self, table: Table):
        columns = table.columns()
        assert set(columns) == {"id", "name", "score"}
        assert columns["id"] == [1, 2, 3, 2]
