"""Tests for CSV and binary serialization (migration payload formats)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel import BinarySerializer, CsvSerializer, DataType, Schema, Table
from repro.datamodel.schema import Column
from repro.exceptions import DataModelError

SCHEMA = Schema([
    Column("id", DataType.INT),
    Column("name", DataType.STRING),
    Column("value", DataType.FLOAT),
    Column("flag", DataType.BOOL),
])


def make_table(rows) -> Table:
    return Table(SCHEMA, rows)


SAMPLE = make_table([
    (1, "alpha", 1.5, True),
    (2, "beta, with comma", -2.25, False),
    (3, None, None, None),
    (4, "quote 'inside'", 0.0, True),
])


@pytest.mark.parametrize("serializer", [CsvSerializer(), BinarySerializer()],
                         ids=["csv", "binary"])
class TestRoundTrip:
    def test_roundtrip_preserves_rows(self, serializer):
        payload, report = serializer.serialize(SAMPLE)
        restored, _ = serializer.deserialize(payload, SCHEMA)
        assert restored.rows == SAMPLE.rows
        assert report.rows == len(SAMPLE)

    def test_report_counts_conversions(self, serializer):
        _, report = serializer.serialize(SAMPLE)
        assert report.payload_bytes > 0
        assert report.value_conversions > 0

    def test_empty_table(self, serializer):
        empty = make_table([])
        payload, _ = serializer.serialize(empty)
        restored, _ = serializer.deserialize(payload, SCHEMA)
        assert len(restored) == 0


class TestCsv:
    def test_header_mismatch_raises(self):
        payload, _ = CsvSerializer().serialize(SAMPLE)
        wrong = Schema([Column("other", DataType.INT)])
        with pytest.raises(DataModelError):
            CsvSerializer().deserialize(payload, wrong)

    def test_empty_payload_raises(self):
        with pytest.raises(DataModelError):
            CsvSerializer().deserialize(b"", SCHEMA)

    def test_csv_is_larger_than_binary_for_numeric_data(self):
        schema = Schema([Column("a", DataType.FLOAT), Column("b", DataType.FLOAT)])
        table = Table(schema, [(i * 1.000001, i * -2.5) for i in range(200)])
        csv_payload, _ = CsvSerializer().serialize(table)
        binary_payload, _ = BinarySerializer().serialize(table)
        assert len(csv_payload) > len(binary_payload)


class TestBinary:
    def test_truncated_payload_raises(self):
        payload, _ = BinarySerializer().serialize(SAMPLE)
        with pytest.raises(DataModelError):
            BinarySerializer().deserialize(payload[: len(payload) // 2], SCHEMA)

    def test_too_short_payload_raises(self):
        with pytest.raises(DataModelError):
            BinarySerializer().deserialize(b"\x01", SCHEMA)


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(
        st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
        st.one_of(st.none(), st.text(alphabet="abcxyz ',\"0189", max_size=20)),
        st.one_of(st.none(),
                  st.floats(allow_nan=False, allow_infinity=False, width=32)),
        st.one_of(st.none(), st.booleans()),
    ),
    max_size=25,
))
def test_property_roundtrip_both_formats(rows):
    """Any table of supported values survives both serialization formats."""
    table = make_table(rows)
    for serializer in (CsvSerializer(), BinarySerializer()):
        payload, _ = serializer.serialize(table)
        restored, _ = serializer.deserialize(payload, SCHEMA)
        for original, recovered in zip(table.rows, restored.rows):
            assert recovered[0] == original[0]
            assert recovered[1] == original[1]
            if original[2] is None:
                assert recovered[2] is None
            else:
                assert recovered[2] == pytest.approx(original[2], rel=1e-9)
            assert recovered[3] == original[3]
