"""Tests for schemas and data types."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datamodel.schema import Column, DataType, Schema
from repro.exceptions import SchemaError


class TestDataType:
    def test_coerce_int(self):
        assert DataType.INT.coerce("42") == 42

    def test_coerce_float(self):
        assert DataType.FLOAT.coerce("3.5") == 3.5

    def test_coerce_none_passes_through(self):
        assert DataType.STRING.coerce(None) is None

    def test_coerce_failure_raises(self):
        with pytest.raises(SchemaError):
            DataType.INT.coerce("not a number")

    def test_validate_bool_is_not_int(self):
        assert not DataType.INT.validate(True)
        assert DataType.BOOL.validate(True)

    def test_float_accepts_int(self):
        assert DataType.FLOAT.validate(3)

    def test_fixed_widths(self):
        assert DataType.INT.fixed_width == 8
        assert DataType.STRING.fixed_width is None


class TestColumn:
    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", DataType.INT)

    def test_non_nullable_rejects_none(self):
        column = Column("age", DataType.INT, nullable=False)
        with pytest.raises(SchemaError):
            column.validate(None)

    def test_wrong_type_rejected(self):
        with pytest.raises(SchemaError):
            Column("age", DataType.INT).validate("old")

    def test_estimated_width_variable(self):
        assert Column("name", DataType.STRING).estimated_width() == 24


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", DataType.INT), Column("a", DataType.FLOAT)])

    def test_lookup_by_name_and_index(self):
        schema = Schema.from_pairs([("a", DataType.INT), ("b", DataType.STRING)])
        assert schema["a"].dtype is DataType.INT
        assert schema[1].name == "b"
        assert schema.index_of("b") == 1

    def test_unknown_column_raises(self):
        schema = Schema.from_pairs([("a", DataType.INT)])
        with pytest.raises(SchemaError):
            schema.index_of("missing")

    def test_project_and_drop(self):
        schema = Schema.from_pairs(
            [("a", DataType.INT), ("b", DataType.STRING), ("c", DataType.FLOAT)])
        assert schema.project(["c", "a"]).names == ("c", "a")
        assert schema.drop(["b"]).names == ("a", "c")

    def test_drop_unknown_raises(self):
        schema = Schema.from_pairs([("a", DataType.INT)])
        with pytest.raises(SchemaError):
            schema.drop(["zzz"])

    def test_rename_and_prefix(self):
        schema = Schema.from_pairs([("a", DataType.INT), ("b", DataType.STRING)])
        assert schema.rename({"a": "x"}).names == ("x", "b")
        assert schema.prefix("t_").names == ("t_a", "t_b")

    def test_concat_and_with_column(self):
        left = Schema.from_pairs([("a", DataType.INT)])
        right = Schema.from_pairs([("b", DataType.FLOAT)])
        assert left.concat(right).names == ("a", "b")
        assert left.with_column(Column("c", DataType.BOOL)).names == ("a", "c")

    def test_infer_from_dicts(self):
        schema = Schema.infer([
            {"a": 1, "b": "x", "c": None},
            {"a": 2, "b": "y", "c": 3.5},
        ])
        assert schema["a"].dtype is DataType.INT
        assert schema["b"].dtype is DataType.STRING
        assert schema["c"].dtype is DataType.FLOAT

    def test_infer_empty_raises(self):
        with pytest.raises(SchemaError):
            Schema.infer([])

    def test_validate_row_arity(self):
        schema = Schema.from_pairs([("a", DataType.INT), ("b", DataType.STRING)])
        with pytest.raises(SchemaError):
            schema.validate_row((1,))

    def test_coerce_row(self):
        schema = Schema.from_pairs([("a", DataType.INT), ("b", DataType.FLOAT)])
        assert schema.coerce_row(("3", "4.5")) == (3, 4.5)

    def test_row_width_positive(self):
        schema = Schema.from_pairs([("a", DataType.INT), ("b", DataType.STRING)])
        assert schema.row_width() == 32

    @given(st.lists(st.sampled_from(list(DataType)), min_size=1, max_size=6))
    def test_schema_equality_roundtrip(self, dtypes):
        columns = [Column(f"c{i}", dtype) for i, dtype in enumerate(dtypes)]
        assert Schema(columns) == Schema(list(columns))
        assert hash(Schema(columns)) == hash(Schema(list(columns)))
