"""ShardedEngine: routing, metadata aggregation, data_version semantics."""

from __future__ import annotations

import pytest

from repro.cluster import HashPartitioner, RangePartitioner, ShardedEngine
from repro.core import build_accelerated_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.exceptions import ConfigurationError, StorageError
from repro.stores import KeyValueEngine, RelationalEngine, TimeseriesEngine
from repro.stores.base import Concurrency, DataModel


def _orders_schema():
    return make_schema(("order_id", DataType.INT), ("customer", DataType.STRING),
                       ("amount", DataType.FLOAT))


def _loaded_relational(num_shards: int = 3, rows: int = 60) -> ShardedEngine:
    engine = ShardedEngine("ordersdb", RelationalEngine, num_shards)
    engine.load_table("orders", Table(_orders_schema(), [
        (i, f"c{i % 5}", float(i % 11)) for i in range(rows)
    ]))
    return engine


class TestConstruction:
    def test_factory_class_names_shards(self):
        engine = ShardedEngine("db", RelationalEngine, 2)
        assert [shard.name for shard in engine.shards] == ["db-s0", "db-s1"]
        assert engine.primary is engine.shard(0)

    def test_factory_callable(self):
        engine = ShardedEngine("db", lambda i: KeyValueEngine(f"kv{i}"), 2)
        assert [shard.name for shard in engine.shards] == ["kv0", "kv1"]
        assert engine.data_model is DataModel.KEY_VALUE

    def test_contract_mirrors_shards(self):
        engine = ShardedEngine("db", RelationalEngine, 2)
        template = RelationalEngine("t")
        assert engine.data_model is template.data_model
        assert engine.concurrency is Concurrency.THREAD_SAFE
        assert engine.capabilities() == template.capabilities()

    def test_explicit_partitioner(self):
        engine = ShardedEngine("db", RelationalEngine,
                               partitioner=RangePartitioner([50]))
        assert engine.num_shards == 2

    def test_configuration_errors(self):
        with pytest.raises(ConfigurationError):
            ShardedEngine("db", RelationalEngine)  # no shard count at all
        with pytest.raises(ConfigurationError):
            ShardedEngine("db", RelationalEngine, 3,
                          partitioner=HashPartitioner(2))
        with pytest.raises(ConfigurationError):
            ShardedEngine("db", dict, 2)  # not an Engine class
        with pytest.raises(ConfigurationError):
            ShardedEngine("db", lambda i: object(), 2)

    def test_describe_reports_topology(self):
        engine = _loaded_relational(2)
        description = engine.describe()
        assert description["shards"] == ["ordersdb-s0", "ordersdb-s1"]
        assert description["partitioner"]["num_shards"] == 2
        assert description["shard_keys"] == {"orders": "order_id"}
        assert description["rebalancing"] is False


class TestRelationalRouting:
    def test_rows_route_by_shard_key_and_cover_all_data(self):
        engine = _loaded_relational(3, rows=90)
        per_shard = [len(shard.scan("orders")) for shard in engine.shards]
        assert sum(per_shard) == 90
        assert all(count > 0 for count in per_shard)
        merged = engine.scan("orders")
        assert len(merged) == 90
        assert sorted(merged.column("order_id")) == list(range(90))

    def test_rows_placed_on_partitioner_chosen_shard(self):
        engine = _loaded_relational(3, rows=30)
        for shard_index, shard in enumerate(engine.shards):
            for order_id in shard.scan("orders").column("order_id"):
                assert engine.partitioner.shard_for(order_id) == shard_index

    def test_declared_shard_key_column(self):
        engine = ShardedEngine("db", RelationalEngine, 2)
        engine.create_table("orders", _orders_schema(), shard_key="customer")
        assert engine.shard_key_for("orders") == "customer"
        engine.insert("orders", [(1, "alice", 5.0), (2, "alice", 6.0)])
        # Same customer -> same shard, whatever the order ids.
        owning = [len(shard.scan("orders")) for shard in engine.shards]
        assert sorted(owning) == [0, 2]

    def test_insert_dicts_routes(self):
        engine = ShardedEngine("db", RelationalEngine, 2)
        engine.create_table("orders", _orders_schema())
        engine.insert_dicts("orders", [
            {"order_id": 1, "customer": "a", "amount": 1.0},
            {"order_id": 2, "customer": "b", "amount": 2.0},
        ])
        assert len(engine.scan("orders")) == 2

    def test_unknown_shard_key_rejected(self):
        engine = ShardedEngine("db", RelationalEngine, 2)
        with pytest.raises(StorageError):
            engine.create_table("orders", _orders_schema(), shard_key="nope")

    def test_insert_without_declared_key_rejected(self):
        engine = ShardedEngine("db", RelationalEngine, 2)
        engine.shard(0).create_table("orders", _orders_schema())
        with pytest.raises(StorageError):
            engine.insert("orders", [(1, "a", 1.0)])

    def test_table_statistics_aggregate(self):
        engine = _loaded_relational(3, rows=60)
        stats = engine.table_statistics("orders")
        assert stats["rows"] == 60
        assert stats["shards"] == 3
        assert sum(stats["shard_rows"]) == 60
        assert engine.has_table("orders") and engine.list_tables() == ["orders"]
        assert engine.table_schema("orders").names == ("order_id", "customer", "amount")

    def test_drop_table_everywhere(self):
        engine = _loaded_relational(2)
        engine.drop_table("orders")
        assert not engine.has_table("orders")
        assert engine.shard_key_for("orders") is None


class TestKeyValueRouting:
    def test_put_get_delete_route(self):
        engine = ShardedEngine("profiles", KeyValueEngine, 3)
        engine.put_many({f"user/{i}": {"uid": i} for i in range(30)})
        assert engine.get("user/7") == {"uid": 7}
        assert engine.get("missing", "fallback") == "fallback"
        engine.delete("user/7")
        assert engine.get("user/7") is None
        per_shard = [len(shard.keys()) for shard in engine.shards]
        assert sum(per_shard) == 29 and all(count > 0 for count in per_shard)

    def test_multi_get_and_merged_range(self):
        engine = ShardedEngine("profiles", KeyValueEngine, 3)
        engine.put_many({f"k{i:03d}": i for i in range(40)})
        got = engine.multi_get(["k005", "k017", "nope"])
        assert got == {"k005": 5, "k017": 17}
        merged = list(engine.range("k010", "k020"))
        assert [key for key, _ in merged] == [f"k{i:03d}" for i in range(10, 20)]
        assert [key for key, _ in engine.scan()] == sorted(f"k{i:03d}" for i in range(40))


class TestTimeseriesRouting:
    def test_series_stay_whole_on_one_shard(self):
        engine = ShardedEngine("metrics", TimeseriesEngine, 3)
        for i in range(9):
            engine.append_many(f"hr/{i}", [(float(t), float(t + i)) for t in range(8)])
        engine.append("hr/0", 100.0, 42.0)
        assert engine.list_series() == sorted(f"hr/{i}" for i in range(9))
        assert engine.summarize("hr/0")["count"] == 9
        assert len(engine.query_range("hr/3")) == 8
        owner = engine.shard_for("hr/3")
        assert owner.has_series("hr/3")
        assert sum(len(shard.list_series()) for shard in engine.shards) == 9


class TestDataVersion:
    def test_any_shard_write_bumps_aggregate(self):
        engine = _loaded_relational(3)
        before = engine.data_version
        engine.insert("orders", [(1000, "cX", 1.0)])  # lands on one shard
        assert engine.data_version > before

    def test_direct_shard_write_also_visible(self):
        engine = _loaded_relational(2)
        before = engine.data_version
        engine.shard(1).mark_data_changed()
        assert engine.data_version == before + 1


class TestSystemRegistration:
    def test_registers_like_any_engine(self):
        system = build_accelerated_polystore([])
        engine = system.register_sharded_engine("ordersdb", RelationalEngine, 2)
        assert system.engine("ordersdb") is engine
        assert system.catalog.table_rows("ordersdb", "orders") == 0
        engine.load_table("orders", Table(_orders_schema(), [(1, "a", 2.0)]))
        assert system.catalog.table_rows("ordersdb", "orders") == 1

    def test_rebalance_rejects_plain_engines(self):
        system = build_accelerated_polystore([RelationalEngine("plain")])
        with pytest.raises(ConfigurationError):
            system.rebalance_sharded_engine("plain", 2)
