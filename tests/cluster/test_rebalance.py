"""Online rebalancing: correctness during the copy phase and after cutover."""

from __future__ import annotations

import pytest

from repro import HeterogeneousProgram
from repro.cluster import (
    HashPartitioner,
    RangePartitioner,
    ShardedEngine,
    ShardRebalancer,
)
from repro.core import build_cpu_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.exceptions import ConfigurationError, MigrationError
from repro.stores import KeyValueEngine, RelationalEngine, TimeseriesEngine

ROWS = [(i, f"c{i % 5}", float(i % 9)) for i in range(80)]


def _schema():
    return make_schema(("order_id", DataType.INT), ("customer", DataType.STRING),
                       ("amount", DataType.FLOAT))


def _sharded_deployment(num_shards: int = 2):
    system = build_cpu_polystore([])
    engine = system.register_sharded_engine("ordersdb", RelationalEngine, num_shards)
    engine.load_table("orders", Table(_schema(), ROWS))
    return system, engine


def _count_program():
    program = HeterogeneousProgram("count")
    program.sql("result", "SELECT count(*) AS n, sum(amount) AS total FROM orders",
                engine="ordersdb")
    program.output("result")
    return program


def _totals(system):
    return system.execute(_count_program()).output("result").to_dicts()[0]


class TestRelationalSplit:
    def test_queries_correct_during_and_after_2_to_4_split(self):
        system, engine = _sharded_deployment(2)
        before = _totals(system)
        assert before["n"] == 80

        # Phase 1: snapshot + dual-write installed; reads serve the OLD map.
        payloads = engine.begin_rebalance(HashPartitioner(4))
        assert engine.rebalancing
        assert _totals(system) == before

        # Writes during the copy phase land in both maps.
        engine.insert("orders", [(1000, "cX", 3.0)])
        during = _totals(system)
        assert during["n"] == 81 and during["total"] == before["total"] + 3.0
        assert engine.num_shards == 2  # still the old topology

        # Phase 2+3: copy the snapshot through the migrator, then cut over.
        rebalancer = ShardRebalancer(engine)
        for payload in payloads:
            received, _ = rebalancer.migrator.migrate(
                payload.table, source=payload.source_shard, target="ordersdb")
            engine.apply_payload(payload, received)
        engine.cutover()

        assert engine.num_shards == 4 and not engine.rebalancing
        after = _totals(system)
        assert after == during
        per_shard = [len(shard.scan("orders")) for shard in engine.shards]
        assert sum(per_shard) == 81 and all(count > 0 for count in per_shard)

    def test_full_rebalancer_path_and_report(self):
        system, engine = _sharded_deployment(2)
        expected = _totals(system)
        report = ShardRebalancer(engine).split(2)
        assert engine.num_shards == 4
        assert _totals(system) == expected
        assert report.old_shards == 2 and report.new_shards == 4
        assert report.moved_rows == 80
        assert report.payloads == 2
        assert report.migrated_bytes > 0
        assert report.migration_time_s > 0.0
        assert report.summary()["engine"] == "ordersdb"

    def test_system_convenience_charges_deployment_network(self):
        system, engine = _sharded_deployment(2)
        expected = _totals(system)
        report = system.rebalance_sharded_engine("ordersdb", 4)
        assert engine.num_shards == 4
        assert report.migrated_bytes > 0
        assert _totals(system) == expected

    def test_rebalance_onto_range_partitioner(self):
        system, engine = _sharded_deployment(2)
        expected = _totals(system)
        system.rebalance_sharded_engine(
            "ordersdb", partitioner=RangePartitioner([20, 40, 60]))
        assert engine.num_shards == 4
        assert _totals(system) == expected
        # Range placement: shard i owns a contiguous order_id band.
        assert sorted(engine.shard(0).scan("orders").column("order_id")) == \
            list(range(20))

    def test_data_version_strictly_increases_across_cutover(self):
        _, engine = _sharded_deployment(2)
        before = engine.data_version
        ShardRebalancer(engine).split(2)
        after = engine.data_version
        assert after > before
        engine.insert("orders", [(2000, "cY", 1.0)])
        assert engine.data_version > after

    def test_pinned_snapshots_invalidate_at_cutover(self):
        system, engine = _sharded_deployment(2)
        session = system.session()
        prepared = session.prepare(_count_program())
        prepared.run()
        replay = prepared.run()
        assert replay.report.cached_tasks > 0
        ShardRebalancer(engine).split(2)
        fresh = prepared.run()
        assert fresh.output("result").to_dicts()[0]["n"] == 80
        assert fresh.report.cached_tasks == 0  # cutover bumped data_version


class TestFailureAndMisuse:
    def test_failed_copy_aborts_and_keeps_old_map(self):
        system, engine = _sharded_deployment(2)
        expected = _totals(system)
        with pytest.raises(MigrationError):
            ShardRebalancer(engine, strategy="bogus").split(2)
        assert engine.num_shards == 2 and not engine.rebalancing
        assert _totals(system) == expected
        # A later rebalance succeeds.
        ShardRebalancer(engine).split(2)
        assert engine.num_shards == 4

    def test_double_begin_rejected(self):
        _, engine = _sharded_deployment(2)
        engine.begin_rebalance(HashPartitioner(4))
        with pytest.raises(ConfigurationError):
            engine.begin_rebalance(HashPartitioner(8))
        engine.abort_rebalance()
        assert not engine.rebalancing

    def test_cutover_and_apply_require_begin(self):
        _, engine = _sharded_deployment(2)
        with pytest.raises(ConfigurationError):
            engine.cutover()
        with pytest.raises(ConfigurationError):
            engine.pending_topology()

    def test_rebalance_needs_target(self):
        _, engine = _sharded_deployment(2)
        with pytest.raises(ValueError):
            ShardRebalancer(engine).rebalance()
        with pytest.raises(ValueError):
            ShardRebalancer(engine).split(0)


class TestKeyValueAndTimeseries:
    def test_kv_split_preserves_every_key(self):
        engine = ShardedEngine("profiles", KeyValueEngine, 2)
        engine.put_many({f"user/{i}": {"uid": i} for i in range(50)})
        payloads = engine.begin_rebalance(HashPartitioner(4))
        engine.put("user/999", {"uid": 999})  # dual-write during copy
        for payload in payloads:
            engine.apply_payload(payload)
        engine.cutover()
        assert engine.num_shards == 4
        assert len(list(engine.scan())) == 51
        assert engine.get("user/999") == {"uid": 999}
        assert engine.get("user/17") == {"uid": 17}

    def test_timeseries_split_keeps_series_whole(self):
        engine = ShardedEngine("metrics", TimeseriesEngine, 2)
        for i in range(10):
            engine.append_many(f"hr/{i}", [(float(t), float(t)) for t in range(12)])
        report = ShardRebalancer(engine).rebalance(5)
        assert engine.num_shards == 5
        assert report.moved_rows == 120
        assert report.migrated_bytes > 0  # series payloads travel as tables
        for i in range(10):
            summary = engine.summarize(f"hr/{i}")
            assert summary["count"] == 12
            # Exactly one shard owns the whole series.
            owners = [shard for shard in engine.shards if shard.has_series(f"hr/{i}")]
            assert len(owners) == 1


class TestDualWriteConsistency:
    def test_kv_updates_during_copy_survive_cutover(self):
        engine = ShardedEngine("profiles", KeyValueEngine, 2)
        engine.put_many({f"user/{i}": "old" for i in range(40)})
        payloads = engine.begin_rebalance(HashPartitioner(4))
        # Concurrent writes race the copy: an overwrite and a delete.
        engine.put("user/7", "NEW")
        engine.delete("user/13")
        for payload in payloads:
            engine.apply_payload(payload)  # snapshot replays AFTER the writes
        engine.cutover()
        assert engine.get("user/7") == "NEW", "copy clobbered a newer dual-write"
        assert engine.get("user/13") is None, "copy resurrected a deleted key"
        assert engine.get("user/20") == "old"
        assert len(list(engine.scan())) == 39

    def test_override_tracking_resets_between_rebalances(self):
        engine = ShardedEngine("profiles", KeyValueEngine, 2)
        engine.put("a", 1)
        payloads = engine.begin_rebalance(HashPartitioner(4))
        engine.put("a", 2)
        for payload in payloads:
            engine.apply_payload(payload)
        engine.cutover()
        assert engine.get("a") == 2
        # Second rebalance: "a" is no longer an override, so the snapshot
        # (which now contains the value 2) must be applied normally.
        ShardRebalancer(engine).rebalance(3)
        assert engine.get("a") == 2


class TestTimeseriesFidelity:
    def test_tags_and_empty_series_survive_rebalance(self):
        engine = ShardedEngine("metrics", TimeseriesEngine, 2)
        engine.create_series("hr/1", {"unit": "bpm"})
        engine.append_many("hr/1", [(1.0, 60.0), (2.0, 61.0)])
        engine.create_series("hr/empty", {"unit": "bpm"})
        ShardRebalancer(engine).rebalance(4)
        assert engine.list_series() == ["hr/1", "hr/empty"]
        assert engine.list_series({"unit": "bpm"}) == ["hr/1", "hr/empty"]
        assert engine.has_series("hr/empty")
        assert engine.query_range("hr/empty") == []
        assert [p.value for p in engine.query_range("hr/1")] == [60.0, 61.0]


class TestConstructionGuards:
    def test_non_partitionable_models_rejected(self):
        from repro.stores import GraphEngine, MLEngine

        with pytest.raises(ConfigurationError):
            ShardedEngine("g", GraphEngine, 2)
        with pytest.raises(ConfigurationError):
            ShardedEngine("m", MLEngine, 2)

    def test_topology_is_a_consistent_pair(self):
        _, engine = _sharded_deployment(2)
        shards, partitioner = engine.topology()
        assert len(shards) == partitioner.num_shards == 2
        engine.begin_rebalance(HashPartitioner(4))
        shards, partitioner = engine.topology()  # still the serving (old) map
        assert len(shards) == partitioner.num_shards == 2
        engine.abort_rebalance()


class TestTagDualWriteRace:
    def test_tags_survive_when_dual_write_creates_series_first(self):
        engine = ShardedEngine("metrics", TimeseriesEngine, 2)
        engine.create_series("hr/1", {"unit": "bpm"})
        engine.append_many("hr/1", [(1.0, 60.0)])
        payloads = engine.begin_rebalance(HashPartitioner(4))
        # This append auto-creates 'hr/1' TAGLESS on the pending shard
        # before the snapshot payload (which carries the tags) is applied.
        engine.append("hr/1", 2.0, 61.0)
        for payload in payloads:
            engine.apply_payload(payload)
        engine.cutover()
        assert engine.list_series({"unit": "bpm"}) == ["hr/1"]
        assert [p.value for p in engine.query_range("hr/1")] == [60.0, 61.0]

    def test_document_engines_shard_but_do_not_rebalance(self):
        from repro.stores import TextEngine

        engine = ShardedEngine("notes", TextEngine, 2)
        engine.add_document("d1", "hello world")
        with pytest.raises(ConfigurationError):
            ShardRebalancer(engine).split(2)
        assert engine.num_shards == 2 and not engine.rebalancing
