"""Scatter-gather execution: sharded results must match unsharded results."""

from __future__ import annotations

import pytest

from repro import HeterogeneousProgram
from repro.cluster import ShardedEngine, combine_partial_aggregates, decompose_aggregates
from repro.core import build_accelerated_polystore, build_cpu_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.stores import KeyValueEngine, RelationalEngine, TextEngine, TimeseriesEngine
from repro.stores.relational.operators import AggregateSpec

# Amounts are unique so ORDER BY comparisons are deterministic across
# shard-run merge order (ties may legally interleave differently).
ROWS = [(i, f"c{i % 7}", float((i * 13) % 101) + i / 1000.0, i % 3 == 0)
        for i in range(120)]


def _schema():
    return make_schema(("order_id", DataType.INT), ("customer", DataType.STRING),
                       ("amount", DataType.FLOAT), ("rush", DataType.BOOL))


def _reference_system():
    engine = RelationalEngine("ordersdb")
    engine.load_table("orders", Table(_schema(), ROWS))
    return build_cpu_polystore([engine])


def _sharded_system(num_shards: int = 4):
    system = build_cpu_polystore([])
    engine = system.register_sharded_engine("ordersdb", RelationalEngine, num_shards)
    engine.load_table("orders", Table(_schema(), ROWS))
    return system, engine


def _sql_program(query: str) -> HeterogeneousProgram:
    program = HeterogeneousProgram("q")
    program.sql("result", query, engine="ordersdb")
    program.output("result")
    return program


def _rows(result):
    return result.output("result").to_dicts()


def _assert_rows_match(actual, expected, *, ordered=False):
    """Row-set equality tolerant of float summation order across shards."""
    if not ordered:
        key = lambda r: sorted((k, repr(v)) for k, v in r.items())  # noqa: E731
        actual, expected = sorted(actual, key=key), sorted(expected, key=key)
    assert len(actual) == len(expected)
    for actual_row, expected_row in zip(actual, expected):
        assert set(actual_row) == set(expected_row)
        for name, expected_value in expected_row.items():
            if isinstance(expected_value, float):
                assert actual_row[name] == pytest.approx(expected_value)
            else:
                assert actual_row[name] == expected_value


SQL_CASES = [
    "SELECT order_id, amount FROM orders",
    "SELECT order_id, customer FROM orders WHERE amount > 50.0",
    "SELECT customer, sum(amount) AS total, avg(amount) AS mean, count(*) AS n, "
    "min(amount) AS lo, max(amount) AS hi FROM orders GROUP BY customer",
    "SELECT count(*) AS n, sum(amount) AS total FROM orders",
    "SELECT order_id, amount FROM orders ORDER BY amount",
    "SELECT order_id, amount FROM orders ORDER BY amount DESC LIMIT 10",
]


class TestSqlParity:
    @pytest.mark.parametrize("query", SQL_CASES)
    def test_sharded_matches_unsharded(self, query):
        reference = _reference_system()
        system, _ = _sharded_system(4)
        expected = _rows(reference.execute(_sql_program(query)))
        actual = _rows(system.execute(_sql_program(query)))
        _assert_rows_match(actual, expected, ordered="ORDER BY" in query)

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5])
    def test_parity_across_shard_counts(self, num_shards):
        reference = _reference_system()
        query = SQL_CASES[2]
        expected = _rows(reference.execute(_sql_program(query)))
        system, _ = _sharded_system(num_shards)
        actual = _rows(system.execute(_sql_program(query)))
        _assert_rows_match(actual, expected)

    def test_scatter_records_fan_out_details(self):
        system, engine = _sharded_system(4)
        result = system.execute(_sql_program(SQL_CASES[2]))
        scans = [r for r in result.report.records if r.kind == "scan"]
        aggregates = [r for r in result.report.records if r.kind == "aggregate"]
        assert scans and scans[0].details["shards"] == 4
        assert scans[0].details["fan_out"] in ("concurrent", "serial")
        assert aggregates[0].details["merge"] == "aggregate_combine"

    def test_single_shard_degenerates_cleanly(self):
        system, _ = _sharded_system(1)
        reference = _reference_system()
        query = SQL_CASES[1]
        _assert_rows_match(_rows(system.execute(_sql_program(query))),
                           _rows(reference.execute(_sql_program(query))))


class TestRoutedReads:
    def test_index_seek_on_shard_key_routes_to_one_shard(self):
        # The SQL frontend lowers equality predicates to filters; build the
        # index_seek IR node directly to exercise the routed-read path.
        from repro.ir.graph import IRGraph
        from repro.ir.nodes import Operator
        from repro.middleware.executor import Executor

        system, engine = _sharded_system(3)
        for shard in engine.shards:
            shard.create_index("orders", "order_id")
        graph = IRGraph("seek")
        node = graph.add(Operator("index_seek", {
            "table": "orders", "column": "order_id", "value": 17,
        }, [], "ordersdb"))
        graph.mark_output(node.op_id)
        outputs, report = Executor(system.catalog).execute(graph)
        rows = outputs[node.op_id].to_dicts()
        assert [row["order_id"] for row in rows] == [17]
        seek = report.records[0]
        assert seek.details["fan_out"] == "routed"
        assert seek.details["shards"] == 1
        owner = seek.details["shard"]
        assert owner == engine.shard_for(17).name

    def test_index_seek_on_other_column_fans_out(self):
        from repro.ir.graph import IRGraph
        from repro.ir.nodes import Operator
        from repro.middleware.executor import Executor

        system, engine = _sharded_system(3)
        for shard in engine.shards:
            shard.create_index("orders", "customer")
        graph = IRGraph("seek")
        node = graph.add(Operator("index_seek", {
            "table": "orders", "column": "customer", "value": "c3",
        }, [], "ordersdb"))
        graph.mark_output(node.op_id)
        outputs, report = Executor(system.catalog).execute(graph)
        rows = outputs[node.op_id].to_dicts()
        assert sorted(r["order_id"] for r in rows) == [
            i for i in range(len(ROWS)) if i % 7 == 3
        ]
        assert report.records[0].details["shards"] == 3

    def test_kv_lookup_with_keys_hits_owning_shards_only(self):
        system = build_cpu_polystore([])
        engine = system.register_sharded_engine("profiles", KeyValueEngine, 4)
        engine.put_many({f"user/{i}": {"uid": i, "score": float(i)} for i in range(40)})
        program = HeterogeneousProgram("kv")
        program.kv_lookup("result", keys=["user/3", "user/17"], engine="profiles")
        program.output("result")
        result = system.execute(program)
        rows = result.output("result").to_dicts()
        assert sorted(r["uid"] for r in rows) == [3, 17]
        records = [r for r in result.report.records if r.kind == "kv_get"]
        assert records and records[0].details["shards"] <= 2

    def test_kv_prefix_scan_fans_out(self):
        system = build_cpu_polystore([])
        engine = system.register_sharded_engine("profiles", KeyValueEngine, 3)
        engine.put_many({f"user/{i}": {"uid": i} for i in range(30)})
        engine.put("other/1", {"uid": -1})
        program = HeterogeneousProgram("kv")
        program.kv_lookup("result", key_prefix="user/", engine="profiles")
        program.output("result")
        rows = system.execute(program).output("result").to_dicts()
        assert sorted(r["uid"] for r in rows) == list(range(30))


class TestTimeseriesScatter:
    def test_summaries_merge_across_shards(self):
        reference_engine = TimeseriesEngine("monitors")
        system = build_cpu_polystore([])
        engine = system.register_sharded_engine("monitors", TimeseriesEngine, 3)
        for pid in range(12):
            points = [(float(t), float(pid * 10 + t)) for t in range(6)]
            reference_engine.append_many(f"hr/{pid}", points)
            engine.append_many(f"hr/{pid}", points)
        reference = build_cpu_polystore([reference_engine])

        def program():
            p = HeterogeneousProgram("ts")
            p.timeseries_summary("result", series_prefix="hr/", engine="monitors")
            p.output("result")
            return p

        expected = sorted(reference.execute(program()).output("result").to_dicts(),
                          key=lambda r: r["pid"])
        actual = sorted(system.execute(program()).output("result").to_dicts(),
                        key=lambda r: r["pid"])
        assert actual == expected


class TestTextScatter:
    def test_search_reranks_globally(self):
        system = build_cpu_polystore([])
        engine = system.register_sharded_engine("notes", TextEngine, 3)
        for i in range(30):
            body = "sepsis " * (i % 5 + 1) + "stable vitals"
            engine.add_document(f"note/{i}", body)
        program = HeterogeneousProgram("txt")
        program.text_search("result", "sepsis", top_k=5, engine="notes")
        program.output("result")
        result = system.execute(program)
        rows = result.output("result").to_dicts()
        assert len(rows) == 5
        scores = [row["score"] for row in rows]
        assert scores == sorted(scores, reverse=True)
        records = [r for r in result.report.records if r.kind == "text_search"]
        assert records and records[0].details["merge"] == "rerank"


class TestFallbacksAndMixing:
    def test_join_with_unsharded_engine(self):
        kv = KeyValueEngine("profiles")
        for c in range(7):
            kv.put(f"cust/c{c}", {"customer": f"c{c}", "tier": "gold" if c % 2 else "basic"})
        system = build_cpu_polystore([kv])
        engine = system.register_sharded_engine("ordersdb", RelationalEngine, 3)
        engine.load_table("orders", Table(_schema(), ROWS))
        program = HeterogeneousProgram("mix")
        program.sql("spend", "SELECT customer, sum(amount) AS total FROM orders "
                    "GROUP BY customer", engine="ordersdb")
        program.kv_lookup("tiers", key_prefix="cust/", engine="profiles")
        program.join("result", left="spend", right="tiers",
                     left_key="customer", right_key="customer")
        program.output("result")
        rows = system.execute(program).output("result").to_dicts()
        assert len(rows) == 7
        assert all("tier" in row and "total" in row for row in rows)

    def test_python_udf_gathers_sharded_input(self):
        system, _ = _sharded_system(3)
        program = HeterogeneousProgram("udf")
        program.sql("scan_all", "SELECT order_id, amount FROM orders",
                    engine="ordersdb")
        program.python("result", lambda table: {"rows": len(table)},
                       inputs=["scan_all"], engine="ordersdb")
        program.output("result")
        result = system.execute(program)
        assert result.output("result") == {"rows": len(ROWS)}

    def test_sharded_output_is_gathered(self):
        system, _ = _sharded_system(3)
        result = system.execute(_sql_program("SELECT order_id FROM orders"))
        table = result.output("result")
        assert len(table) == len(ROWS)
        assert sorted(table.column("order_id")) == list(range(len(ROWS)))


class TestSnapshotPinning:
    def test_pinned_scans_replay_until_any_shard_writes(self):
        system, engine = _sharded_system(3)
        session = system.session()
        prepared = session.prepare(_sql_program(
            "SELECT count(*) AS n FROM orders"))
        first = prepared.run()
        assert _n(first) == len(ROWS)
        second = prepared.run()
        assert second.report.cached_tasks > 0
        assert _n(second) == len(ROWS)
        engine.insert("orders", [(9999, "cX", 1.0, False)])
        third = prepared.run()
        assert _n(third) == len(ROWS) + 1

    def test_accelerated_mode_still_correct(self):
        system = build_accelerated_polystore([])
        engine = system.register_sharded_engine("ordersdb", RelationalEngine, 3)
        engine.load_table("orders", Table(_schema(), ROWS))
        rows = _rows(system.execute(_sql_program(SQL_CASES[2])))
        reference = _rows(_reference_system().execute(_sql_program(SQL_CASES[2])))
        _assert_rows_match(rows, reference)


def _n(result):
    return result.output("result").to_dicts()[0]["n"]


class TestPartialAggregateAlgebra:
    def test_decompose_avg_into_sum_and_count(self):
        partials, combines = decompose_aggregates([
            AggregateSpec("avg", "amount", "mean"),
            AggregateSpec("count", None, "n"),
        ])
        assert [p.function for p in partials] == ["sum", "count", "count"]
        assert combines[0].function == "avg" and len(combines[0].partials) == 2

    def test_combine_preserves_null_semantics(self):
        partials, combines = decompose_aggregates([
            AggregateSpec("sum", "amount", "total"),
            AggregateSpec("avg", "amount", "mean"),
        ])
        empty = Table(make_schema(("g", DataType.STRING),
                                  ("__p0_sum", DataType.FLOAT),
                                  ("__p1_sum", DataType.FLOAT),
                                  ("__p1_count", DataType.INT)), [])
        only_nulls = Table.from_dicts([
            {"g": "a", "__p0_sum": None, "__p1_sum": None, "__p1_count": 0},
        ])
        merged = combine_partial_aggregates([empty, only_nulls], ["g"], combines)
        assert merged.to_dicts() == [{"g": "a", "total": None, "mean": None}]

    def test_combine_empty_global_aggregate_yields_one_row(self):
        partials, combines = decompose_aggregates([AggregateSpec("count", None, "n")])
        empty = Table(make_schema(("__p0_count", DataType.INT)), [])
        merged = combine_partial_aggregates([empty, empty], [], combines)
        assert merged.to_dicts() == [{"n": 0}]


class TestShardedOrdering:
    """Sharded reads must preserve the ordering the unsharded engine gives."""

    def _kv_pair(self, num_shards=4, n=40):
        reference = KeyValueEngine("profiles")
        system = build_cpu_polystore([])
        sharded = system.register_sharded_engine("profiles", KeyValueEngine,
                                                 num_shards)
        for i in range(n):
            value = {"uid": i}
            reference.put(f"user/{i}", value)
            sharded.put(f"user/{i}", value)
        return build_cpu_polystore([reference]), system

    def test_prefix_lookup_preserves_key_order(self):
        reference_system, sharded_system = self._kv_pair()
        program = HeterogeneousProgram("kv")
        program.kv_lookup("result", key_prefix="user/", engine="profiles")
        program.output("result")
        expected = reference_system.execute(program).output("result").to_dicts()
        actual = sharded_system.execute(program).output("result").to_dicts()
        assert actual == expected  # identical rows in identical (key) order

    def test_kv_range_gather_merges_in_key_order(self):
        from repro.ir.graph import IRGraph
        from repro.ir.nodes import Operator
        from repro.middleware.executor import Executor

        reference_system, sharded_system = self._kv_pair()

        def run(system):
            graph = IRGraph("rng")
            scan = graph.add(Operator("kv_range", {}, [], "profiles"))
            graph.mark_output(scan.op_id)
            outputs, _ = Executor(system.catalog).execute(graph)
            return outputs[scan.op_id].to_dicts()

        assert run(sharded_system) == run(reference_system)

    def test_ordered_gather_merges_subset_partitions(self):
        from repro.cluster.scatter import ShardedValue

        parts = tuple(
            Table.from_dicts([
                {"key": f"user/{i}", "uid": i}
                for i in sorted(range(30), key=str)
                if i % 3 == shard
            ])
            for shard in range(3)
        )
        sharded = ShardedValue("profiles", parts, (0, 1, 2), ordered_by="key")
        keys = [row["key"] for row in sharded.gather().to_dicts()]
        assert keys == sorted(f"user/{i}" for i in range(30))

    def test_copy_parts_preserves_order_metadata(self):
        from repro.cluster.scatter import ShardedValue

        sharded = ShardedValue("e", (Table(make_schema(("key", DataType.STRING),
                                                       ("uid", DataType.INT)),
                                           [("a", 1)]),), (0,), ordered_by="key")
        copied = sharded.copy_parts(lambda p: p)
        assert copied.ordered_by == "key"

    def test_filter_on_sharded_kv_engine_runs_partition_wise(self):
        # The dataflow API lets filters stay on non-relational engines; the
        # KV adapter evaluates them over materialized tables, so the scatter
        # path keeps them partition-wise.
        from repro.ir.graph import IRGraph
        from repro.ir.nodes import Operator
        from repro.middleware.executor import Executor
        from repro.stores.relational.expressions import compare

        plain_system, sharded_system = self._kv_pair(3, 30)

        def run(system):
            graph = IRGraph("chain")
            scan = graph.add(Operator("kv_range", {}, [], "profiles"))
            kept = graph.add(Operator("filter", {
                "predicate": compare("uid", ">=", 5),
            }, [scan.op_id], "profiles"))
            graph.mark_output(kept.op_id)
            outputs, report = Executor(system.catalog).execute(graph)
            return outputs[kept.op_id], report

        sharded_out, report = run(sharded_system)
        plain_out, _ = run(plain_system)
        assert sorted(r["uid"] for r in sharded_out.to_dicts()) == \
            sorted(r["uid"] for r in plain_out.to_dicts())
        filters = [r for r in report.records if r.kind == "filter"]
        assert filters and filters[0].details.get("merge") == "deferred"

    def test_unsupported_kind_on_shard_adapter_errors_cleanly(self):
        # An aggregate bound to a (sharded) KV engine is not executable by
        # the KV adapter; the scatter path must decline so the executor
        # raises its ordinary error instead of a duck-typed misread.
        from repro.exceptions import ExecutionError
        from repro.ir.graph import IRGraph
        from repro.ir.nodes import Operator
        from repro.middleware.executor import Executor
        from repro.stores.relational.operators import AggregateSpec

        _, sharded_system = self._kv_pair(3, 30)
        graph = IRGraph("chain")
        scan = graph.add(Operator("kv_range", {}, [], "profiles"))
        total = graph.add(Operator("aggregate", {
            "group_by": [],
            "aggregates": [AggregateSpec("sum", "uid", "total")],
        }, [scan.op_id], "profiles"))
        graph.mark_output(total.op_id)
        with pytest.raises(ExecutionError):
            Executor(sharded_system.catalog).execute(graph)
