"""Partitioner behaviour: determinism, coverage, range semantics, errors."""

from __future__ import annotations

import pytest

from repro.cluster import HashPartitioner, RangePartitioner, canonical_key
from repro.exceptions import ConfigurationError


class TestHashPartitioner:
    def test_deterministic_and_in_range(self):
        partitioner = HashPartitioner(4)
        for key in ["user/1", "user/2", 17, 3.5, None, ("a", 1)]:
            first = partitioner.shard_for(key)
            assert 0 <= first < 4
            assert partitioner.shard_for(key) == first

    def test_int_and_equivalent_float_route_together(self):
        partitioner = HashPartitioner(8)
        assert partitioner.shard_for(2) == partitioner.shard_for(2.0)
        assert canonical_key(2) == canonical_key(2.0)
        assert canonical_key(2) != canonical_key("2")
        assert canonical_key(True) != canonical_key(1)

    def test_spreads_keys_across_all_shards(self):
        partitioner = HashPartitioner(4)
        counts = [0] * 4
        for i in range(400):
            counts[partitioner.shard_for(f"key/{i}")] += 1
        assert all(count > 0 for count in counts)
        # CRC32 over 400 keys should not be pathologically skewed.
        assert max(counts) < 4 * min(counts)

    def test_shards_for_groups_keys(self):
        partitioner = HashPartitioner(3)
        keys = [f"k{i}" for i in range(30)]
        grouped = partitioner.shards_for(keys)
        regrouped = [key for shard_keys in grouped.values() for key in shard_keys]
        assert sorted(regrouped) == sorted(keys)
        for shard_index, shard_keys in grouped.items():
            assert all(partitioner.shard_for(k) == shard_index for k in shard_keys)

    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigurationError):
            HashPartitioner(0)


class TestRangePartitioner:
    def test_boundaries_define_ownership(self):
        partitioner = RangePartitioner([10, 20])
        assert partitioner.num_shards == 3
        assert partitioner.shard_for(-5) == 0
        assert partitioner.shard_for(9) == 0
        assert partitioner.shard_for(10) == 1  # boundary belongs to the right
        assert partitioner.shard_for(19) == 1
        assert partitioner.shard_for(20) == 2
        assert partitioner.shard_for(10**6) == 2

    def test_string_boundaries(self):
        partitioner = RangePartitioner(["m"])
        assert partitioner.shard_for("alpha") == 0
        assert partitioner.shard_for("zeta") == 1

    def test_describe_includes_boundaries(self):
        partitioner = RangePartitioner([5])
        description = partitioner.describe()
        assert description["strategy"] == "RangePartitioner"
        assert description["boundaries"] == [5]
        assert description["num_shards"] == 2

    def test_rejects_bad_boundaries(self):
        with pytest.raises(ConfigurationError):
            RangePartitioner([])
        with pytest.raises(ConfigurationError):
            RangePartitioner([3, 3])
        with pytest.raises(ConfigurationError):
            RangePartitioner([7, 2])

    def test_uncomparable_key_raises(self):
        partitioner = RangePartitioner([10])
        with pytest.raises(ConfigurationError):
            partitioner.shard_for("not-a-number")
