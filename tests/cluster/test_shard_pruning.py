"""Shard pruning: key predicates contact only the owning shard subset.

Contact is asserted two ways: through the executor report's
``contacted_shards`` detail, and through each shard engine's own metrics
recorder (a shard whose record count did not grow was never touched).
"""

from __future__ import annotations

import pytest

from repro import DataflowProgram, col
from repro.compiler import CompilerOptions
from repro.core import build_cpu_polystore
from repro.datamodel import DataType, make_schema
from repro.eide import dataset
from repro.stores import KeyValueEngine, RelationalEngine, TextEngine, TimeseriesEngine

NUM_SHARDS = 4


def _contacts(engine, action) -> list[int]:
    """Indexes of shards whose metrics grew while ``action`` ran."""
    before = [len(shard.metrics.records) for shard in engine.shards]
    result = action()
    after = [len(shard.metrics.records) for shard in engine.shards]
    grown = [i for i, (a, b) in enumerate(zip(after, before)) if a > b]
    return grown, result


@pytest.fixture
def sales_system():
    system = build_cpu_polystore([])
    engine = system.register_sharded_engine("salesdb", RelationalEngine, NUM_SHARDS)
    schema = make_schema(("customer_id", DataType.INT), ("amount", DataType.FLOAT))
    engine.create_table("sales", schema, shard_key="customer_id")
    engine.insert("sales", [(i % 50, float(i % 97)) for i in range(800)])
    return system, engine


class TestRelationalPruning:
    def _keyed_program(self, predicate) -> DataflowProgram:
        program = DataflowProgram("keyed")
        program.output("rows",
                       dataset("salesdb").table("sales").filter(predicate))
        return program

    def test_shard_key_equality_contacts_one_shard(self, sales_system):
        system, engine = sales_system
        owner = engine.partitioner.shard_for(7)
        contacted, result = _contacts(
            engine, lambda: system.execute(self._keyed_program(
                col("customer_id") == 7)))
        assert contacted == [owner]
        rows = result.output("rows").to_dicts()
        assert rows and all(row["customer_id"] == 7 for row in rows)
        record = [r for r in result.report.records if r.kind == "scan"][0]
        assert record.details["fan_out"] == "routed"
        assert record.details["contacted_shards"] == [engine.shards[owner].name]

    def test_in_list_contacts_owning_subset(self, sales_system):
        system, engine = sales_system
        keys = [7, 8, 9]
        owners = sorted({engine.partitioner.shard_for(k) for k in keys})
        contacted, result = _contacts(
            engine, lambda: system.execute(self._keyed_program(
                col("customer_id").isin(*keys))))
        assert contacted == owners
        assert sorted({row["customer_id"] for row in
                       result.output("rows").to_dicts()}) == keys

    def test_non_key_predicate_fans_out_to_every_shard(self, sales_system):
        system, engine = sales_system
        contacted, result = _contacts(
            engine, lambda: system.execute(self._keyed_program(
                col("amount") > 90.0)))
        assert contacted == list(range(NUM_SHARDS))
        assert all(row["amount"] > 90.0
                   for row in result.output("rows").to_dicts())

    def test_pruning_requires_pushdown(self, sales_system):
        # With pushdown off the filter stays separate, so the scan must
        # broadcast — the ablation the benchmark measures.
        system, engine = sales_system
        contacted, result = _contacts(
            engine, lambda: system.execute(
                self._keyed_program(col("customer_id") == 7),
                options=CompilerOptions(pushdown=False)))
        assert contacted == list(range(NUM_SHARDS))
        assert all(row["customer_id"] == 7
                   for row in result.output("rows").to_dicts())

    def test_indexed_shard_key_becomes_routed_index_seek(self, sales_system):
        system, engine = sales_system
        engine.create_index("sales", "customer_id")
        owner = engine.partitioner.shard_for(7)
        contacted, result = _contacts(
            engine, lambda: system.execute(self._keyed_program(
                col("customer_id") == 7)))
        assert contacted == [owner]
        record = [r for r in result.report.records
                  if r.kind == "index_seek"][0]
        assert record.details["fan_out"] == "routed"
        rows = result.output("rows").to_dicts()
        assert rows and all(row["customer_id"] == 7 for row in rows)

    def test_non_key_index_seek_still_prunes_on_shard_key(self, sales_system):
        # The index is on a non-key column, so absorption converts the scan
        # to an index_seek on that column — but the retained predicate still
        # pins the shard key, so the seek must route to the owning shard.
        system, engine = sales_system
        engine.create_index("sales", "amount")
        owner = engine.partitioner.shard_for(7)
        program = DataflowProgram("both")
        program.output("rows", dataset("salesdb").table("sales")
                       .filter((col("customer_id") == 7) & (col("amount") == 30.0)))
        contacted, result = _contacts(engine, lambda: system.execute(program))
        assert contacted == [owner]
        record = [r for r in result.report.records
                  if r.kind == "index_seek"][0]
        assert record.details["fan_out"] == "routed"
        rows = result.output("rows").to_dicts()
        assert all(row["customer_id"] == 7 and row["amount"] == 30.0
                   for row in rows)

    def test_output_name_survives_absorption_for_shared_datasets(self, sales_system):
        # Executing the same dataset tail through two programs must resolve
        # each program's own output name even though absorption replaces the
        # named filter node with the leaf read.
        system, engine = sales_system
        ds = dataset("salesdb").table("sales").filter(col("customer_id") == 7)
        one = DataflowProgram("one")
        one.output("a", ds)
        two = DataflowProgram("two")
        two.output("b", ds)
        assert len(system.execute(one).output("a")) > 0
        assert len(system.execute(two).output("b")) > 0
        assert len(system.execute(one).output("a")) > 0  # unchanged by 'two'

    def test_results_match_unsharded_engine(self, sales_system):
        system, engine = sales_system
        plain_system = build_cpu_polystore([])
        plain = RelationalEngine("salesdb")
        schema = make_schema(("customer_id", DataType.INT),
                             ("amount", DataType.FLOAT))
        plain.load_table("sales", engine.scan("sales"))
        assert plain.table_schema("sales").names == schema.names
        plain_system.register_engine(plain)
        program = self._keyed_program((col("customer_id") == 7)
                                      & (col("amount") > 10.0))
        sharded = system.execute(program).output("rows").to_dicts()
        unsharded = plain_system.execute(program).output("rows").to_dicts()
        key = lambda row: sorted(row.items())  # noqa: E731
        assert sorted(map(key, sharded)) == sorted(map(key, unsharded))


class TestPruningSurvivesRebalance:
    def test_index_and_routing_follow_a_resharding(self, sales_system):
        system, engine = sales_system
        engine.create_index("sales", "customer_id")
        program = DataflowProgram("keyed")
        program.output("rows",
                       dataset("salesdb").table("sales")
                       .filter(col("customer_id") == 7))
        before = system.execute(program).output("rows").to_dicts()

        system.rebalance_sharded_engine("salesdb", 8)
        assert engine.num_shards == 8
        owner = engine.partitioner.shard_for(7)
        contacted, result = _contacts(engine, lambda: system.execute(program))
        assert contacted == [owner]
        # Indexes were replayed onto the new shards: still an index_seek.
        record = [r for r in result.report.records
                  if r.kind == "index_seek"][0]
        assert record.details["fan_out"] == "routed"
        key = lambda row: sorted(row.items())  # noqa: E731
        assert sorted(map(key, result.output("rows").to_dicts())) == \
            sorted(map(key, before))


class TestTimeseriesPruning:
    def test_series_key_predicate_contacts_owner_only(self):
        system = build_cpu_polystore([])
        engine = system.register_sharded_engine("monitors", TimeseriesEngine,
                                                NUM_SHARDS)
        for pid in range(32):
            engine.append_many(f"hr/{pid}",
                               [(float(t), float(pid + t)) for t in range(6)])
        program = DataflowProgram("vitals")
        program.output("one", dataset("monitors").timeseries("hr/")
                       .filter(col("pid") == 13))
        owner = engine.partitioner.shard_for("hr/13")
        contacted, result = _contacts(engine, lambda: system.execute(program))
        assert contacted == [owner]
        assert [row["pid"] for row in result.output("one").to_dicts()] == [13]


class TestKeyValuePruning:
    def test_key_equality_on_prefix_lookup_contacts_owner_only(self):
        system = build_cpu_polystore([])
        engine = system.register_sharded_engine("profiles", KeyValueEngine,
                                                NUM_SHARDS)
        for uid in range(32):
            engine.put(f"user/{uid}", {"uid": uid, "tier": uid % 3})
        program = DataflowProgram("profile")
        program.output("u", dataset("profiles").kv(key_prefix="user/")
                       .filter(col("key") == 21))
        owner = engine.partitioner.shard_for("user/21")
        contacted, result = _contacts(engine, lambda: system.execute(program))
        assert contacted == [owner]
        assert [row["uid"] for row in result.output("u").to_dicts()] == [21]


class TestTextPruning:
    def test_doc_id_predicate_contacts_owner_only(self):
        system = build_cpu_polystore([])
        engine = system.register_sharded_engine("notes", TextEngine, NUM_SHARDS)
        for pid in range(24):
            terms = "sepsis" if pid % 2 else "stable recovery"
            engine.add_document(f"note/{pid}", f"patient note {terms}")
        program = DataflowProgram("notes")
        program.output("features", dataset("notes").text()
                       .keyword_features(["sepsis"], doc_prefix="note/",
                                         id_column="pid")
                       .filter(col("pid") == 5))
        owner = engine.partitioner.shard_for("note/5")
        contacted, result = _contacts(engine, lambda: system.execute(program))
        assert contacted == [owner]
        rows = result.output("features").to_dicts()
        assert [row["pid"] for row in rows] == [5]
        assert rows[0]["kw_sepsis"] > 0
