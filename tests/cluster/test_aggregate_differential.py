"""Randomized differential tests: sharded aggregation vs the single-node operator.

``combine_partial_aggregates``/``_combine_one`` and ``_global_top_k`` must be
indistinguishable from the single-node ``GroupByAggregate``/``TopK``
operators for every aggregate function and null pattern.  Each trial builds
a random table, partitions it across a random number of shards (some left
empty on purpose), computes per-shard partials with the *real* single-node
operator and compares the combined result against the single-node reference
over the whole table.

Deliberately covered edge cases: empty shards, an entirely empty table,
all-NULL groups, ``avg`` over zero non-null rows, groups split across every
shard, ``min``/``max`` over strings, and int-vs-float ``sum``.
"""

from __future__ import annotations

import random

import pytest

from repro import DataflowProgram, dataset
from repro.cluster.scatter import (
    _global_top_k,
    combine_partial_aggregates,
    decompose_aggregates,
)
from repro.core import build_cpu_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.stores import RelationalEngine
from repro.stores.relational.operators import AggregateSpec, GroupByAggregate


class _Rows:
    """A leaf physical operator over materialized rows."""

    def __init__(self, rows):
        self._rows = rows

    def __iter__(self):
        return iter(self._rows)


AGGREGATES = [
    AggregateSpec("sum", "int_val", "int_sum"),
    AggregateSpec("sum", "float_val", "float_sum"),
    AggregateSpec("avg", "int_val", "int_avg"),
    AggregateSpec("avg", "float_val", "float_avg"),
    AggregateSpec("min", "label", "label_min"),
    AggregateSpec("max", "label", "label_max"),
    AggregateSpec("min", "int_val", "int_min"),
    AggregateSpec("max", "float_val", "float_max"),
    AggregateSpec("count", "int_val", "int_count"),
    AggregateSpec("count", None, "n_rows"),
]


def _random_rows(rng: random.Random, n: int) -> list[dict]:
    rows = []
    groups = [f"g{i}" for i in range(rng.randint(1, 5))]
    all_null_group = rng.choice(groups)  # avg over zero non-null rows
    for _ in range(n):
        group = rng.choice(groups)
        force_null = group == all_null_group
        rows.append({
            "group": group,
            "int_val": None if force_null or rng.random() < 0.25
            else rng.randint(-50, 50),
            "float_val": None if force_null or rng.random() < 0.25
            else round(rng.uniform(-10, 10), 3),
            "label": None if rng.random() < 0.2
            else rng.choice(["alpha", "beta", "gamma", "delta"]),
        })
    return rows


def _partition(rng: random.Random, rows: list[dict], shards: int) -> list[list[dict]]:
    parts: list[list[dict]] = [[] for _ in range(shards)]
    # Sometimes pin one shard empty, so the empty-partial path is exercised.
    empty = rng.randrange(shards) if shards > 1 and rng.random() < 0.5 else None
    targets = [i for i in range(shards) if i != empty]
    for row in rows:
        parts[rng.choice(targets)].append(row)
    return parts


def _single_node(rows: list[dict], group_by: list[str],
                 aggregates: list[AggregateSpec]) -> list[dict]:
    return list(GroupByAggregate(_Rows(rows), group_by, aggregates))


def _sharded(parts: list[list[dict]], group_by: list[str],
             aggregates: list[AggregateSpec]) -> Table:
    partial_specs, combines = decompose_aggregates(aggregates)
    partial_tables = []
    for shard_rows in parts:
        partial_rows = _single_node(shard_rows, group_by, partial_specs)
        if partial_rows:
            partial_tables.append(Table.from_dicts(partial_rows))
        else:
            partial_tables.append(Table(make_schema(
                ("group", DataType.STRING), ("int_val", DataType.INT),
                ("float_val", DataType.FLOAT), ("label", DataType.STRING)), []))
    return combine_partial_aggregates(partial_tables, group_by, combines)


def _assert_same(actual: list[dict], expected: list[dict], group_by: list[str]):
    def key(row):
        return tuple(repr(row.get(name)) for name in group_by)

    actual, expected = sorted(actual, key=key), sorted(expected, key=key)
    assert len(actual) == len(expected)
    for actual_row, expected_row in zip(actual, expected):
        assert set(actual_row) == set(expected_row)
        for name, expected_value in expected_row.items():
            value = actual_row[name]
            if isinstance(expected_value, float):
                assert value == pytest.approx(expected_value), name
            else:
                assert value == expected_value, name
                # int sums must stay int when partials combine across shards
                assert type(value) is type(expected_value), name


@pytest.mark.parametrize("seed", range(12))
def test_randomized_grouped_differential(seed):
    rng = random.Random(seed)
    rows = _random_rows(rng, rng.choice([0, 1, 7, 40, 120]))
    parts = _partition(rng, rows, rng.randint(1, 5))
    combined = _sharded(parts, ["group"], AGGREGATES)
    reference = _single_node(rows, ["group"], AGGREGATES)
    _assert_same(combined.to_dicts(), reference, ["group"])


@pytest.mark.parametrize("seed", range(8))
def test_randomized_global_differential(seed):
    """No GROUP BY: a single output row even when every shard is empty."""
    rng = random.Random(100 + seed)
    rows = _random_rows(rng, rng.choice([0, 3, 25]))
    parts = _partition(rng, rows, rng.randint(1, 4))
    combined = _sharded(parts, [], AGGREGATES)
    reference = _single_node(rows, [], AGGREGATES)
    _assert_same(combined.to_dicts(), reference, [])


def test_empty_result_schema_preserves_dtypes():
    """min/max over string/int columns keep their dtype when all shards are empty."""
    combined = _sharded([[], [], []], ["group"], AGGREGATES)
    assert len(combined) == 0
    schema = combined.schema
    assert schema["group"].dtype is DataType.STRING
    assert schema["label_min"].dtype is DataType.STRING
    assert schema["label_max"].dtype is DataType.STRING
    assert schema["int_min"].dtype is DataType.INT
    assert schema["int_sum"].dtype is DataType.INT
    assert schema["float_max"].dtype is DataType.FLOAT
    assert schema["int_avg"].dtype is DataType.FLOAT
    assert schema["int_count"].dtype is DataType.INT
    assert schema["n_rows"].dtype is DataType.INT


# -- global top-k vs the single-node TopK operator --------------------------------------


def _topk_rows(rng: random.Random, n: int) -> list[dict]:
    return [{"item": i,
             "score": None if rng.random() < 0.3 else rng.choice(
                 [1.0, 2.0, 3.0, rng.uniform(0, 10)])}
            for i in range(n)]


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("descending", [True, False])
def test_global_top_k_matches_single_node(seed, descending):
    from repro.stores.relational.operators import TopK

    rng = random.Random(seed)
    rows = _topk_rows(rng, rng.choice([0, 5, 30]))
    k = rng.choice([0, 1, 3, 10])
    parts = []
    for shard_rows in _partition(rng, rows, rng.randint(1, 4)):
        local = list(TopK(_Rows(shard_rows), "score", k, descending=descending))
        parts.append(Table.from_dicts(local) if local
                     else Table(make_schema(("item", DataType.INT),
                                            ("score", DataType.FLOAT)), []))
    combined = _global_top_k(parts, "score", k, descending)
    reference = list(TopK(_Rows(rows), "score", k, descending=descending))

    combined_rows = combined.to_dicts()
    # None scores never qualify (single-node drops them before the heap).
    assert all(row["score"] is not None for row in combined_rows)
    assert sorted(row["score"] for row in combined_rows) == \
        sorted(row["score"] for row in reference)
    # The score sequence is ordered identically to the single-node result.
    assert [row["score"] for row in combined_rows] == \
        [row["score"] for row in reference]


def test_global_top_k_is_deterministic_across_repeats():
    rows = [{"item": i, "score": float(i % 3)} for i in range(30)]
    parts = [Table.from_dicts(rows[i::3]) for i in range(3)]
    first = _global_top_k(parts, "score", 7, True).to_dicts()
    for _ in range(5):
        assert _global_top_k(parts, "score", 7, True).to_dicts() == first


def test_sharded_ascending_top_k_excludes_null_scores():
    """End-to-end: ascending top_k over shards must not surface NULL rows."""
    system = build_cpu_polystore([])
    engine = system.register_sharded_engine("scoresdb", RelationalEngine, 3)
    schema = make_schema(("item", DataType.INT), ("score", DataType.FLOAT))
    rows = [(i, None if i % 4 == 0 else float(i % 11)) for i in range(60)]
    engine.create_table("scores", schema, shard_key="item")
    engine.insert("scores", rows)

    cheapest = dataset("scoresdb").table("scores").top_k("score", 5,
                                                         descending=False)
    program = DataflowProgram("cheapest")
    program.output("best", cheapest)
    result = system.execute(program).output("best").to_dicts()

    reference = RelationalEngine("ref")
    reference.load_table("scores", Table(schema, rows))
    single = build_cpu_polystore([reference])
    ref_rows = single.execute(_reference_program()).output("best").to_dicts()

    assert all(row["score"] is not None for row in result)
    assert [row["score"] for row in result] == [row["score"] for row in ref_rows]


def _reference_program() -> DataflowProgram:
    cheapest = dataset("ref").table("scores").top_k("score", 5, descending=False)
    program = DataflowProgram("cheapest-ref")
    program.output("best", cheapest)
    return program
