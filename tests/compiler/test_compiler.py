"""Tests for the compiler: frontend lowering, passes and the pipeline."""

from __future__ import annotations

import pytest

from repro.catalog import Catalog
from repro.compiler import Compiler, CompilerOptions, annotate_graph
from repro.compiler.frontend import Frontend, insert_migrations
from repro.compiler.passes import (
    choose_join_algorithms,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fuse_operators,
    infer_columns,
    push_down_filters,
    reorder_joins,
)
from repro.eide import HeterogeneousProgram
from repro.exceptions import CompilationError
from repro.ir import IRGraph, Operator, assert_valid
from repro.stores import MLEngine, RelationalEngine, TextEngine, TimeseriesEngine
from repro.stores.relational import compare
from repro.workloads import build_mimic_program, generate_mimic, load_mimic


@pytest.fixture
def catalog(mimic_engines) -> Catalog:
    catalog = Catalog()
    for key in ("relational", "timeseries", "text", "ml"):
        catalog.register_engine(mimic_engines[key])
    return catalog


@pytest.fixture
def mimic_program() -> HeterogeneousProgram:
    return build_mimic_program(epochs=1)


class TestFrontend:
    def test_sql_fragment_lowered_to_relational_operators(self, catalog):
        program = HeterogeneousProgram("p")
        program.sql("q", "SELECT pid, age FROM admissions WHERE age > 60 ORDER BY age",
                    engine="clinical-db")
        graph = Frontend(catalog).lower(program)
        kinds = {node.kind for node in graph.nodes()}
        assert {"scan", "filter", "project", "sort"} <= kinds
        assert_valid(graph)

    def test_cross_engine_edges_get_migrations(self, catalog, mimic_program):
        graph = Frontend(catalog).lower(mimic_program)
        migrations = graph.nodes_of_kind("migrate")
        assert migrations, "expected migrate operators on cross-engine edges"
        for node in migrations:
            assert node.params["source_engine"] != node.params["target_engine"]

    def test_unknown_engine_rejected(self, catalog):
        program = HeterogeneousProgram("p")
        program.sql("q", "SELECT pid FROM admissions", engine="missing-db")
        with pytest.raises(CompilationError):
            Frontend(catalog).lower(program)

    def test_default_engine_chosen_by_paradigm(self, catalog):
        program = HeterogeneousProgram("p")
        program.sql("q", "SELECT pid FROM admissions")
        graph = Frontend(catalog).lower(program)
        assert all(node.engine == "clinical-db" for node in graph.nodes())

    def test_insert_migrations_idempotent(self, catalog, mimic_program):
        graph = Frontend(catalog).lower(mimic_program)
        assert insert_migrations(graph) == 0


class TestAnnotation:
    def test_scan_rows_come_from_catalog(self, catalog):
        program = HeterogeneousProgram("p")
        program.sql("q", "SELECT pid FROM admissions", engine="clinical-db")
        graph = Frontend(catalog).lower(program)
        annotate_graph(graph, catalog)
        scan = graph.nodes_of_kind("scan")[0]
        assert scan.estimated_rows == 60
        assert scan.estimated_bytes > 0

    def test_filter_reduces_estimate(self, catalog):
        program = HeterogeneousProgram("p")
        program.sql("q", "SELECT pid FROM admissions WHERE age > 60", engine="clinical-db")
        graph = Frontend(catalog).lower(program)
        annotate_graph(graph, catalog)
        scan = graph.nodes_of_kind("scan")[0]
        filter_node = graph.nodes_of_kind("filter")[0]
        assert filter_node.estimated_rows < scan.estimated_rows


class TestPasses:
    def _relational_graph(self, catalog) -> IRGraph:
        program = HeterogeneousProgram("p")
        program.sql(
            "q",
            "SELECT name FROM admissions JOIN visits ON admissions.pid = visits.pid "
            "WHERE age > 60 AND ward = 'icu'",
            engine="clinical-db",
        )
        return Frontend(catalog).lower(program)

    def test_pushdown_moves_filter_below_join(self, catalog, mimic_engines):
        from repro.datamodel import Table
        visits = Table.from_dicts([{"pid": 1, "ward": "icu"}, {"pid": 2, "ward": "er"}])
        mimic_engines["relational"].load_table("visits", visits)
        graph = self._relational_graph(catalog)
        joins_before = graph.nodes_of_kind("join")
        assert len(joins_before) == 1
        rewrites = push_down_filters(graph, catalog)
        assert rewrites >= 1
        assert_valid(graph)
        # After pushdown at least one filter reads directly from a scan.
        pushed = [
            node for node in graph.nodes_of_kind("filter")
            if graph.node(node.inputs[0]).kind == "scan"
        ]
        assert pushed

    def test_fusion_merges_adjacent_filters(self, catalog):
        graph = IRGraph("fusion")
        scan = graph.add(Operator("scan", {"table": "admissions"}, engine="clinical-db"))
        f1 = graph.add(Operator("filter", {"predicate": compare("age", ">", 60)},
                                [scan.op_id], "clinical-db"))
        f2 = graph.add(Operator("filter", {"predicate": compare("age", "<", 90)},
                                [f1.op_id], "clinical-db"))
        graph.mark_output(f2.op_id)
        assert fuse_operators(graph) >= 1
        assert len(graph.nodes_of_kind("filter")) == 1
        assert_valid(graph)

    def test_fusion_folds_project_into_scan(self, catalog):
        graph = IRGraph("fusion2")
        scan = graph.add(Operator("scan", {"table": "admissions"}, engine="clinical-db"))
        project = graph.add(Operator("project", {"columns": ["pid", "age"]},
                                     [scan.op_id], "clinical-db"))
        graph.mark_output(project.op_id)
        fuse_operators(graph)
        assert graph.nodes_of_kind("project") == []
        assert graph.nodes_of_kind("scan")[0].params["columns"] == ["pid", "age"]

    def test_cse_merges_duplicate_scans(self, catalog):
        graph = IRGraph("cse")
        s1 = graph.add(Operator("scan", {"table": "admissions"}, engine="clinical-db"))
        s2 = graph.add(Operator("scan", {"table": "admissions"}, engine="clinical-db"))
        join = graph.add(Operator("join", {"left_key": "pid", "right_key": "pid"},
                                  [s1.op_id, s2.op_id], "clinical-db"))
        graph.mark_output(join.op_id)
        removed = eliminate_common_subexpressions(graph)
        assert removed == 1
        assert len(graph.nodes_of_kind("scan")) == 1

    def test_dce_removes_unreachable_nodes(self, catalog):
        graph = IRGraph("dce")
        live = graph.add(Operator("scan", {"table": "admissions"}, engine="clinical-db"))
        graph.add(Operator("scan", {"table": "unused"}, engine="clinical-db"))
        graph.mark_output(live.op_id)
        assert eliminate_dead_code(graph) == 1
        assert len(graph) == 1

    def test_join_reorder_puts_smaller_side_right(self, catalog):
        graph = IRGraph("reorder")
        big = graph.add(Operator("scan", {"table": "big"}, engine="clinical-db"))
        small = graph.add(Operator("scan", {"table": "small"}, engine="clinical-db"))
        join = graph.add(Operator("join", {"left_key": "k", "right_key": "k"},
                                  [small.op_id, big.op_id], "clinical-db"))
        graph.mark_output(join.op_id)
        small.estimated_rows, big.estimated_rows = 10, 10_000
        assert reorder_joins(graph) == 1
        assert join.inputs == [big.op_id, small.op_id]

    def test_join_algorithm_selection(self, catalog):
        graph = IRGraph("algo")
        a = graph.add(Operator("scan", {"table": "a"}, engine="clinical-db"))
        b = graph.add(Operator("scan", {"table": "b"}, engine="clinical-db"))
        join = graph.add(Operator("join", {"left_key": "k", "right_key": "k"},
                                  [a.op_id, b.op_id], "clinical-db"))
        sort = graph.add(Operator("sort", {"by": "k"}, [join.op_id], "clinical-db"))
        graph.mark_output(sort.op_id)
        a.estimated_rows = b.estimated_rows = 10
        choose_join_algorithms(graph)
        assert join.params["algorithm"] == "sort_merge"

    def test_infer_columns_for_scan(self, catalog):
        program = HeterogeneousProgram("p")
        program.sql("q", "SELECT pid FROM admissions", engine="clinical-db")
        graph = Frontend(catalog).lower(program)
        columns = infer_columns(graph, catalog)
        scan = graph.nodes_of_kind("scan")[0]
        assert "age" in columns[scan.op_id]


class TestAbsorbIntoLeaves:
    def _filtered_scan_graph(self, predicate) -> IRGraph:
        from repro.ir import IRGraph

        graph = IRGraph("absorb")
        scan = graph.add(Operator("scan", {"table": "admissions"},
                                  engine="clinical-db"))
        kept = graph.add(Operator("filter", {"predicate": predicate},
                                  [scan.op_id], "clinical-db"))
        graph.mark_output(kept.op_id)
        return graph

    def test_filter_absorbed_into_scan(self, catalog):
        from repro.compiler.passes import absorb_into_leaves

        graph = self._filtered_scan_graph(compare("age", ">", 60))
        assert absorb_into_leaves(graph, catalog) == 1
        assert graph.nodes_of_kind("filter") == []
        scan = graph.nodes_of_kind("scan")[0]
        assert scan.params["predicate"] is not None
        assert graph.outputs == [scan.op_id]
        assert_valid(graph)

    def test_output_leaf_is_not_absorbed(self, catalog):
        from repro.compiler.passes import absorb_into_leaves

        graph = self._filtered_scan_graph(compare("age", ">", 60))
        scan = graph.nodes_of_kind("scan")[0]
        # The unfiltered scan is itself a program output: absorbing the
        # filter into it would silently filter (and rename) that output.
        graph.mark_output(scan.op_id)
        assert absorb_into_leaves(graph, catalog) == 0
        assert len(graph.nodes_of_kind("filter")) == 1

    def test_converted_seek_estimate_not_double_counted(self, catalog,
                                                        mimic_engines):
        from repro.compiler.passes import absorb_into_leaves

        mimic_engines["relational"].create_index("admissions", "pid")
        graph = self._filtered_scan_graph(compare("pid", "=", 3))
        absorb_into_leaves(graph, catalog)
        annotate_graph(graph, catalog)
        seek = graph.nodes_of_kind("index_seek")[0]
        # 60 admissions * 0.1 equality selectivity = 6; the flat //100 seek
        # factor must not be applied on top of the predicate selectivity.
        assert seek.estimated_rows == 6

    def test_shared_scan_is_not_absorbed(self, catalog):
        from repro.compiler.passes import absorb_into_leaves

        graph = self._filtered_scan_graph(compare("age", ">", 60))
        scan = graph.nodes_of_kind("scan")[0]
        # A second consumer needs the unfiltered scan: absorption must skip.
        graph.add(Operator("project", {"columns": ["pid"]}, [scan.op_id],
                           "clinical-db"))
        assert absorb_into_leaves(graph, catalog) == 0
        assert len(graph.nodes_of_kind("filter")) == 1

    def test_kv_prefix_filter_gains_explicit_keys(self, catalog):
        from repro.compiler.passes import absorb_into_leaves
        from repro.ir import IRGraph

        graph = IRGraph("kv")
        read = graph.add(Operator("kv_get", {"keys": None,
                                             "key_prefix": "customer/"},
                                  engine="clinical-db"))
        kept = graph.add(Operator("filter", {"predicate": compare("key", "=", 7)},
                                  [read.op_id], "clinical-db"))
        graph.mark_output(kept.op_id)
        assert absorb_into_leaves(graph, catalog) == 1
        assert read.params["keys"] == ["customer/7"]

    def test_ts_summary_filter_gains_series_keys(self, catalog):
        from repro.compiler.passes import absorb_into_leaves
        from repro.ir import IRGraph
        from repro.stores.relational.expressions import ColumnRef, InList

        graph = IRGraph("ts")
        read = graph.add(Operator("ts_summarize", {"series_prefix": "hr/"},
                                  engine="monitors"))
        predicate = InList(ColumnRef("pid"), (3, 5))
        kept = graph.add(Operator("filter", {"predicate": predicate},
                                  [read.op_id], "monitors"))
        graph.mark_output(kept.op_id)
        assert absorb_into_leaves(graph, catalog) == 1
        assert read.params["series_keys"] == ["hr/3", "hr/5"]

    def test_indexed_equality_converts_scan_to_index_seek(self, catalog,
                                                          mimic_engines):
        from repro.compiler.passes import absorb_into_leaves

        mimic_engines["relational"].create_index("admissions", "pid")
        graph = self._filtered_scan_graph(compare("pid", "=", 3))
        assert absorb_into_leaves(graph, catalog) == 1
        seek = graph.nodes_of_kind("index_seek")[0]
        assert seek.params["column"] == "pid" and seek.params["value"] == 3

    def test_predicate_key_values_intersects_conjuncts(self):
        from repro.compiler.passes import predicate_key_values
        from repro.stores.relational.expressions import ColumnRef, InList, and_

        predicate = and_(InList(ColumnRef("k"), (1, 2, 3)),
                         compare("k", "=", 2))
        assert predicate_key_values(predicate, "k") == [2]
        assert predicate_key_values(compare("other", "=", 1), "k") is None


class TestPipeline:
    def test_compile_mimic_program(self, catalog, mimic_program):
        result = Compiler(catalog).compile(mimic_program)
        assert len(result.graph) > 5
        assert result.pass_counts
        assert_valid(result.graph)

    def test_disabled_optimizations_do_nothing(self, catalog, mimic_program):
        result = Compiler(catalog).compile(mimic_program, CompilerOptions.none())
        assert result.pass_counts == {}
        assert result.offloaded_operators == 0

    def test_placement_requires_planner(self, catalog, mimic_program):
        from repro.accelerators import FPGAAccelerator, KernelRegistry, OffloadPlanner
        planner = OffloadPlanner(KernelRegistry([FPGAAccelerator()]))
        compiler = Compiler(catalog, planner=planner)
        result = compiler.compile(mimic_program)
        assert isinstance(result.placement_decisions, list)
        summary = result.summary()
        assert summary["nodes"] == len(result.graph)
