"""Health checks, SLO burn rates, and the serve ``health`` op."""

from __future__ import annotations

import pytest

from repro import DataflowProgram, SystemConfig
from repro.core import build_accelerated_polystore, build_cpu_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.obs import SloObjective, SloTracker, run_checks, worst_status
from repro.obs.metrics import MetricsRegistry
from repro.stores import RelationalEngine


class _Clock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


class TestWorstStatus:
    def test_roll_up_order(self):
        assert worst_status([]) == "ok"
        assert worst_status(["ok", "ok"]) == "ok"
        assert worst_status(["ok", "warn", "ok"]) == "warn"
        assert worst_status(["warn", "fail", "ok"]) == "fail"
        # Unknown statuses rank as worst: a broken probe must not look ok.
        assert worst_status(["ok", "bogus"]) == "bogus"


class TestSloObjective:
    def test_validation(self):
        with pytest.raises(ValueError, match="objective must be in"):
            SloObjective(name="x", family="f", objective=1.0)
        with pytest.raises(ValueError, match="unknown kind"):
            SloObjective(name="x", family="f", objective=0.99, kind="tail")
        assert SloObjective(name="x", family="f",
                            objective=0.999).budget == pytest.approx(0.001)


def _availability_tracker(clock):
    registry = MetricsRegistry()
    family = registry.counter("polystore_serve_requests_total", "",
                              ("tenant", "outcome"))
    objective = SloObjective(name="avail",
                             family="polystore_serve_requests_total",
                             objective=0.9, kind="availability")
    tracker = SloTracker(registry, (objective,), windows=(60.0, 300.0),
                         clock=clock)
    return registry, family, tracker


class TestSloBurnRates:
    def test_availability_error_ratio_and_burn_rate(self):
        clock = _Clock()
        _, family, tracker = _availability_tracker(clock)
        tracker.sample()  # t=0 baseline: no events

        clock.now = 30.0
        family.inc(60, tenant="a", outcome="ok")
        family.inc(20, tenant="a", outcome="error")
        family.inc(20, tenant="b", outcome="coalesced")
        [result] = tracker.sample()
        assert result["good"] == 80 and result["bad"] == 20
        for window in result["windows"]:
            # 20 errors out of 100 events = 0.2 ratio; budget is 0.1.
            assert window["events"] == 100
            assert window["error_ratio"] == pytest.approx(0.2)
            assert window["burn_rate"] == pytest.approx(2.0)

    def test_windows_use_their_own_baseline(self):
        clock = _Clock()
        _, family, tracker = _availability_tracker(clock)
        family.inc(100, tenant="a", outcome="error")
        tracker.sample()  # t=0: the errors are history before both windows

        clock.now = 120.0  # outside the 60s window, inside the 300s one
        family.inc(100, tenant="a", outcome="ok")
        [result] = tracker.sample()
        short, long = result["windows"]
        # Short window baseline is the t=120 sample itself (no sample in
        # [60, 120]): falls back to the oldest *available*, t=0 — both
        # windows therefore see the same 100-ok delta here.
        assert short["error_ratio"] == 0.0
        assert long["events"] == 100 and long["error_ratio"] == 0.0

    def test_latency_objective_counts_slow_observations(self):
        clock = _Clock()
        registry = MetricsRegistry()
        family = registry.histogram("polystore_request_seconds", "", ())
        objective = SloObjective(name="lat",
                                 family="polystore_request_seconds",
                                 objective=0.9, kind="latency",
                                 threshold_s=0.5)
        tracker = SloTracker(registry, (objective,), windows=(60.0,),
                             clock=clock)
        tracker.sample()
        clock.now = 10.0
        for _ in range(8):
            family.observe(0.01)  # fast
        family.observe(2.0)  # slow
        family.observe(30.0)  # slow
        [result] = tracker.sample()
        assert result["good"] == 8 and result["bad"] == 2
        [window] = result["windows"]
        assert window["error_ratio"] == pytest.approx(0.2)
        assert window["burn_rate"] == pytest.approx(2.0)

    def test_missing_family_or_label_is_zero_not_crash(self):
        registry = MetricsRegistry()
        absent = SloObjective(name="gone", family="polystore_gone_total",
                              objective=0.99)
        registry.counter("polystore_unlabeled_total", "", ())
        mislabeled = SloObjective(name="odd",
                                  family="polystore_unlabeled_total",
                                  objective=0.99, label="outcome")
        tracker = SloTracker(registry, (absent, mislabeled), windows=(60.0,))
        for result in tracker.sample():
            assert result["good"] == 0 and result["bad"] == 0

    def test_burning_requires_every_window_over_budget(self):
        clock = _Clock()
        _, family, tracker = _availability_tracker(clock)
        tracker.sample()
        clock.now = 30.0
        family.inc(5, tenant="a", outcome="ok")
        family.inc(5, tenant="a", outcome="error")  # ratio 0.5 >> budget 0.1
        results = tracker.sample()
        assert SloTracker.burning(results) == ["avail"]

        # Quiet period: the short window drains while the long one still
        # contains the burst -> no longer "sustained".
        clock.now = 200.0
        tracker.sample(now=170.0)  # intermediate quiet sample
        results = tracker.sample()
        assert SloTracker.burning(results) == []


def _system(config=None):
    engine = RelationalEngine("ordersdb")
    schema = make_schema(("order_id", DataType.INT),
                         ("amount", DataType.FLOAT))
    engine.load_table("orders", Table(
        schema, [(i, float(i % 7)) for i in range(40)]))
    config = config or SystemConfig(obs_enabled=True)
    return build_accelerated_polystore([engine], config=config), engine


class TestComponentChecks:
    def test_all_checks_ok_on_a_healthy_in_memory_system(self):
        system, _ = _system()
        checks = run_checks(system)
        assert [c["name"] for c in checks] == \
            ["durability", "changelog_retention", "serve_queues", "views"]
        assert all(c["status"] == "ok" for c in checks)

    def test_durable_deployment_reports_liveness(self, tmp_path):
        system, _ = _system(SystemConfig(obs_enabled=True,
                                         durability_sync="always"))
        system.open(str(tmp_path))
        [durability] = [c for c in run_checks(system)
                        if c["name"] == "durability"]
        assert durability["status"] == "ok"
        assert durability["detail"]["alive"] is True
        system.close()

    def test_view_refresh_error_degrades_views_check(self):
        system, engine = _system()

        calls = [0]

        def boom(table):
            calls[0] += 1
            if calls[0] > 1:  # initial materialization succeeds
                raise RuntimeError("refresh boom")
            return table

        source = system.dataset("ordersdb").table("orders").apply(boom)
        system.views.create("broken", source, policy="eager")
        engine.insert("orders", [(999, 1.0)])  # triggers the failing refresh
        [views] = [c for c in run_checks(system) if c["name"] == "views"]
        assert views["status"] == "warn"
        assert views["detail"]["errored"][0]["view"] == "broken"

    def test_crashing_check_reports_fail_not_raise(self):
        class Hostile:
            def __getattr__(self, name):
                raise RuntimeError("probe exploded")

        checks = run_checks(Hostile())
        assert checks and all(c["status"] == "fail" for c in checks)


class TestSystemHealth:
    def test_health_rolls_up_and_sets_gauges(self):
        system, _ = _system()
        report = system.health()
        assert report["status"] == "ok"
        assert report["burning_slos"] == []
        assert {s["slo"] for s in report["slos"]} == \
            {"serve-availability", "serve-latency", "request-latency"}
        assert system.obs.registry.value("polystore_health_status",
                                         check="durability") == 1.0
        assert system.obs.registry.value("polystore_slo_burn_rate",
                                         slo="serve-availability",
                                         window="60s") == 0.0

    def test_scrape_exports_slo_families(self):
        system, _ = _system()
        system.health()
        scrape = system.export_prometheus()
        assert "polystore_slo_objective" in scrape
        assert "polystore_slo_burn_rate" in scrape
        assert "polystore_health_status" in scrape


class TestServeHealthOp:
    def test_health_op_probes_a_live_server(self):
        system, _ = _system(SystemConfig(obs_enabled=True,
                                         session_workers=2))
        program = DataflowProgram("probe")
        program.output("out", system.dataset("ordersdb").table("orders"))
        with system.serve(pool_size=2) as server:
            server.register("probe", program)
            client = server.connect()
            client.execute("probe", tenant="lb")
            health = client.health()
        assert health["status"] == "ok"
        names = [c["name"] for c in health["checks"]]
        assert "serve_queues" in names
        [serving] = [c for c in health["checks"]
                     if c["name"] == "serve_queues"]
        # The probe hit a *running* server: the check must see it.
        assert serving["detail"]["servers"] == 1

    def test_health_op_still_answers_on_cpu_build(self):
        system = build_cpu_polystore(
            [], config=SystemConfig(obs_enabled=True))
        with system.serve(pool_size=1) as server:
            health = server.connect().health()
        assert health["status"] == "ok"
