"""Exporters and describe(): Chrome trace shape, scrape contents, drift."""

from __future__ import annotations

import json

from repro import DataflowProgram, SystemConfig
from repro.core import build_accelerated_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.obs import chrome_trace_json, parse_prometheus_text
from repro.obs.export import (
    _escape_label,
    _split_label_pairs,
    _unescape_label,
    prometheus_text,
)
from repro.obs.metrics import MetricsRegistry
from repro.stores import RelationalEngine


def _run_system(tmp_path=None):
    engine = RelationalEngine("ordersdb")
    schema = make_schema(("order_id", DataType.INT),
                         ("amount", DataType.FLOAT))
    engine.load_table("orders", Table(
        schema, [(i, float(i % 7)) for i in range(40)]))
    config = SystemConfig(obs_enabled=True, obs_trace_sample_rate=1.0,
                          durability_sync="always")
    system = build_accelerated_polystore([engine], config=config)
    if tmp_path is not None:
        system.open(str(tmp_path))
        engine.insert("orders", [(1000, 3.5)])
    totals = (system.dataset("ordersdb").table("orders")
              .aggregate(None, total=("sum", "amount")).named("totals"))
    program = DataflowProgram("totals")
    program.output("out", totals)
    system.execute(program, mode="polystore++")
    return system


class TestChromeTrace:
    def test_trace_events_reconstruct_the_span_tree(self):
        system = _run_system()
        document = system.export_chrome_trace()
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        ids = {e["args"]["span_id"] for e in complete}
        for event in complete:
            parent = event["args"]["parent_id"]
            assert parent is None or parent in ids
            assert event["ts"] >= 0 and event["dur"] >= 0
        # Thread metadata events name every track that appears.
        tids = {e["tid"] for e in complete}
        named = {e["tid"] for e in events
                 if e["ph"] == "M" and e.get("name") == "thread_name"}
        assert tids <= named
        # The document round-trips through JSON (Perfetto-loadable).
        assert json.loads(chrome_trace_json(system.obs.tracer.spans()))


class TestPrometheusScrape:
    def test_scrape_includes_durability_and_gauge_families(self, tmp_path):
        system = _run_system(tmp_path)
        families = parse_prometheus_text(system.export_prometheus())
        for name in ("polystore_requests_total",
                     "polystore_wal_appends_total",
                     "polystore_wal_fsync_seconds",
                     "polystore_changelog_retained_batches"):
            assert name in families, name
        system.close()


#: Label values a client can actually send (tenant ids flow into
#: ``serve_*`` labels): embedded quotes, newlines, backslashes, and the
#: mixed sequences that break naive sequential-replace codecs.
_HOSTILE_VALUES = [
    'evil"name',
    "multi\nline",
    "back\\slash",
    "trailing\\",
    "literal\\n-not-a-newline",
    'mix\\"ed\n"all"\\three\\',
    'comma,inside',
    "",
]


class TestHostileLabelValues:
    def test_escape_unescape_round_trips_every_hostile_value(self):
        for value in _HOSTILE_VALUES:
            escaped = _escape_label(value)
            assert "\n" not in escaped  # exposition stays line-oriented
            assert _unescape_label(escaped) == value, value

    def test_unescape_decodes_each_sequence_exactly_once(self):
        # A literal backslash followed by 'n' escapes to \\n; sequential
        # str.replace would re-decode the result into a newline.
        assert _escape_label("literal\\n") == "literal\\\\n"
        assert _unescape_label("literal\\\\n") == "literal\\n"
        # Unknown escape sequences pass through verbatim.
        assert _unescape_label("odd\\t") == "odd\\t"

    def test_split_tracks_escape_runs_inside_quotes(self):
        # In a="x\\" the quote is real (the backslash is itself escaped);
        # a naive single-lookbehind splitter treats it as escaped and
        # swallows the comma into the first pair.
        assert _split_label_pairs('a="x\\\\",b="y"') == ['a="x\\\\"', 'b="y"']
        assert _split_label_pairs('a="x\\"y,z",b="w"') == \
            ['a="x\\"y,z"', 'b="w"']

    def test_scrape_with_hostile_tenant_labels_round_trips(self):
        registry = MetricsRegistry()
        family = registry.counter("polystore_serve_requests_total", "help",
                                  ("tenant", "outcome"))
        for index, value in enumerate(_HOSTILE_VALUES):
            family.inc(index + 1, tenant=value, outcome="ok")
        parsed = parse_prometheus_text(prometheus_text(registry))
        samples = parsed["polystore_serve_requests_total"]["samples"]
        seen = {s["labels"]["tenant"]: s["value"] for s in samples}
        for index, value in enumerate(_HOSTILE_VALUES):
            assert seen[value] == index + 1

    def test_hostile_histogram_labels_round_trip(self):
        registry = MetricsRegistry()
        family = registry.histogram("polystore_serve_request_seconds",
                                    "help", ("tenant",))
        family.observe(0.2, tenant='t"en\\ant\n1')
        parsed = parse_prometheus_text(prometheus_text(registry))
        samples = parsed["polystore_serve_request_seconds"]["samples"]
        assert samples
        for sample in samples:
            assert sample["labels"]["tenant"] == 't"en\\ant\n1'


class TestDescribeFoldIn:
    def test_describe_carries_metrics_changelog_and_checkpoints(self, tmp_path):
        # open() checkpoints every store on attach, so describe() already
        # carries a snapshot id without an explicit checkpoint call.
        system = _run_system(tmp_path)
        description = system.describe()

        obs = description["observability"]
        assert obs["enabled"] and obs["requests_sampled"] >= 1
        assert "polystore_requests_total" in description["metrics"]

        changelog = description["changelog"]["ordersdb"]
        assert changelog["retained_batches"] >= 1

        checkpoints = description["durability"]["checkpoints"]
        assert "ordersdb" in checkpoints
        assert checkpoints["ordersdb"]["snapshot_id"] is not None
        system.close()
