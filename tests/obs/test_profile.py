"""Sampling profiler: collapse, exports, span attribution, slowlog attach."""

from __future__ import annotations

import sys
import threading
import time

from repro import DataflowProgram, SystemConfig
from repro.core import build_accelerated_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.obs import Profile, SamplingProfiler
from repro.obs.profile import collapse_frame
from repro.obs.trace import Tracer
from repro.stores import RelationalEngine


class TestProfileAggregate:
    def test_collapse_frame_is_root_first_module_dot_function(self):
        def inner():
            return collapse_frame(sys._getframe())

        def outer():
            return inner()

        stack = outer()
        frames = stack.split(";")
        # Leaf last; this test module's helpers are the two innermost frames.
        assert frames[-1] == "test_profile.inner"
        assert frames[-2] == "test_profile.outer"

    def test_hottest_frame_is_the_most_sampled_leaf(self):
        profile = Profile(period_s=0.01)
        profile.add("a.main;b.scan", 3)
        profile.add("a.main;c.udf", 10)
        profile.add("a.main", 1)
        assert profile.sample_count == 14
        assert profile.hottest_frame() == "c.udf"

    def test_collapsed_text_is_flamegraph_input(self):
        profile = Profile(period_s=0.01)
        profile.add("a.main;b.scan", 2)
        profile.add("a.main", 1)
        assert profile.collapsed() == "a.main 1\na.main;b.scan 2\n"
        assert Profile().collapsed() == ""

    def test_speedscope_document_shape(self):
        profile = Profile(period_s=0.5)
        profile.add("a.main;b.scan", 2)
        profile.add("a.main;c.udf", 1)
        document = profile.speedscope(name="req")
        assert document["$schema"].startswith("https://www.speedscope.app")
        frames = [f["name"] for f in document["shared"]["frames"]]
        assert set(frames) == {"a.main", "b.scan", "c.udf"}
        [prof] = document["profiles"]
        assert prof["type"] == "sampled" and prof["name"] == "req"
        # Each sample is a list of frame indices; weights carry the period.
        for sample, weight in zip(prof["samples"], prof["weights"]):
            assert all(0 <= index < len(frames) for index in sample)
            assert weight > 0
        assert prof["endValue"] == sum(prof["weights"]) == 1.5

    def test_merge_and_to_dict(self):
        one, two = Profile(period_s=0.1), Profile(period_s=0.1)
        one.add("a.x"), two.add("a.x"), two.add("a.y")
        one.merge(two)
        summary = one.to_dict()
        assert summary["samples"] == 3
        assert summary["hottest_frame"] == "a.x"
        assert "a.y 1" in summary["collapsed"]


class TestCrossThreadAttribution:
    def test_pool_worker_stack_attributes_to_dispatching_request_span(self):
        """Satellite regression test: a worker thread that re-attaches the
        dispatching request's span must have its sampled stacks attributed
        to that request's trace, even though the request span lives in the
        dispatching thread's thread-local."""
        tracer = Tracer(enabled=True, sample_rate=1.0)
        profiler = SamplingProfiler(tracer, hz=100.0)
        ready = threading.Event()
        release = threading.Event()

        def worker_hotspot():
            ready.set()
            release.wait(timeout=10)

        with tracer.request("bench:attribution") as span:
            assert span is not None

            def worker():
                with tracer.attach(span):
                    worker_hotspot()

            thread = threading.Thread(target=worker, name="pool-worker")
            thread.start()
            try:
                assert ready.wait(timeout=10)
                # Deterministic: sample while the worker is parked inside
                # worker_hotspot — no background thread, no timing races.
                recorded = profiler.sample_once()
                assert recorded >= 1
            finally:
                release.set()
                thread.join(timeout=10)

            trace_profile = profiler.profile(span.trace_id)
            # The worker parks in Event.wait (pure Python, so it stacks
            # above the hotspot); the hotspot frame must appear in the
            # request-attributed stack all the same.
            assert any("test_profile.worker_hotspot" in stack
                       for stack in trace_profile.counts), (
                sorted(trace_profile.counts))

    def test_detached_threads_only_count_toward_the_global_profile(self):
        tracer = Tracer(enabled=True, sample_rate=1.0)
        profiler = SamplingProfiler(tracer, hz=100.0)
        profiler.sample_once()  # no span anywhere: global only
        assert profiler.profile().sample_count >= 1
        assert profiler.describe()["traces_retained"] == 0

    def test_take_trace_pops_the_aggregate(self):
        tracer = Tracer(enabled=True, sample_rate=1.0)
        profiler = SamplingProfiler(tracer, hz=100.0)
        with tracer.request("bench:take") as span:
            profiler.sample_once()
            taken = profiler.take_trace(span.trace_id)
            assert taken is not None and taken.sample_count >= 1
            assert profiler.take_trace(span.trace_id) is None
        assert profiler.take_trace(None) is None

    def test_per_trace_lru_is_bounded(self):
        tracer = Tracer(enabled=True, sample_rate=1.0)
        profiler = SamplingProfiler(tracer, hz=100.0, max_traces=4)
        for _ in range(10):
            with tracer.request("bench:lru"):
                profiler.sample_once()
        assert profiler.describe()["traces_retained"] <= 4

    def test_start_stop_lifecycle(self):
        tracer = Tracer(enabled=True, sample_rate=1.0)
        profiler = SamplingProfiler(tracer, hz=250.0)
        profiler.start()
        profiler.start()  # idempotent
        assert profiler.running
        deadline = time.monotonic() + 5.0
        while (profiler.profile().sample_count == 0
               and time.monotonic() < deadline):
            time.sleep(0.01)
        profiler.stop()
        assert not profiler.running
        assert profiler.profile().sample_count >= 1


def _udf_system(slow_ms: float, *, profile: bool):
    engine = RelationalEngine("ordersdb")
    schema = make_schema(("order_id", DataType.INT),
                         ("amount", DataType.FLOAT))
    engine.load_table("orders", Table(
        schema, [(i, float(i % 7)) for i in range(50)]))
    config = SystemConfig(obs_enabled=True, obs_trace_sample_rate=1.0,
                          obs_slow_query_ms=slow_ms,
                          obs_profile_enabled=profile, obs_profile_hz=250.0)
    return build_accelerated_polystore([engine], config=config)


def _udf_program(system, udf) -> DataflowProgram:
    orders = (system.dataset("ordersdb").table("orders")
              .apply(udf).named("slow_step"))
    program = DataflowProgram("orders_scan")
    program.output("out", orders)
    return program


def slow_udf_crawl(table):
    """Named module-level UDF so its frame label is stable in assertions."""
    time.sleep(0.08)
    return table


class TestSlowlogProfileAttachment:
    def test_slow_udf_capture_carries_profile_with_udf_as_hottest_frame(self):
        system = _udf_system(slow_ms=20.0, profile=True)
        try:
            prepared = system.session(name="t").prepare(
                _udf_program(system, slow_udf_crawl), mode="polystore++")
            prepared.run()
        finally:
            system.obs.profiler.stop()

        [entry] = system.obs.slow_log.entries()
        profile = entry["profile"]
        assert profile is not None
        assert profile["samples"] >= 1
        assert profile["collapsed"].strip()
        # 80ms asleep in the UDF vs sub-ms everywhere else: the UDF frame
        # must dominate the request's wall-clock samples.
        assert profile["hottest_frame"] == "test_profile.slow_udf_crawl"
        assert system.obs.registry.value(
            "polystore_profile_samples_total") >= profile["samples"]

    def test_profiler_disabled_by_default_leaves_profile_unattached(self):
        system = _udf_system(slow_ms=20.0, profile=False)
        assert not system.obs.profiler.running
        prepared = system.session(name="t").prepare(
            _udf_program(system, slow_udf_crawl), mode="polystore++")
        prepared.run()
        [entry] = system.obs.slow_log.entries()
        assert entry["profile"] is None

    def test_export_profile_formats(self):
        system = _udf_system(slow_ms=20.0, profile=True)
        try:
            prepared = system.session(name="t").prepare(
                _udf_program(system, slow_udf_crawl), mode="polystore++")
            prepared.run()
        finally:
            system.obs.profiler.stop()
        collapsed = system.export_profile()
        assert collapsed and all(" " in line
                                 for line in collapsed.strip().splitlines())
        document = system.export_profile(fmt="speedscope")
        assert document["profiles"][0]["samples"]
