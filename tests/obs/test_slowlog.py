"""Slow-query log: threshold capture, ring-buffer bounds, describe()."""

from __future__ import annotations

import time

from repro import DataflowProgram, SystemConfig
from repro.core import build_accelerated_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.stores import RelationalEngine


def _system(slow_ms: float):
    engine = RelationalEngine("ordersdb")
    schema = make_schema(("order_id", DataType.INT),
                         ("amount", DataType.FLOAT))
    engine.load_table("orders", Table(
        schema, [(i, float(i % 7)) for i in range(50)]))
    config = SystemConfig(obs_enabled=True, obs_slow_query_ms=slow_ms)
    return build_accelerated_polystore([engine], config=config)


def _program(system, udf=None) -> DataflowProgram:
    orders = system.dataset("ordersdb").table("orders").named("orders")
    if udf is not None:
        orders = orders.apply(udf).named("slow_step")
    program = DataflowProgram("orders_scan")
    program.output("out", orders)
    return program


class TestSlowQueryCapture:
    def test_deliberately_slow_udf_is_captured_with_breakdown(self):
        system = _system(slow_ms=20.0)

        def crawl(table):
            time.sleep(0.05)
            return table

        prepared = system.session(name="t").prepare(
            _program(system, udf=crawl), mode="polystore++")
        prepared.run()

        [entry] = system.obs.slow_log.entries()
        assert entry["program"] == "orders_scan"
        assert entry["elapsed_wall_s"] >= 0.05
        assert entry["plan_fingerprint"]
        # The per-stage breakdown and slowest-op ranking finger the UDF.
        assert entry["stages"]
        slow_kinds = [op["kind"] for op in entry["slowest_ops"]]
        assert "python_udf" in slow_kinds
        assert system.obs.registry.value("polystore_slow_queries_total") == 1

    def test_fast_requests_are_not_captured(self):
        system = _system(slow_ms=10_000.0)
        prepared = system.session(name="t").prepare(
            _program(system), mode="polystore++")
        for _ in range(3):
            prepared.run()
        assert len(system.obs.slow_log.entries()) == 0
        assert not system.obs.registry.value("polystore_slow_queries_total")

    def test_ring_buffer_is_bounded(self):
        from repro.obs import SlowQueryLog

        log = SlowQueryLog(threshold_ms=0.0, capacity=4)

        class _Report:
            total_time_s = 0.0
            records = ()

        for i in range(10):
            log.consider(program=f"p{i}", mode="m", fingerprint=None,
                         report=_Report(), elapsed_wall_s=0.001)
        assert len(log) == 4
        assert log.total_captured == 10
        assert [e["program"] for e in log.entries()] == ["p9", "p8", "p7", "p6"]
