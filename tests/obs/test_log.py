"""Structured event log: levels, trace correlation, suppression, sinks."""

from __future__ import annotations

import io
import json

import pytest

from repro import DataflowProgram, SystemConfig
from repro.core import build_accelerated_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.obs import EventLog, Observability
from repro.obs.trace import Tracer


class _Clock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


class TestLevelsAndFiltering:
    def test_below_threshold_records_are_dropped(self):
        log = EventLog(level="info")
        assert log.emit("debug", "c", "e") is None
        assert log.emit("info", "c", "e") is not None
        log.set_level("debug")
        assert log.emit("debug", "c", "e2") is not None
        assert len(log) == 2

    def test_warn_aliases_warning(self):
        log = EventLog(level="warning")
        record = log.emit("warn", "c", "e")
        assert record is not None and record["level"] == "warning"
        assert log.emit("info", "c", "e") is None

    def test_unknown_level_raises(self):
        log = EventLog()
        with pytest.raises(ValueError, match="unknown log level"):
            log.emit("fatal", "c", "e")
        with pytest.raises(ValueError):
            EventLog(level="loud")

    def test_disabled_log_is_inert(self):
        log = EventLog(enabled=False)
        assert log.emit("error", "c", "e") is None
        assert len(log) == 0 and log.describe()["enabled"] is False

    def test_records_filter_by_level_floor_and_component(self):
        log = EventLog(level="debug")
        log.logger("wal").info("checkpoint")
        log.logger("wal").error("torn_record")
        log.logger("serve").warning("admission_reject")
        assert [r["event"] for r in log.records(component="wal")] == \
            ["checkpoint", "torn_record"]
        assert [r["event"] for r in log.records(level="warning")] == \
            ["torn_record", "admission_reject"]
        assert [r["event"] for r in log.records(level="warning",
                                                component="wal")] == \
            ["torn_record"]


class TestTraceCorrelation:
    def test_records_carry_active_span_ids(self):
        tracer = Tracer(enabled=True, sample_rate=1.0)
        log = EventLog(tracer)
        with tracer.request("req:logged") as span:
            record = log.logger("session").info("inside", step=3)
        outside = log.logger("session").info("outside")
        assert record["trace_id"] == span.trace_id
        assert record["span_id"] == span.span_id
        assert record["step"] == 3
        assert "trace_id" not in outside

    def test_hub_counts_records_per_component_and_level(self):
        obs = Observability(enabled=True, sample_rate=1.0)
        obs.logger("views").warning("view_resync", cause="gap")
        obs.logger("views").warning("view_resync", cause="gap")
        obs.logger("wal").info("wal_checkpoint")
        assert obs.registry.value("polystore_log_records_total",
                                  component="views", level="warning") == 2
        assert obs.registry.value("polystore_log_records_total",
                                  component="wal", level="info") == 1


class TestRingBufferAndSuppression:
    def test_ring_buffer_is_bounded_oldest_dropped(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.logger("c").info(f"e{i}")
        events = [r["event"] for r in log.records()]
        assert events == ["e6", "e7", "e8", "e9"]
        assert log.describe()["total_records"] == 10

    def test_duplicate_storm_is_suppressed_within_the_window(self):
        clock = _Clock()
        log = EventLog(suppress_after=3, suppress_window_s=1.0, clock=clock)
        emitted = [log.logger("serve").warning("admission_reject", n=i)
                   for i in range(10)]
        assert sum(r is not None for r in emitted) == 3
        assert log.describe()["total_suppressed"] == 7
        # A different event key is not affected.
        assert log.logger("serve").warning("other") is not None

    def test_next_record_after_the_window_carries_the_suppressed_count(self):
        clock = _Clock()
        log = EventLog(suppress_after=2, suppress_window_s=1.0, clock=clock)
        for _ in range(5):
            log.logger("wal").info("wal_checkpoint")
        clock.now += 1.5  # window expires; 3 drops carried forward
        record = log.logger("wal").info("wal_checkpoint")
        assert record is not None and record["suppressed"] == 3
        follow_up = log.logger("wal").info("wal_checkpoint")
        assert follow_up is not None and "suppressed" not in follow_up


class TestSinksAndExport:
    def test_attached_stream_receives_json_lines(self):
        sink = io.StringIO()
        log = EventLog()
        log.attach_stream(sink)
        log.logger("c").info("hello", x=1)
        log.attach_stream(None)
        log.logger("c").info("unmirrored")
        lines = sink.getvalue().strip().splitlines()
        assert len(lines) == 1
        parsed = json.loads(lines[0])
        assert parsed["event"] == "hello" and parsed["x"] == 1

    def test_export_jsonl_round_trips(self):
        log = EventLog()
        log.logger("a").info("one")
        log.logger("b").error("two", detail="boom")
        parsed = [json.loads(line)
                  for line in log.export_jsonl().strip().splitlines()]
        assert [r["event"] for r in parsed] == ["one", "two"]


def _lifecycle_system(tmp_path):
    engine = RelationalEngine("ordersdb")
    schema = make_schema(("order_id", DataType.INT),
                         ("amount", DataType.FLOAT))
    engine.load_table("orders", Table(
        schema, [(i, float(i % 7)) for i in range(20)]))
    config = SystemConfig(obs_enabled=True, durability_sync="always")
    system = build_accelerated_polystore([engine], config=config)
    system.open(str(tmp_path))
    return system, engine


from repro.stores import RelationalEngine  # noqa: E402


class TestLifecycleInstrumentation:
    def test_checkpoint_and_recovery_emit_durability_events(self, tmp_path):
        system, engine = _lifecycle_system(tmp_path)
        engine.insert("orders", [(1000, 3.5)])
        system.durability.checkpoint()
        events = [r["event"] for r in
                  system.export_logs(component="durability")]
        assert "wal_checkpoint" in events
        system.close()

        reopened, _ = _lifecycle_system(tmp_path)
        recovery = [r for r in reopened.export_logs(component="durability")
                    if r["event"] == "wal_recovery"]
        assert recovery and recovery[0]["engine"] == "ordersdb"
        reopened.close()

    def test_session_reoptimization_is_logged(self):
        engine = RelationalEngine("eventsdb")
        schema = make_schema(("event_id", DataType.INT),
                             ("value", DataType.FLOAT))
        engine.load_table("events", Table(
            schema, [(i, float(i * 31 % 1009)) for i in range(300)]))
        system = build_accelerated_polystore(
            [engine], config=SystemConfig(obs_enabled=True))
        ranked = (system.dataset("eventsdb").table("events")
                  .sort("value", descending=True))
        program = DataflowProgram("ranked-events")
        program.output("ranked", ranked)
        session = system.session(name="t")
        prepared = session.prepare(program)
        prepared.run(reuse_scans=False)
        # 100x growth: the next run observes the drift, the one after
        # re-optimizes (the pattern from tests/client/test_plan_aging.py).
        engine.insert("events", [(300 + i, float(i)) for i in range(30_000)])
        prepared.run(reuse_scans=False)
        prepared.run(reuse_scans=False)
        events = [r for r in system.export_logs(component="session")
                  if r["event"] == "plan_reoptimized"]
        assert events and events[0]["program"] == "ranked-events"
        session.close()
