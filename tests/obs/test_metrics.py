"""Metrics registry: families, labels, thread safety, disabled no-ops."""

from __future__ import annotations

import threading

from repro.obs import MetricsRegistry, Observability, parse_prometheus_text, prometheus_text


class TestFamilies:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        hits = reg.counter("hits_total", "Hits.", ("mode",))
        hits.inc(mode="a")
        hits.inc(3, mode="a")
        hits.inc(mode="b")
        assert reg.value("hits_total", mode="a") == 4
        assert reg.value("hits_total", mode="b") == 1

    def test_gauge_sets_and_increments(self):
        reg = MetricsRegistry()
        depth = reg.gauge("depth", "Depth.")
        depth.set(7)
        depth.inc(2)
        assert reg.value("depth") == 9

    def test_histogram_buckets_sum_and_count(self):
        reg = MetricsRegistry()
        lat = reg.histogram("lat_seconds", "Latency.",
                            buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            lat.observe(value)
        snap = reg.snapshot()["lat_seconds"]["series"][0]
        assert snap["count"] == 4
        assert abs(snap["sum"] - 5.555) < 1e-9
        # Snapshot buckets are already cumulative (Prometheus semantics).
        assert snap["buckets"]["1.0"] == 3
        assert snap["buckets"]["+Inf"] == 4

    def test_same_name_returns_same_family(self):
        reg = MetricsRegistry()
        first = reg.counter("x_total", "X.")
        second = reg.counter("x_total", "X.")
        assert first is second

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("c_total", "C.")
        h = reg.histogram("h_seconds", "H.")
        c.inc()
        h.observe(1.0)
        # A disabled registry never materializes label children at all:
        # families exist (registration is unconditional) but stay empty.
        assert reg.value("c_total") is None
        snapshot = reg.snapshot()
        assert all(family["series"] == [] for family in snapshot.values())


class TestConcurrency:
    def test_counter_monotonic_under_concurrent_writers(self):
        reg = MetricsRegistry()
        total = reg.counter("ops_total", "Ops.", ("worker",))
        lat = reg.histogram("ops_seconds", "Ops latency.")
        per_thread, threads = 2_000, 8

        def writer(worker: int) -> None:
            for _ in range(per_thread):
                total.inc(worker=str(worker % 2))
                lat.observe(0.001)

        pool = [threading.Thread(target=writer, args=(i,)) for i in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        grand = (reg.value("ops_total", worker="0")
                 + reg.value("ops_total", worker="1"))
        assert grand == per_thread * threads
        series = reg.snapshot()["ops_seconds"]["series"][0]
        assert series["count"] == per_thread * threads


class TestPrometheusRoundTrip:
    def test_export_parses_and_preserves_values(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "Requests.", ("mode",)).inc(5, mode="fast")
        reg.histogram("req_seconds", "Latency.", buckets=(0.1, 1.0)).observe(0.5)
        families = parse_prometheus_text(prometheus_text(reg))
        [sample] = families["req_total"]["samples"]
        assert sample["labels"] == {"mode": "fast"}
        assert sample["value"] == 5.0
        histogram = families["req_seconds"]
        assert histogram["type"] == "histogram"
        counts = [s for s in histogram["samples"]
                  if s["name"] == "req_seconds_count"]
        assert counts and counts[0]["value"] == 1.0

    def test_parser_rejects_garbage(self):
        import pytest

        with pytest.raises(ValueError):
            parse_prometheus_text("this is { not prometheus\n")


class TestObservabilityHub:
    def test_disabled_singleton_is_shared(self):
        assert Observability.disabled() is Observability.disabled()
        assert not Observability.disabled().enabled

    def test_hub_preregisters_core_families(self):
        obs = Observability(sample_rate=1.0)
        obs.requests_total.inc(mode="polystore++")
        obs.wal_fsync_seconds.observe(0.001, engine="db")
        names = set(obs.registry.snapshot())
        assert {"polystore_requests_total", "polystore_wal_fsync_seconds"} <= names
