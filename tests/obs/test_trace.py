"""Trace spans: executor nesting, sampling semantics, scatter subtasks."""

from __future__ import annotations

from repro import DataflowProgram, SystemConfig
from repro.cluster import ShardedEngine
from repro.core import build_accelerated_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.obs import ancestors, span_tree
from repro.stores import RelationalEngine


def _orders_table(rows: int = 60) -> Table:
    schema = make_schema(("order_id", DataType.INT),
                         ("customer", DataType.STRING),
                         ("amount", DataType.FLOAT))
    return Table(schema, [(i, f"c{i % 5}", float(i % 11)) for i in range(rows)])


def _observed_system(engine, **config_overrides):
    config_overrides.setdefault("obs_trace_sample_rate", 1.0)
    config = SystemConfig(obs_enabled=True, **config_overrides)
    return build_accelerated_polystore([engine], config=config)


def _aggregate_program(system, engine_name: str) -> DataflowProgram:
    totals = (system.dataset(engine_name).table("orders")
              .aggregate(["customer"], total=("sum", "amount"),
                         n_orders=("count", None))
              .named("totals"))
    program = DataflowProgram("orders_by_customer")
    program.output("totals", totals)
    return program


class TestExecutorNesting:
    def test_span_tree_matches_stage_structure(self):
        engine = RelationalEngine("ordersdb")
        engine.load_table("orders", _orders_table())
        system = _observed_system(engine)
        program = _aggregate_program(system, "ordersdb")

        session = system.session(name="t")
        prepared = session.prepare(program, mode="polystore++")
        result = prepared.run()
        assert len(result.output("totals")) == 5

        spans = system.obs.tracer.spans()
        children = span_tree(spans)
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name.split(":")[0], []).append(span)

        # One executor-run span, parented under the request span.
        [execute] = by_name["execute"]
        request_names = [s.name for s in by_name["request"]]
        assert any(name.startswith("request:") for name in request_names)
        assert next(ancestors(execute, spans)).name.startswith("request:")

        # Every stage span is a direct child of the run span, numbered in
        # the order the scheduler ran them.
        stages = sorted(by_name["stage"], key=lambda s: s.attrs["stage"])
        assert [s.attrs["stage"] for s in stages] == list(range(len(stages)))
        for stage in stages:
            assert stage.parent_id == execute.span_id

        # Every operator span hangs off the stage span whose index it ran
        # in — even when the stage dispatched it to a pool thread.
        ops = by_name["op"]
        assert len(ops) == len(result.report.records)
        stage_by_id = {s.span_id: s for s in stages}
        for op in ops:
            parent = stage_by_id[op.parent_id]
            assert parent.attrs["stage"] == op.attrs["stage"]
            assert op.attrs["rows_out"] >= 0

        # The tree is connected: every non-root span's parent is buffered.
        roots = [s for s in children.get(None, [])]
        assert roots and all(s.parent_id is None for s in roots)


class TestSampling:
    def test_sampled_out_request_counts_but_records_no_spans(self):
        engine = RelationalEngine("ordersdb")
        engine.load_table("orders", _orders_table())
        system = _observed_system(engine, obs_trace_sample_rate=0.0)
        program = _aggregate_program(system, "ordersdb")

        prepared = system.session(name="t").prepare(program, mode="polystore++")
        for _ in range(3):
            prepared.run()

        obs = system.obs
        assert len(obs.tracer.spans()) == 0
        assert obs.tracer.requests_sampled == 0
        assert obs.tracer.requests_seen >= 3
        assert obs.registry.value("polystore_requests_total",
                                  mode="polystore++") == 3
        assert obs.registry.value("polystore_operators_total",
                                  kind="scan") >= 1

    def test_nested_request_joins_the_active_trace(self):
        engine = RelationalEngine("ordersdb")
        engine.load_table("orders", _orders_table())
        system = _observed_system(engine)
        program = _aggregate_program(system, "ordersdb")

        system.execute(program, mode="polystore++")
        spans = system.obs.tracer.spans()
        requests = [s for s in spans if s.name.startswith("request:")]
        # One-shot execute opens a request scope and the inner prepared run
        # joins it: exactly one root request, everything else nested.
        roots = [s for s in requests if s.parent_id is None]
        assert len(roots) == 1
        assert all(s.trace_id == roots[0].trace_id for s in spans)


class TestScatterNesting:
    def test_shard_subtask_spans_nest_under_their_request(self):
        engine = ShardedEngine("cluster", RelationalEngine, 3)
        engine.load_table("orders", _orders_table(90), shard_key="order_id")
        system = _observed_system(engine)
        program = _aggregate_program(system, "cluster")

        prepared = system.session(name="t").prepare(program, mode="polystore++")
        prepared.run()

        spans = system.obs.tracer.spans()
        shard_spans = [s for s in spans if s.name.startswith("shard:")]
        assert len(shard_spans) >= 3
        for span in shard_spans:
            chain = [p.name for p in ancestors(span, spans)]
            assert any(name.startswith("op:") for name in chain), chain
            assert chain[-1].startswith("request:"), chain
