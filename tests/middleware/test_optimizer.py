"""Tests for the optimizer: cost model, Pareto utilities, random forest and DSE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.ir import Operator
from repro.middleware.optimizer import (
    ActiveLearningOptimizer,
    CostModel,
    DesignSpace,
    Evaluation,
    Parameter,
    ParetoArchive,
    RandomForestRegressor,
    RegressionTree,
    compare_to_random,
    hypervolume_2d,
    is_pareto_efficient,
    pareto_front,
)


class TestCostModel:
    def test_operator_cost_scales_with_rows(self):
        model = CostModel()
        small = Operator("scan", {"table": "t"})
        small.estimated_rows = 100
        large = Operator("scan", {"table": "t"})
        large.estimated_rows = 1_000_000
        assert model.operator_cost(large).time_s > model.operator_cost(small).time_s

    def test_sort_superlinear(self):
        model = CostModel()
        node = Operator("sort", {"by": "a"})
        node.estimated_rows = 1_000_000
        linear = Operator("filter", {"predicate": None})
        linear.estimated_rows = 1_000_000
        assert model.operator_cost(node).time_s > model.operator_cost(linear).time_s

    def test_migration_cost_orders_strategies(self):
        model = CostModel()
        payload = 100_000_000
        assert model.migration_cost(payload, "csv") > model.migration_cost(payload, "binary_pipe")
        assert model.migration_cost(payload, "binary_pipe") > model.migration_cost(payload, "rdma")

    def test_calibrate_updates_row_costs(self):
        from repro.stores.base import OperationMetrics
        model = CostModel()
        before = model.row_costs["scan"]
        metrics = [OperationMetrics("db", "scan", wall_time_s=1.0, rows_out=1000)]
        assert model.calibrate(metrics) == 1
        assert model.row_costs["scan"] != before


class TestPareto:
    def test_domination(self):
        a = Evaluation({}, (1.0, 1.0))
        b = Evaluation({}, (2.0, 2.0))
        c = Evaluation({}, (0.5, 3.0))
        assert a.dominates(b)
        assert not a.dominates(c)
        front = pareto_front([a, b, c])
        assert b not in front and a in front and c in front

    def test_is_pareto_efficient_matrix(self):
        points = np.array([[1, 1], [2, 2], [0.5, 3]])
        mask = is_pareto_efficient(points)
        assert mask.tolist() == [True, False, True]

    def test_hypervolume(self):
        volume = hypervolume_2d([(1.0, 1.0)], reference=(2.0, 2.0))
        assert volume == pytest.approx(1.0)
        better = hypervolume_2d([(0.5, 0.5)], reference=(2.0, 2.0))
        assert better > volume
        assert hypervolume_2d([], reference=(1.0, 1.0)) == 0.0

    def test_archive_tracks_front(self):
        archive = ParetoArchive()
        assert archive.add(Evaluation({"x": 1}, (1.0, 2.0)))
        assert not archive.add(Evaluation({"x": 2}, (3.0, 3.0)))
        assert len(archive.front) == 1
        best = archive.best_scalarized([1.0, 1.0])
        assert best.configuration == {"x": 1}


class TestDesignSpace:
    def test_sampling_and_encoding(self):
        space = DesignSpace([
            Parameter("engine", "categorical", ("a", "b")),
            Parameter("batch", "ordinal", (16, 32, 64)),
            Parameter("fraction", "continuous", low=0.0, high=1.0),
        ])
        samples = space.sample_many(20, seed=1)
        assert len(samples) == 20
        assert all(s["engine"] in ("a", "b") for s in samples)
        encoded = space.encode_many(samples)
        assert encoded.shape == (20, 3)

    def test_enumerate_discrete_space(self):
        space = DesignSpace([
            Parameter("a", "categorical", ("x", "y")),
            Parameter("b", "ordinal", (1, 2, 3)),
        ])
        assert space.size == 6
        assert len(list(space.enumerate())) == 6

    def test_invalid_parameters(self):
        with pytest.raises(OptimizationError):
            Parameter("p", "categorical")
        with pytest.raises(OptimizationError):
            Parameter("p", "continuous", low=1.0, high=1.0)
        with pytest.raises(OptimizationError):
            DesignSpace([])

    def test_polystore_default_space(self):
        space = DesignSpace.polystore_default(["db1"], ["fpga0"])
        names = [p.name for p in space.parameters]
        assert "migration_strategy" in names and "sort_target" in names


class TestRandomForest:
    def test_tree_fits_step_function(self):
        x = np.linspace(0, 1, 60).reshape(-1, 1)
        y = (x[:, 0] > 0.5).astype(float) * 10.0
        tree = RegressionTree(max_depth=3).fit(x, y)
        assert tree.predict(np.array([[0.1]]))[0] < 1.0
        assert tree.predict(np.array([[0.9]]))[0] > 9.0

    def test_forest_predicts_smooth_function(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=(150, 2))
        y = 3 * x[:, 0] + x[:, 1]
        forest = RandomForestRegressor(n_trees=12, seed=1).fit(x, y)
        predictions = forest.predict(x)
        error = float(np.mean(np.abs(predictions - y)))
        assert error < 0.5
        assert forest.predict_std(x).shape == (150,)

    def test_unfitted_forest_raises(self):
        with pytest.raises(OptimizationError):
            RandomForestRegressor().predict(np.ones((1, 2)))


def _objective(configuration: dict) -> tuple[float, float]:
    """A synthetic latency/energy tradeoff with known structure."""
    latency = {"fpga": 1.0, "gpu": 0.6, "none": 2.0}[configuration["target"]]
    latency *= 1.0 + 0.01 * (512 - configuration["batch"]) / 512
    energy = {"fpga": 0.5, "gpu": 2.0, "none": 1.0}[configuration["target"]]
    energy *= 1.0 + configuration["fraction"]
    return latency, energy


@pytest.fixture
def space() -> DesignSpace:
    return DesignSpace([
        Parameter("target", "categorical", ("fpga", "gpu", "none")),
        Parameter("batch", "ordinal", (64, 128, 256, 512)),
        Parameter("fraction", "continuous", low=0.0, high=1.0),
    ])


class TestActiveLearning:
    def test_budget_respected_and_front_nonempty(self, space):
        optimizer = ActiveLearningOptimizer(space, _objective, initial_samples=8,
                                            samples_per_iteration=4, seed=2)
        result = optimizer.optimize(budget=24)
        assert len(result.evaluations) == 24
        assert result.front
        assert result.iterations >= 1

    def test_front_contains_both_extremes(self, space):
        optimizer = ActiveLearningOptimizer(space, _objective, initial_samples=10, seed=3)
        result = optimizer.optimize(budget=40)
        targets = {e.configuration["target"] for e in result.front}
        # gpu is the latency extreme, fpga the energy extreme; both should survive.
        assert "gpu" in targets and "fpga" in targets

    def test_active_learning_not_worse_than_random(self, space):
        comparison = compare_to_random(space, _objective, budget=30,
                                       reference=(3.0, 4.0), seed=4)
        assert comparison["active_learning_hypervolume"] >= \
            0.9 * comparison["random_hypervolume"]

    def test_budget_below_initial_samples_rejected(self, space):
        optimizer = ActiveLearningOptimizer(space, _objective, initial_samples=10)
        with pytest.raises(OptimizationError):
            optimizer.optimize(budget=5)

    def test_objective_arity_checked(self, space):
        optimizer = ActiveLearningOptimizer(space, lambda c: (1.0,), initial_samples=2)
        with pytest.raises(OptimizationError):
            optimizer.optimize(budget=4)
