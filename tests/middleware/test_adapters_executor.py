"""Tests for the engine adapters and the executor."""

from __future__ import annotations

import pytest

from repro.catalog import Catalog
from repro.compiler import Compiler
from repro.datamodel import Table
from repro.exceptions import AdapterError, CatalogError, ExecutionError
from repro.ir import IRGraph, Operator
from repro.middleware.adapters import (
    KeyValueAdapter,
    MLAdapter,
    RelationalAdapter,
    TextAdapter,
    TimeseriesAdapter,
    adapter_for,
)
from repro.middleware.executor import Executor
from repro.stores import KeyValueEngine, MLEngine, RelationalEngine
from repro.stores.relational import compare
from repro.stores.relational.operators import AggregateSpec
from repro.workloads import build_mimic_program


class TestAdapterDispatch:
    def test_adapter_for_each_engine(self, mimic_engines):
        assert isinstance(adapter_for(mimic_engines["relational"]), RelationalAdapter)
        assert isinstance(adapter_for(mimic_engines["timeseries"]), TimeseriesAdapter)
        assert isinstance(adapter_for(mimic_engines["text"]), TextAdapter)
        assert isinstance(adapter_for(mimic_engines["ml"]), MLAdapter)
        assert isinstance(adapter_for(KeyValueEngine()), KeyValueAdapter)


class TestRelationalAdapter:
    def test_scan_and_federated_operators(self, relational_engine):
        adapter = RelationalAdapter(relational_engine)
        scan = Operator("scan", {"table": "patients"}, engine="testdb")
        table = adapter.execute(scan, [])
        assert len(table) == 5
        filtered = adapter.execute(
            Operator("filter", {"predicate": compare("age", ">", 60)}, ["x"], "testdb"),
            [table])
        assert len(filtered) == 3
        aggregated = adapter.execute(
            Operator("aggregate", {"group_by": [],
                                   "aggregates": [AggregateSpec("count", None, "n")]},
                     ["x"], "testdb"),
            [filtered])
        assert aggregated.to_dicts()[0]["n"] == 3

    def test_join_over_materialized_tables(self, relational_engine):
        adapter = RelationalAdapter(relational_engine)
        left = Table.from_dicts([{"pid": 1, "a": 10}, {"pid": 2, "a": 20}])
        right = Table.from_dicts([{"pid": 1, "b": "x"}])
        joined = adapter.execute(
            Operator("join", {"left_key": "pid", "right_key": "pid"}, ["l", "r"], "testdb"),
            [left, right])
        assert joined.to_dicts() == [{"pid": 1, "a": 10, "b": "x"}]

    def test_bad_input_type_raises(self, relational_engine):
        adapter = RelationalAdapter(relational_engine)
        with pytest.raises(AdapterError):
            adapter.execute(Operator("filter", {"predicate": compare("a", "=", 1)},
                                     ["x"], "testdb"), ["not a table"])


class TestNoSQLAdapters:
    def test_kv_prefix_lookup_builds_table(self):
        engine = KeyValueEngine()
        engine.put_many({f"customer/{i}": {"tier": i % 3} for i in range(5)})
        adapter = KeyValueAdapter(engine)
        table = adapter.execute(
            Operator("kv_get", {"key_prefix": "customer/", "key_column": "customer_id"},
                     engine="kv"), [])
        assert len(table) == 5
        assert set(table.schema.names) == {"customer_id", "tier"}
        assert sorted(table.column("customer_id")) == [0, 1, 2, 3, 4]

    def test_timeseries_summarize_extracts_entity_keys(self, mimic_engines):
        adapter = TimeseriesAdapter(mimic_engines["timeseries"])
        table = adapter.execute(
            Operator("ts_summarize", {"series_prefix": "hr/"}, engine="monitors"), [])
        assert len(table) == 60
        assert "vital_mean" in table.schema.names
        assert isinstance(table.column("pid")[0], int)

    def test_text_keyword_features(self, mimic_engines):
        adapter = TextAdapter(mimic_engines["text"])
        table = adapter.execute(
            Operator("keyword_features",
                     {"keywords": ["sepsis", "stable"], "doc_prefix": "note/",
                      "id_column": "pid"}, engine="notes-db"), [])
        assert len(table) == 60
        assert "kw_sepsis" in table.schema.names

    def test_keyword_features_requires_keywords(self, mimic_engines):
        adapter = TextAdapter(mimic_engines["text"])
        with pytest.raises(AdapterError):
            adapter.execute(Operator("keyword_features", {"keywords": []},
                                     engine="notes-db"), [])


class TestMLAdapter:
    def test_train_then_predict(self, mimic_engines):
        adapter = MLAdapter(mimic_engines["ml"])
        features = Table.from_dicts([
            {"pid": i, "x1": float(i % 7), "x2": float(i % 3), "long_stay": i % 2}
            for i in range(120)
        ])
        result = adapter.execute(
            Operator("train", {"model_name": "m", "label_column": "long_stay",
                               "epochs": 3}, ["f"], "ml"), [features])
        assert result["rows"] == 120
        assert 0.0 <= result["metrics"]["accuracy"] <= 1.0
        predictions = adapter.execute(
            Operator("predict", {"model_name": "m"}, ["f"], "ml"), [features])
        assert "prediction" in predictions.schema.names

    def test_train_requires_label(self, mimic_engines):
        adapter = MLAdapter(mimic_engines["ml"])
        features = Table.from_dicts([{"x": 1.0}])
        with pytest.raises(AdapterError):
            adapter.execute(Operator("train", {"model_name": "m",
                                               "label_column": "missing"}, ["f"], "ml"),
                            [features])

    def test_predict_unknown_model(self, mimic_engines):
        adapter = MLAdapter(mimic_engines["ml"])
        with pytest.raises(AdapterError):
            adapter.execute(Operator("predict", {"model_name": "ghost"}, ["f"], "ml"),
                            [Table.from_dicts([{"x": 1.0}])])


class TestExecutor:
    def _catalog(self, mimic_engines) -> Catalog:
        catalog = Catalog()
        for key in ("relational", "timeseries", "text", "ml"):
            catalog.register_engine(mimic_engines[key])
        return catalog

    def test_execute_compiled_mimic_program(self, mimic_engines):
        catalog = self._catalog(mimic_engines)
        compilation = Compiler(catalog).compile(build_mimic_program(epochs=1))
        outputs, report = Executor(catalog).execute(compilation.graph)
        assert "stay_model" in outputs
        assert report.total_time_s > 0
        assert report.pipelined_time_s <= report.total_time_s + 1e-9
        assert len(report.records) == len(compilation.graph)
        assert report.time_by_kind() and report.time_by_engine()

    def test_missing_engine_binding_fails(self, mimic_engines):
        catalog = self._catalog(mimic_engines)
        graph = IRGraph("broken")
        node = graph.add(Operator("scan", {"table": "admissions"}))
        graph.mark_output(node.op_id)
        with pytest.raises(ExecutionError):
            Executor(catalog).execute(graph)

    def test_unknown_engine_name_fails(self, mimic_engines):
        catalog = self._catalog(mimic_engines)
        graph = IRGraph("broken")
        node = graph.add(Operator("scan", {"table": "admissions"}, engine="ghost-db"))
        graph.mark_output(node.op_id)
        with pytest.raises(CatalogError):
            Executor(catalog).execute(graph)

    def test_migration_records_simulated_time(self, mimic_engines):
        catalog = self._catalog(mimic_engines)
        graph = IRGraph("migrate")
        scan = graph.add(Operator("scan", {"table": "admissions"}, engine="clinical-db"))
        migrate = graph.add(Operator(
            "migrate", {"source_engine": "clinical-db", "target_engine": "dnn-engine"},
            [scan.op_id], "dnn-engine"))
        graph.mark_output(migrate.op_id)
        executor = Executor(catalog)
        outputs, report = executor.execute(graph)
        migrate_record = [r for r in report.records if r.kind == "migrate"][0]
        assert migrate_record.simulated_time_s > 0
        assert migrate_record.details["strategy"]
        assert len(list(outputs.values())[0]) == 60

class TestConcurrentStageDispatch:
    def _catalog(self, mimic_engines) -> Catalog:
        catalog = Catalog()
        for key in ("relational", "timeseries", "text", "ml"):
            catalog.register_engine(mimic_engines[key])
        return catalog

    def _two_scan_graph(self) -> IRGraph:
        graph = IRGraph("parallel-scans")
        left = graph.add(Operator("scan", {"table": "admissions"}, engine="clinical-db"))
        right = graph.add(Operator("scan", {"table": "admissions"},
                                  engine="clinical-db"))
        graph.mark_output(left.op_id)
        graph.mark_output(right.op_id)
        return graph

    def test_thread_safe_siblings_run_concurrently(self, mimic_engines):
        catalog = self._catalog(mimic_engines)
        _, report = Executor(catalog).execute(self._two_scan_graph())
        assert all(record.concurrent for record in report.records)
        assert report.concurrent_tasks == 2
        assert report.elapsed_wall_s > 0

    def test_disabled_workers_fall_back_to_serial(self, mimic_engines):
        catalog = self._catalog(mimic_engines)
        executor = Executor(catalog, max_workers=None)
        _, report = executor.execute(self._two_scan_graph())
        assert report.concurrent_tasks == 0

    def test_serial_engine_is_never_dispatched_concurrently(self, mimic_engines):
        # The ML engine declares Concurrency.SERIAL: even when two of its
        # operators share a stage, dispatch stays on the calling thread.
        from repro.stores.base import Concurrency

        assert mimic_engines["ml"].concurrency is Concurrency.SERIAL
        catalog = self._catalog(mimic_engines)
        executor = Executor(catalog)
        scan = Operator("scan", {"table": "admissions"}, engine="clinical-db")
        assert executor._concurrency_safe(scan)
        train = Operator("train", {"model_name": "m", "label_column": "y"},
                         engine="dnn-engine")
        assert not executor._concurrency_safe(train)
        migrate = Operator("migrate", {}, engine="clinical-db")
        assert not executor._concurrency_safe(migrate)

    def test_concurrent_outputs_match_serial(self, mimic_engines):
        catalog = self._catalog(mimic_engines)
        graph = self._two_scan_graph()
        parallel_out, _ = Executor(catalog).execute(graph)
        serial_out, _ = Executor(catalog, max_workers=None).execute(graph)
        for key in serial_out:
            assert parallel_out[key].to_dicts() == serial_out[key].to_dicts()
