"""Tests for the data migrator and the simulated network."""

from __future__ import annotations

import pytest

from repro.accelerators import MigrationASIC
from repro.datamodel import DataType, Table, make_schema
from repro.exceptions import MigrationError
from repro.middleware.migration import (
    STRATEGIES,
    DataMigrator,
    NetworkLink,
    SimulatedNetwork,
)


@pytest.fixture
def table() -> Table:
    """A numeric-heavy table shaped like Pipegen's benchmark (4 ints, 3 doubles)."""
    schema = make_schema(
        ("a", DataType.INT), ("b", DataType.INT), ("c", DataType.INT),
        ("d", DataType.INT), ("x", DataType.FLOAT), ("y", DataType.FLOAT),
        ("z", DataType.FLOAT))
    return Table(schema, [
        (i, i * 1_000_003, i * 77, -i, i * 3.14159265, i / 7.0, i * -2.718281828)
        for i in range(500)
    ])


class TestSimulatedNetwork:
    def test_transfer_time_scales_with_payload(self):
        network = SimulatedNetwork()
        small = network.transfer(1_000)
        large = network.transfer(10_000_000)
        assert large.total_s > small.total_s
        assert network.total_transferred_bytes() == 10_001_000

    def test_rdma_reduces_protocol_overhead(self):
        network = SimulatedNetwork()
        software = network.transfer(50_000_000, rdma=False)
        rdma = network.transfer(50_000_000, rdma=True)
        assert rdma.protocol_overhead_s < software.protocol_overhead_s
        assert rdma.wire_time_s == software.wire_time_s

    def test_negative_payload_rejected(self):
        with pytest.raises(MigrationError):
            SimulatedNetwork().transfer(-1)

    def test_invalid_link_rejected(self):
        with pytest.raises(MigrationError):
            NetworkLink(bandwidth_gbs=0)

    def test_reset(self):
        network = SimulatedNetwork()
        network.transfer(10)
        network.reset()
        assert network.total_time_s() == 0.0


class TestMigrator:
    def test_all_software_strategies_preserve_data(self, table):
        migrator = DataMigrator()
        for strategy in ("csv", "binary_pipe", "rdma"):
            received, report = migrator.migrate(table, strategy=strategy)
            assert received.rows == table.rows
            assert report.strategy == strategy
            assert report.total_s > 0

    def test_unknown_strategy_rejected(self, table):
        with pytest.raises(MigrationError):
            DataMigrator().migrate(table, strategy="carrier_pigeon")
        with pytest.raises(MigrationError):
            DataMigrator(default_strategy="warp")

    def test_accelerated_requires_device(self, table):
        with pytest.raises(MigrationError):
            DataMigrator().migrate(table, strategy="accelerated")

    def test_accelerated_path_with_asic(self, table):
        migrator = DataMigrator(serializer_accelerator=MigrationASIC())
        received, report = migrator.migrate(table, strategy="accelerated")
        assert received.rows == table.rows
        assert report.serialization_offloaded
        assert report.total_s > 0

    def test_csv_payload_larger_than_binary(self, table):
        migrator = DataMigrator()
        _, csv_report = migrator.migrate(table, strategy="csv")
        _, binary_report = migrator.migrate(table, strategy="binary_pipe")
        assert csv_report.payload_bytes > binary_report.payload_bytes

    def test_transformation_dominates_naive_path(self, table):
        """The paper's Pipegen observation: most of the CSV path is format
        transformation, not wire transfer."""
        migrator = DataMigrator()
        _, report = migrator.migrate(table, strategy="csv")
        assert report.transformation_s > report.transfer_s

    def test_strategy_ordering_matches_paper(self, table):
        """csv >= binary_pipe >= accelerated in total migration time."""
        migrator = DataMigrator(serializer_accelerator=MigrationASIC())
        reports = migrator.compare_strategies(table)
        assert set(reports) == set(STRATEGIES)
        assert reports["csv"].total_s >= reports["binary_pipe"].total_s
        assert reports["binary_pipe"].total_s >= reports["accelerated"].total_s * 0.5

    def test_bookkeeping_totals(self, table):
        migrator = DataMigrator()
        migrator.migrate(table, strategy="binary_pipe", source="a", target="b")
        assert migrator.total_migrated_bytes() > 0
        assert migrator.total_time_s() > 0
        assert migrator.reports[0].details["source"] == "a"
