"""Runtime feedback: stats store, fingerprints and their consumers."""

from __future__ import annotations

import threading

import pytest

from repro.accelerators import FPGAAccelerator, KernelRegistry, OffloadPlanner, WorkEstimate
from repro.compiler.annotate import annotate_graph
from repro.ir.graph import IRGraph
from repro.ir.nodes import Operator
from repro.middleware.feedback import (
    RuntimeStats,
    baked_estimates,
    drift_ratio,
    fingerprint_graph,
    operator_fingerprint,
    plan_fingerprint,
)
from repro.middleware.optimizer import CostModel


def _graph() -> IRGraph:
    graph = IRGraph("g")
    scan = graph.add(Operator(kind="scan", params={"table": "orders"},
                              engine="db"))
    sort = graph.add(Operator(kind="sort", params={"by": "amount"},
                              inputs=[scan.op_id], engine="db"))
    graph.mark_output(sort.op_id)
    return graph


class TestFingerprints:
    def test_structural_identity_across_graphs(self):
        first, second = fingerprint_graph(_graph()), fingerprint_graph(_graph())
        assert sorted(first.values()) == sorted(second.values())

    def test_params_change_the_fingerprint(self):
        node = Operator(kind="scan", params={"table": "orders"}, engine="db")
        other = Operator(kind="scan", params={"table": "users"}, engine="db")
        assert operator_fingerprint(node, []) != operator_fingerprint(other, [])

    def test_annotations_do_not_change_the_fingerprint(self):
        node = Operator(kind="scan", params={"table": "orders"}, engine="db")
        bare = operator_fingerprint(node, [])
        node.estimated_rows = 12345
        node.annotations["rows_source"] = "observed"
        assert operator_fingerprint(node, []) == bare

    def test_inputs_feed_the_fingerprint(self):
        graph = _graph()
        fingerprints = fingerprint_graph(graph)
        scan_id = graph.nodes_of_kind("scan")[0].op_id
        sort_id = graph.nodes_of_kind("sort")[0].op_id
        assert fingerprints[scan_id] != fingerprints[sort_id]

    def test_plan_fingerprint_tracks_placement_not_estimates(self):
        graph = _graph()
        fingerprint_graph(graph)
        base = plan_fingerprint(graph)
        graph.nodes_of_kind("sort")[0].estimated_rows = 10**6
        assert plan_fingerprint(graph) == base  # estimates are not physical
        graph.nodes_of_kind("sort")[0].accelerator = "fpga0"
        assert plan_fingerprint(graph) != base  # placement is


class TestRuntimeStats:
    def test_first_sample_taken_verbatim_then_smoothed(self):
        stats = RuntimeStats(smoothing=0.5)
        stats.record("fp", kind="scan", target="db", time_s=1.0, rows_out=100)
        assert stats.observed_rows("fp") == 100
        stats.record("fp", kind="scan", target="db", time_s=3.0, rows_out=300)
        observed = stats.observed("fp")
        assert observed.rows_out == pytest.approx(200.0)
        assert observed.time_for("db") == pytest.approx(2.0)
        assert observed.samples == 2

    def test_selectivity_from_rows_in(self):
        stats = RuntimeStats()
        stats.record("fp", kind="filter", target="db", time_s=0.1,
                     rows_out=90, rows_in=100)
        assert stats.observed("fp").selectivity == pytest.approx(0.9)
        assert stats.observed("leaf") is None

    def test_actionable_floor_suppresses_tiny_observations(self):
        stats = RuntimeStats(min_actionable_rows=512)
        stats.record("small", kind="scan", target="db", time_s=0.1, rows_out=40)
        stats.record("big", kind="scan", target="db", time_s=0.1, rows_out=4000)
        assert stats.observed_rows("small") == 40
        assert stats.actionable_rows("small") is None
        assert stats.actionable_rows("big") == 4000

    def test_per_target_times(self):
        stats = RuntimeStats()
        stats.record("fp", kind="sort", target="db", time_s=0.5, rows_out=10)
        stats.record("fp", kind="sort", target="fpga0", time_s=0.001, rows_out=10)
        assert stats.observed_time("fp", "db") == pytest.approx(0.5)
        assert stats.observed_time("fp", "fpga0") == pytest.approx(0.001)
        assert stats.observed_time("fp", "gpu0") is None

    def test_shard_times_drive_serial_fan_out(self):
        stats = RuntimeStats()
        stats.record_shard_times("shardeddb", "scan", [1e-5, 2e-5])
        stats.record_shard_times("shardeddb", "sort", [0.05, 0.06])
        assert stats.prefer_serial_fan_out("shardeddb", "scan")
        assert not stats.prefer_serial_fan_out("shardeddb", "sort")
        assert not stats.prefer_serial_fan_out("otherdb", "scan")

    def test_thread_safety_under_concurrent_records(self):
        stats = RuntimeStats()

        def hammer(tag: str):
            for i in range(200):
                stats.record(f"fp-{tag}-{i % 5}", kind="scan", target="db",
                             time_s=0.001, rows_out=i)

        threads = [threading.Thread(target=hammer, args=(str(t),))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.stats()["recorded"] == 800
        assert len(stats) == 20

    def test_clear_and_invalid_smoothing(self):
        stats = RuntimeStats()
        stats.record("fp", kind="scan", target="db", time_s=0.1, rows_out=5)
        stats.clear()
        assert stats.observed("fp") is None
        with pytest.raises(ValueError):
            RuntimeStats(smoothing=0.0)

    def test_drift_ratio_is_symmetric(self):
        assert drift_ratio(100, 400) == pytest.approx(4.0)
        assert drift_ratio(400, 100) == pytest.approx(4.0)
        assert drift_ratio(0, 0) == pytest.approx(1.0)


class TestAnnotateConsumesObservations:
    def test_observed_rows_override_the_model(self):
        stats = RuntimeStats(min_actionable_rows=1)
        graph = _graph()
        fingerprints = fingerprint_graph(graph)
        scan_id = graph.nodes_of_kind("scan")[0].op_id
        stats.record(fingerprints[scan_id], kind="scan", target="db",
                     time_s=0.01, rows_out=7777)
        annotate_graph(graph, None, stats)
        scan = graph.nodes_of_kind("scan")[0]
        assert scan.estimated_rows == 7777
        assert scan.annotations["rows_source"] == "observed"
        assert scan.annotations["estimated_rows_model"] == 1000  # the default
        sort = graph.nodes_of_kind("sort")[0]
        assert sort.annotations["rows_source"] == "model"

    def test_baked_estimates_capture_the_compiled_plan(self):
        stats = RuntimeStats()
        graph = _graph()
        annotate_graph(graph, None, stats)
        baked = baked_estimates(graph)
        assert len(baked) == 2
        assert all(rows > 0 for rows in baked.values())


class TestPlannerConsumesObservedHostTime:
    def test_observed_host_time_flips_the_decision(self):
        planner = OffloadPlanner(KernelRegistry([FPGAAccelerator()]))
        work = WorkEstimate(rows=20_000, row_bytes=32)
        model = planner.decide("sort", work)
        assert not model.offloaded  # roofline host model says host wins
        observed = planner.decide("sort", work, observed_host_time_s=0.25)
        assert observed.offloaded
        assert observed.host_time_source == "observed"
        assert observed.host_time_s == pytest.approx(0.25)


class TestCostModelConsumesObservations:
    def test_observed_time_scales_with_estimate(self):
        stats = RuntimeStats()
        graph = _graph()
        fingerprints = fingerprint_graph(graph)
        sort = graph.nodes_of_kind("sort")[0]
        sort.estimated_rows = 2000
        stats.record(fingerprints[sort.op_id], kind="sort", target="db",
                     time_s=0.1, rows_out=1000, rows_in=1000)
        model = CostModel()
        estimate = model.operator_cost(sort, stats)
        assert estimate.source == "observed"
        assert estimate.time_s == pytest.approx(0.2)  # 2x the observed rows
        plain = model.operator_cost(sort)
        assert plain.source == "model"
        scan_cost = model.operator_cost(graph.nodes_of_kind("scan")[0]).time_s
        assert model.plan_cost(graph, stats=stats) == \
            pytest.approx(scan_cost + estimate.time_s)


class TestScatterFanOutAdaptation:
    def test_tiny_shard_subtasks_go_serial_after_observation(self):
        from repro import DataflowProgram, dataset
        from repro.core import build_cpu_polystore
        from repro.datamodel import DataType, Table, make_schema
        from repro.stores import RelationalEngine

        system = build_cpu_polystore([])
        engine = system.register_sharded_engine("tinydb", RelationalEngine, 4)
        schema = make_schema(("id", DataType.INT), ("v", DataType.FLOAT))
        engine.create_table("t", schema, shard_key="id")
        engine.insert("t", [(i, float(i)) for i in range(32)])

        program = DataflowProgram("tiny-scan")
        program.output("all", dataset("tinydb").table("t"))
        session = system.session(name="fanout")
        prepared = session.prepare(program)

        first = prepared.run(reuse_scans=False)
        scan = [r for r in first.report.records if r.kind == "scan"][0]
        assert scan.details["fan_out"] == "concurrent"  # no observations yet

        second = prepared.run(reuse_scans=False)
        scan = [r for r in second.report.records if r.kind == "scan"][0]
        # Observed subtasks are microseconds: thread dispatch costs more than
        # it saves, so the fan-out adaptively stays serial.
        assert scan.details["fan_out"] == "serial"
        assert second.output("all").to_dicts() == first.output("all").to_dicts()
        session.close()


class TestStatsRetention:
    def test_least_recently_touched_entries_evict_past_the_cap(self):
        stats = RuntimeStats(max_operators=3)
        for name in ("a", "b", "c"):
            stats.record(name, kind="scan", target="db", time_s=0.1, rows_out=10)
        stats.record("a", kind="scan", target="db", time_s=0.1, rows_out=10)
        stats.record("d", kind="scan", target="db", time_s=0.1, rows_out=10)
        assert stats.observed("b") is None  # oldest untouched entry evicted
        assert stats.observed("a") is not None
        assert stats.observed("d") is not None
        assert stats.stats()["evicted"] == 1
