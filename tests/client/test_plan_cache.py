"""Plan-cache behaviour: hits, misses, eviction, invalidation, per-mode keys."""

from __future__ import annotations

import pytest

from repro.client import PlanCache
from repro.core import build_accelerated_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.stores import RelationalEngine, TimeseriesEngine


def _small_system():
    relational = RelationalEngine("ordersdb")
    schema = make_schema(("order_id", DataType.INT), ("customer_id", DataType.INT),
                         ("amount", DataType.FLOAT))
    relational.load_table("orders", Table(schema, [
        (i, i % 10, float(i % 7)) for i in range(100)
    ]))
    timeseries = TimeseriesEngine("telemetry")
    for customer in range(10):
        timeseries.append_many(f"sessions/{customer}",
                               [(float(day), float(day % 5)) for day in range(10)])
    return build_accelerated_polystore([relational, timeseries])


def _orders_program():
    from repro import HeterogeneousProgram

    program = HeterogeneousProgram("orders-by-customer")
    program.sql("spend",
                "SELECT customer_id, sum(amount) AS total FROM orders "
                "GROUP BY customer_id", engine="ordersdb")
    program.timeseries_summary("sessions", series_prefix="sessions/",
                               engine="telemetry")
    program.join("features", left="spend", right="sessions",
                 left_key="customer_id", right_key="pid")
    program.output("features")
    return program


class TestPlanCacheLRU:
    def test_put_get_and_stats(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" so "b" is the LRU victim
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_invalidate_clears_everything(self):
        cache = PlanCache(capacity=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestSessionPlanCaching:
    def test_identical_programs_hit_the_cache(self):
        system = _small_system()
        session = system.session()
        first = session.prepare(_orders_program())
        second = session.prepare(_orders_program())
        assert first.fingerprint == second.fingerprint
        assert second.compilation is first.compilation
        stats = session.stats()["plan_cache"]
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_distinct_entries_per_mode(self):
        system = _small_system()
        session = system.session()
        accelerated = session.prepare(_orders_program(), mode="polystore++")
        cpu = session.prepare(_orders_program(), mode="cpu_polystore")
        assert accelerated.compilation is not cpu.compilation
        assert session.stats()["plan_cache"]["size"] == 2

    def test_register_engine_invalidates_cached_plans(self):
        system = _small_system()
        session = system.session()
        prepared = session.prepare(_orders_program())
        old_compilation = prepared.compilation
        generation = system.plan_generation
        system.register_engine(RelationalEngine("sidecar-db"))
        assert system.plan_generation == generation + 1
        assert session.stats()["plan_cache"]["size"] == 0
        # The prepared handle recompiles transparently on its next run.
        result = prepared.run()
        assert prepared.compilation is not old_compilation
        assert len(result.output("features")) > 0

    def test_program_mutation_changes_fingerprint(self):
        program_a = _orders_program()
        program_b = _orders_program()
        assert program_a.fingerprint() == program_b.fingerprint()
        # Mutating structure that feeds an output changes the identity.
        program_b.fragment("spend").params["query"] = (
            "SELECT customer_id, sum(amount) AS total FROM orders "
            "WHERE amount > 1 GROUP BY customer_id")
        assert program_a.fingerprint() != program_b.fingerprint()

    def test_dead_fragments_do_not_change_fingerprint(self):
        # Fingerprints cover the output-reachable dataflow only: a fragment
        # no output depends on cannot affect results, so two such programs
        # correctly share one cached plan.
        program_a = _orders_program()
        program_b = _orders_program()
        program_b.sql("extra", "SELECT * FROM orders", engine="ordersdb")
        assert program_a.fingerprint() == program_b.fingerprint()

    def test_one_shot_execute_reuses_cached_plans(self):
        system = _small_system()
        system.execute(_orders_program(), mode="cpu_polystore")
        system.execute(_orders_program(), mode="cpu_polystore")
        stats = system.default_session().stats()["plan_cache"]
        assert stats["hits"] >= 1


class TestDataVersionInvalidation:
    """Engine writes bump ``data_version`` and unpin exactly the affected scans."""

    def test_every_mutator_bumps_data_version(self):
        from repro.stores import KeyValueEngine, TextEngine

        relational = RelationalEngine("vdb")
        versions = [relational.data_version]
        schema = make_schema(("id", DataType.INT), ("x", DataType.FLOAT))
        relational.create_table("t", schema)
        versions.append(relational.data_version)
        relational.insert("t", [(1, 2.0)])
        versions.append(relational.data_version)
        relational.drop_table("t")
        versions.append(relational.data_version)
        assert versions == sorted(set(versions)), "each mutation must bump"

        keyvalue = KeyValueEngine("kvv")
        before = keyvalue.data_version
        keyvalue.put("a", 1)
        assert keyvalue.data_version > before
        mid = keyvalue.data_version
        keyvalue.delete("a")
        assert keyvalue.data_version > mid

        timeseries = TimeseriesEngine("tsv")
        before = timeseries.data_version
        timeseries.append("s", 1.0, 2.0)
        assert timeseries.data_version > before

        text = TextEngine("txv")
        before = text.data_version
        text.add_document("d1", "hello world")
        assert text.data_version > before

    def test_write_invalidates_pinned_scan_on_next_run(self):
        system = _small_system()
        session = system.session()
        prepared = session.prepare(_orders_program())
        prepared.run()
        replay = prepared.run()
        assert replay.report.cached_tasks > 0

        system.engine("ordersdb").insert("orders", [(1000, 3, 9.0)])
        fresh = prepared.run()
        spend = {row["customer_id"]: row["total"]
                 for row in fresh.output("features").to_dicts()}
        assert spend[3] == pytest.approx(sum(
            float(i % 7) for i in range(100) if i % 10 == 3) + 9.0)

    def test_untouched_engine_entries_stay_pinned(self):
        system = _small_system()
        session = system.session()
        prepared = session.prepare(_orders_program())
        prepared.run()
        # Write only to the timeseries engine: the relational subtree's pins
        # must survive while the timeseries subtree re-reads.
        system.engine("telemetry").append("sessions/0", 99.0, 1.0)
        result = prepared.run()
        cached_kinds = {r.kind for r in result.report.records if r.cached}
        fresh_kinds = {r.kind for r in result.report.records if not r.cached}
        assert "scan" in cached_kinds or "aggregate" in cached_kinds
        assert "ts_summarize" in fresh_kinds

    def test_snapshot_invalidated_counter_and_repin(self):
        system = _small_system()
        session = system.session()
        prepared = session.prepare(_orders_program())
        prepared.run()
        entry = prepared._entry
        pinned_before = entry.snapshot.pinned
        assert pinned_before > 0
        system.engine("ordersdb").insert("orders", [(1001, 4, 1.0)])
        prepared.run()
        assert entry.snapshot.invalidated > 0
        # Fresh results are re-pinned after the invalidating run.
        assert entry.snapshot.pinned == pinned_before
        replay = prepared.run()
        assert replay.report.cached_tasks > 0

    def test_refresh_forces_full_reread_without_version_change(self):
        system = _small_system()
        session = system.session()
        prepared = session.prepare(_orders_program())
        prepared.run()
        refreshed = prepared.run(refresh=True)
        assert refreshed.report.cached_tasks == 0
        assert prepared._entry.snapshot.pinned > 0


class TestScopedInvalidation:
    """Satellite: ``data_version`` is per-table/namespace, not per-engine."""

    def _two_table_system(self):
        relational = RelationalEngine("ordersdb")
        schema = make_schema(("order_id", DataType.INT), ("amount", DataType.FLOAT))
        relational.load_table("orders", Table(schema, [
            (i, float(i)) for i in range(50)]))
        relational.load_table("refunds", Table(schema, [
            (i, float(-i)) for i in range(20)]))
        return build_accelerated_polystore([relational])

    def _two_table_program(self):
        from repro.eide.dataflow import DataflowProgram, dataset

        program = DataflowProgram("two-tables")
        source = dataset("ordersdb")
        program.output("orders", source.table("orders"))
        program.output("refunds", source.table("refunds"))
        return program

    def test_write_to_one_table_keeps_other_tables_pinned(self):
        system = self._two_table_system()
        session = system.session()
        prepared = session.prepare(self._two_table_program())
        prepared.run()
        system.engine("ordersdb").insert("refunds", [(999, -1.0)])
        result = prepared.run()
        # Same engine, different table: the orders scan replays from its
        # pin while the refunds scan re-reads.
        cached = {r.cached for r in result.report.records if r.kind == "scan"}
        assert cached == {True, False}
        fresh = [r for r in result.report.records
                 if r.kind == "scan" and not r.cached]
        assert len(fresh) == 1
        assert len(result.output("refunds")) == 21

    def test_write_to_same_table_still_invalidates(self):
        system = self._two_table_system()
        session = system.session()
        prepared = session.prepare(self._two_table_program())
        prepared.run()
        system.engine("ordersdb").insert("orders", [(999, 1.0)])
        result = prepared.run()
        fresh = [r for r in result.report.records if not r.cached]
        assert any(r.kind == "scan" for r in fresh)
        assert len(result.output("orders")) == 51

    def test_per_series_scoping_for_timeseries_reads(self):
        timeseries = TimeseriesEngine("telemetry")
        timeseries.append_many("cpu", [(float(i), 1.0) for i in range(10)])
        timeseries.append_many("mem", [(float(i), 2.0) for i in range(10)])
        system = build_accelerated_polystore([timeseries])
        from repro.eide.dataflow import DataflowProgram, dataset

        program = DataflowProgram("two-series")
        source = dataset("telemetry")
        program.output("cpu", source.series("cpu"))
        program.output("mem", source.series("mem"))
        session = system.session()
        prepared = session.prepare(program)
        prepared.run()
        timeseries.append("mem", 99.0, 3.0)
        result = prepared.run()
        states = sorted(r.cached for r in result.report.records)
        assert states == [False, True]  # cpu pinned, mem re-read


class TestSnapshotRelease:
    """Satellite: evicted/superseded entries release their pinned snapshots."""

    def test_lru_eviction_clears_the_victims_pins(self):
        system = _small_system()
        session = system.session(plan_cache_size=1)
        first = session.prepare(_orders_program())
        first.run()
        entry = first._entry
        assert entry.snapshot.pinned > 0
        # Preparing a different program evicts the first entry...
        other = _orders_program()
        other.sql("extra", "SELECT * FROM orders", engine="ordersdb")
        other.output("extra")
        session.prepare(other)
        # ...and the eviction callback released its pinned engine reads.
        assert entry.snapshot.pinned == 0
        # The live handle simply re-pins on its next run.
        first.run()
        assert entry.snapshot.pinned > 0

    def test_same_key_replacement_clears_the_old_snapshot(self):
        system = _small_system()
        session = system.session()
        prepared = session.prepare(_orders_program())
        prepared.run()
        old_entry = prepared._entry
        assert old_entry.snapshot.pinned > 0
        key = session._plan_key(old_entry.fingerprint, prepared._plan)
        replacement = session.plan_cache.get(key)
        assert replacement is old_entry
        # Simulate what plan aging does: replace the entry under its key.
        from repro.client.cache import CachedPlan, ScanSnapshot

        new_entry = CachedPlan(
            compilation=old_entry.compilation,
            snapshot=ScanSnapshot(old_entry.compilation.graph),
            generation=old_entry.generation,
            fingerprint=old_entry.fingerprint,
            mode=old_entry.mode,
        )
        session.plan_cache.put(key, new_entry)
        assert old_entry.snapshot.pinned == 0

    def test_invalidation_clears_every_entrys_pins(self):
        system = _small_system()
        session = system.session()
        prepared = session.prepare(_orders_program())
        prepared.run()
        entry = prepared._entry
        assert entry.snapshot.pinned > 0
        system.register_engine(RelationalEngine("sidecar"))
        assert entry.snapshot.pinned == 0

    def test_unreferenced_evicted_entries_are_collectable(self):
        import gc
        import weakref

        system = _small_system()
        session = system.session(plan_cache_size=1)
        prepared = session.prepare(_orders_program())
        prepared.run()
        snapshot_ref = weakref.ref(prepared._entry.snapshot)
        entry_ref = weakref.ref(prepared._entry)
        other = _orders_program()
        other.sql("extra", "SELECT * FROM orders", engine="ordersdb")
        other.output("extra")
        session.prepare(other)  # evicts the first entry from the LRU
        del prepared  # drop the only remaining strong reference
        gc.collect()
        assert entry_ref() is None
        assert snapshot_ref() is None


class TestOverlappingRunValidation:
    def test_lookup_declines_pins_stale_for_this_run(self):
        """A run that began after a write must not replay an older run's pin."""
        from repro.client import ScanSnapshot
        from repro.ir.graph import IRGraph
        from repro.ir.nodes import Operator
        from repro.middleware.executor.report import TaskRecord

        system = _small_system()
        graph = IRGraph("g")
        node = graph.add(Operator("scan", {"table": "orders"}, [], "ordersdb"))
        graph.mark_output(node.op_id)
        snapshot = ScanSnapshot(graph)

        # Run A begins at version v1 and reads its value...
        snapshot.begin_run(system.catalog)
        record = TaskRecord(op_id=node.op_id, kind="scan", engine="ordersdb",
                            accelerator=None, stage=0, wall_time_s=0.0,
                            simulated_time_s=0.0)
        # ...the engine is written, and run B begins at v2 (nothing pinned yet).
        value_at_v1 = "rows-read-at-v1"
        system.engine("ordersdb").insert("orders", [(2000, 1, 1.0)])
        snapshot_versions_a = dict(snapshot._run_state.versions)
        snapshot.begin_run(system.catalog)  # B's begin_run on the shared snapshot
        # A's store lands late, tagged with A's (stale) versions.
        snapshot._run_state.versions = snapshot_versions_a
        snapshot.store(node.op_id, value_at_v1, record)
        # B's lookup must decline the stale pin instead of replaying it.
        snapshot._run_state.versions = {
            "ordersdb": system.engine("ordersdb").data_version}
        assert snapshot.lookup(node.op_id) is None
        # A run that matches the pinned versions still replays.
        snapshot._run_state.versions = snapshot_versions_a
        assert snapshot.lookup(node.op_id)[0] == value_at_v1
