"""Plan-cache behaviour: hits, misses, eviction, invalidation, per-mode keys."""

from __future__ import annotations

import pytest

from repro.client import PlanCache
from repro.core import build_accelerated_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.stores import RelationalEngine, TimeseriesEngine


def _small_system():
    relational = RelationalEngine("ordersdb")
    schema = make_schema(("order_id", DataType.INT), ("customer_id", DataType.INT),
                         ("amount", DataType.FLOAT))
    relational.load_table("orders", Table(schema, [
        (i, i % 10, float(i % 7)) for i in range(100)
    ]))
    timeseries = TimeseriesEngine("telemetry")
    for customer in range(10):
        timeseries.append_many(f"sessions/{customer}",
                               [(float(day), float(day % 5)) for day in range(10)])
    return build_accelerated_polystore([relational, timeseries])


def _orders_program():
    from repro import HeterogeneousProgram

    program = HeterogeneousProgram("orders-by-customer")
    program.sql("spend",
                "SELECT customer_id, sum(amount) AS total FROM orders "
                "GROUP BY customer_id", engine="ordersdb")
    program.timeseries_summary("sessions", series_prefix="sessions/",
                               engine="telemetry")
    program.join("features", left="spend", right="sessions",
                 left_key="customer_id", right_key="pid")
    program.output("features")
    return program


class TestPlanCacheLRU:
    def test_put_get_and_stats(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" so "b" is the LRU victim
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_invalidate_clears_everything(self):
        cache = PlanCache(capacity=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestSessionPlanCaching:
    def test_identical_programs_hit_the_cache(self):
        system = _small_system()
        session = system.session()
        first = session.prepare(_orders_program())
        second = session.prepare(_orders_program())
        assert first.fingerprint == second.fingerprint
        assert second.compilation is first.compilation
        stats = session.stats()["plan_cache"]
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_distinct_entries_per_mode(self):
        system = _small_system()
        session = system.session()
        accelerated = session.prepare(_orders_program(), mode="polystore++")
        cpu = session.prepare(_orders_program(), mode="cpu_polystore")
        assert accelerated.compilation is not cpu.compilation
        assert session.stats()["plan_cache"]["size"] == 2

    def test_register_engine_invalidates_cached_plans(self):
        system = _small_system()
        session = system.session()
        prepared = session.prepare(_orders_program())
        old_compilation = prepared.compilation
        generation = system.plan_generation
        system.register_engine(RelationalEngine("sidecar-db"))
        assert system.plan_generation == generation + 1
        assert session.stats()["plan_cache"]["size"] == 0
        # The prepared handle recompiles transparently on its next run.
        result = prepared.run()
        assert prepared.compilation is not old_compilation
        assert len(result.output("features")) > 0

    def test_program_mutation_changes_fingerprint(self):
        program_a = _orders_program()
        program_b = _orders_program()
        assert program_a.fingerprint() == program_b.fingerprint()
        program_b.sql("extra", "SELECT * FROM orders", engine="ordersdb")
        assert program_a.fingerprint() != program_b.fingerprint()

    def test_one_shot_execute_reuses_cached_plans(self):
        system = _small_system()
        system.execute(_orders_program(), mode="cpu_polystore")
        system.execute(_orders_program(), mode="cpu_polystore")
        stats = system.default_session().stats()["plan_cache"]
        assert stats["hits"] >= 1
