"""Session API: prepared re-execution, scan snapshots, params, concurrency."""

from __future__ import annotations

import pytest

from repro import HeterogeneousProgram, Param
from repro.client import PreparedProgram
from repro.core import build_accelerated_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.exceptions import CompilationError, ExecutionError
from repro.stores import MLEngine, RelationalEngine, TimeseriesEngine


@pytest.fixture
def deployment():
    relational = RelationalEngine("ordersdb")
    schema = make_schema(("order_id", DataType.INT), ("customer_id", DataType.INT),
                         ("amount", DataType.FLOAT), ("returned", DataType.INT))
    relational.load_table("orders", Table(schema, [
        (i, i % 20, (i % 13) * 2.0, int(i % 13 > 8)) for i in range(400)
    ]))
    timeseries = TimeseriesEngine("telemetry")
    for customer in range(20):
        timeseries.append_many(f"sessions/{customer}",
                               [(float(day), float((customer + day) % 7))
                                for day in range(12)])
    ml = MLEngine("ml")
    return build_accelerated_polystore([relational, timeseries, ml])


def query_program() -> HeterogeneousProgram:
    program = HeterogeneousProgram("spend-features")
    program.sql("spend",
                "SELECT customer_id, sum(amount) AS total_spend, count(*) AS n "
                "FROM orders GROUP BY customer_id", engine="ordersdb")
    program.timeseries_summary("sessions", series_prefix="sessions/",
                               engine="telemetry")
    program.join("features", left="spend", right="sessions",
                 left_key="customer_id", right_key="pid")
    program.output("features")
    return program


def train_program() -> HeterogeneousProgram:
    program = query_program()
    # Rebuild with a training head so ML work stays un-pinnable.
    trained = HeterogeneousProgram("spend-model")
    trained.sql("spend",
                "SELECT customer_id, sum(amount) AS total_spend, "
                "max(returned) AS any_return FROM orders GROUP BY customer_id",
                engine="ordersdb")
    trained.timeseries_summary("sessions", series_prefix="sessions/",
                               engine="telemetry")
    trained.join("features", left="spend", right="sessions",
                 left_key="customer_id", right_key="pid")
    trained.train("model", features="features", label_column="any_return",
                  epochs=2, engine="ml")
    trained.output("model")
    return trained


class TestPreparedPrograms:
    def test_prepare_freezes_and_blocks_mutation(self, deployment):
        session = deployment.session()
        program = query_program()
        prepared = session.prepare(program)
        assert isinstance(prepared, PreparedProgram)
        assert program.frozen
        with pytest.raises(CompilationError):
            program.sql("late", "SELECT * FROM orders", engine="ordersdb")

    def test_prepared_outputs_match_one_shot(self, deployment):
        session = deployment.session()
        prepared = session.prepare(query_program())
        expected = deployment.execute(query_program()).output("features").to_dicts()
        for _ in range(3):
            got = prepared.run().output("features").to_dicts()
            assert got == expected

    def test_second_run_replays_pinned_scans(self, deployment):
        session = deployment.session()
        prepared = session.prepare(query_program())
        first = prepared.run()
        second = prepared.run()
        assert first.report.cached_tasks == 0
        assert second.report.cached_tasks == len(second.report.records)
        assert second.report.elapsed_wall_s < first.report.elapsed_wall_s

    def test_engine_write_invalidates_snapshot(self, deployment):
        session = deployment.session()
        prepared = session.prepare(query_program())
        baseline = prepared.run().output("features").to_dicts()
        assert prepared.run().report.cached_tasks > 0
        deployment.engine("ordersdb").insert("orders", [(1000, 3, 99.0, 0)])
        refreshed = prepared.run()
        # Invalidation is per-subtree: everything reading ordersdb re-runs,
        # while the untouched timeseries summary — and the migration that
        # ships it, a pure function of its input — stays pinned.
        fresh_kinds = {r.kind for r in refreshed.report.records if not r.cached}
        cached_kinds = {r.kind for r in refreshed.report.records if r.cached}
        assert "join" in fresh_kinds
        assert cached_kinds <= {"ts_summarize", "migrate"}
        changed = refreshed.output("features").to_dicts()
        assert changed != baseline

    def test_refresh_forces_engine_reads(self, deployment):
        session = deployment.session()
        prepared = session.prepare(query_program())
        prepared.run()
        refreshed = prepared.run(refresh=True)
        assert refreshed.report.cached_tasks == 0

    def test_training_head_is_never_pinned(self, deployment):
        session = deployment.session()
        prepared = session.prepare(train_program())
        prepared.run()
        second = prepared.run()
        replayed = {r.op_id for r in second.report.records if r.cached}
        fresh = {r.kind for r in second.report.records if not r.cached}
        assert "train" in fresh
        assert replayed  # the query subtree was still served from pins

    def test_charged_time_survives_replay(self, deployment):
        """Replayed runs keep charged-time accounting comparable across modes."""
        session = deployment.session()
        prepared = session.prepare(query_program())
        first = prepared.run()
        second = prepared.run()
        assert second.total_time_s == pytest.approx(first.total_time_s, rel=0.6)
        assert second.report.wall_time_s < first.report.wall_time_s


class TestReviewRegressions:
    def test_caller_mutation_cannot_poison_pins(self, deployment):
        session = deployment.session()
        prepared = session.prepare(query_program())
        prepared.run()
        table = prepared.run().output("features")
        expected = len(table)
        table.rows.pop()  # callers own their results; pins must be isolated
        assert len(prepared.run().output("features")) == expected

    def test_in_place_params_mutation_recompiles(self, deployment):
        session = deployment.session()
        program = query_program()
        prepared = session.prepare(program, freeze=False)
        assert len(prepared.run().output("features")) == 20
        program.fragment("spend").params["query"] = (
            "SELECT customer_id, sum(amount) AS total_spend, count(*) AS n "
            "FROM orders WHERE customer_id < 5 GROUP BY customer_id")
        assert len(prepared.run().output("features")) == 5

    def test_mode_plan_reresolved_after_deployment_change(self, deployment):
        from repro.core import build_cpu_polystore

        system = build_cpu_polystore([RelationalEngine("soloDB")])
        system.engine("soloDB").load_table(
            "t", Table(make_schema(("x", DataType.INT)), [(1,), (2,)]))
        program = HeterogeneousProgram("solo")
        program.sql("rows", "SELECT x FROM t", engine="soloDB")
        program.output("rows")
        session = system.session()
        prepared = session.prepare(program, mode="polystore++")
        assert prepared._plan.migration_strategy == "binary_pipe"
        from dataclasses import replace

        from repro.accelerators.asic import (
            DEFAULT_MIGRATION_ASIC_PROFILE,
            MigrationASIC,
        )

        system.register_accelerator(
            MigrationASIC(replace(DEFAULT_MIGRATION_ASIC_PROFILE, name="late-asic")),
            use_for_migration=True)
        prepared.run()
        assert prepared._plan.migration_strategy == "accelerated"

    def test_session_rejects_explicit_zero_workers(self, deployment):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            deployment.session(max_workers=0)


class TestRuntimeParameters:
    def test_param_binding_and_defaults(self, deployment):
        # The summary window's end time is bound per run, prepared once.
        session = deployment.session()
        parameterized = HeterogeneousProgram("bounded-sessions")
        parameterized.timeseries_summary("sessions", series_prefix="sessions/",
                                         end=Param("end", default=None),
                                         engine="telemetry")
        parameterized.output("sessions")
        prepared = session.prepare(parameterized)
        assert set(prepared.parameters()) == {"end"}
        everything = prepared.run()
        bounded = prepared.run(end=3.0)
        all_rows = everything.output("sessions").to_dicts()
        few_rows = bounded.output("sessions").to_dicts()
        assert {r["pid"] for r in all_rows} == {r["pid"] for r in few_rows}
        assert (max(r["vital_count"] for r in few_rows)
                < max(r["vital_count"] for r in all_rows))

    def test_unknown_parameter_rejected(self, deployment):
        session = deployment.session()
        parameterized = HeterogeneousProgram("bounded")
        parameterized.timeseries_summary("sessions", series_prefix="sessions/",
                                         end=Param("end", default=None),
                                         engine="telemetry")
        prepared = session.prepare(parameterized)
        with pytest.raises(ExecutionError, match="unknown parameter"):
            prepared.run(limit=5)


class TestConcurrentSessions:
    def test_eight_parallel_submits_match_serial(self, deployment):
        serial = deployment.execute(query_program()).output("features").to_dicts()
        with deployment.session(max_workers=8) as session:
            futures = [session.submit(query_program(), reuse_scans=False)
                       for _ in range(8)]
            results = [f.result() for f in futures]
        assert len(results) == 8
        for result in results:
            assert result.output("features").to_dicts() == serial

    def test_run_batch_preserves_order_and_outputs(self, deployment):
        serial = deployment.execute(query_program()).output("features").to_dicts()
        with deployment.session(max_workers=4) as session:
            prepared = session.prepare(query_program())
            results = session.run_batch([prepared] * 8)
        assert all(r.output("features").to_dicts() == serial for r in results)

    def test_intra_stage_concurrency_reported(self, deployment):
        # spend (relational) and sessions (timeseries) share a stage and both
        # engines are thread-safe, so the executor overlaps them.
        result = deployment.execute(query_program())
        assert result.report.concurrent_tasks >= 2
        assert result.report.observed_concurrency >= 1.0

    def test_closed_session_rejects_work(self, deployment):
        session = deployment.session()
        session.close()
        with pytest.raises(ExecutionError, match="closed"):
            session.prepare(query_program())


class TestSatelliteFixes:
    def test_missing_output_lists_available_names(self, deployment):
        result = deployment.execute(query_program())
        with pytest.raises(ExecutionError, match="features"):
            result.output("nonexistent")

    @staticmethod
    def _asic(name: str):
        from dataclasses import replace

        from repro.accelerators.asic import DEFAULT_MIGRATION_ASIC_PROFILE, MigrationASIC

        return MigrationASIC(replace(DEFAULT_MIGRATION_ASIC_PROFILE, name=name))

    def test_last_explicit_serializer_wins(self):
        from repro.core import PolystorePlusPlus

        system = PolystorePlusPlus()
        first = self._asic("asic-a")
        second = self._asic("asic-b")
        system.register_accelerator(first, use_for_migration=True)
        system.register_accelerator(second, use_for_migration=True)
        assert system.serializer_accelerator is second
        config = system.describe()["config"]
        assert config["migration_serializer"] == "asic-b"
        assert config["migration_serializer_explicit"] is True

    def test_implicit_serializer_never_displaces_explicit(self):
        from repro.core import PolystorePlusPlus

        system = PolystorePlusPlus()
        explicit = self._asic("asic-explicit")
        system.register_accelerator(explicit, use_for_migration=True)
        system.register_accelerator(self._asic("asic-implicit"))
        assert system.serializer_accelerator is explicit


class TestParamDefaultPinning:
    def test_argumentless_runs_of_param_programs_reuse_pins(self, deployment):
        program = query_program()
        program.fragment("sessions").params["end"] = Param("end", default=None)
        session = deployment.session()
        prepared = session.prepare(program)
        first = prepared.run()
        replay = prepared.run()
        # The all-defaults binding is identical run-to-run, so pinned scans
        # replay even though the program declares a Param.
        assert replay.report.cached_tasks > 0
        assert replay.output("features").rows == first.output("features").rows

    def test_explicit_bindings_still_bypass_pins(self, deployment):
        program = query_program()
        program.fragment("sessions").params["end"] = Param("end", default=None)
        session = deployment.session()
        prepared = session.prepare(program)
        full = prepared.run()
        bound = prepared.run(end=2.0)
        assert bound.report.cached_tasks == 0
        # A tighter window changes the timeseries features.
        full_means = [r["vital_mean"] for r in full.output("features").to_dicts()]
        bound_means = [r["vital_mean"] for r in bound.output("features").to_dicts()]
        assert full_means != bound_means
        # And the argument-less fast path still works afterwards.
        replay = prepared.run()
        assert replay.report.cached_tasks > 0


class TestWorkerPoolLifecycle:
    def test_worker_pool_cannot_be_resurrected_after_close(self, deployment):
        session = deployment.session()
        prepared = session.prepare(query_program())
        session.submit(prepared).result()
        session.close()
        assert session._pool is None
        # A submit that slipped past _check_open before close() must not
        # recreate the pool.
        with pytest.raises(ExecutionError):
            session._worker_pool()
        assert session._pool is None
