"""Deadlines and cooperative cancellation on the session API."""

from __future__ import annotations

import time

import pytest

from repro import CancellationToken, DataflowProgram, SystemConfig, col
from repro.cancellation import CancellationToken as _DirectToken
from repro.core import PolystorePlusPlus, build_cpu_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.exceptions import CancelledError, DeadlineExceededError
from repro.stores import RelationalEngine


class TestCancellationToken:
    def test_reexported_from_package_root(self):
        assert CancellationToken is _DirectToken

    def test_explicit_cancel_wins_over_deadline(self):
        token = CancellationToken(deadline_s=0.0)
        token.cancel("user said stop")
        with pytest.raises(CancelledError) as excinfo:
            token.check()
        assert not isinstance(excinfo.value, DeadlineExceededError)
        assert "user said stop" in str(excinfo.value)

    def test_cancel_is_idempotent_first_reason_wins(self):
        token = CancellationToken()
        token.cancel("first")
        token.cancel("second")
        assert token.reason == "first"

    def test_deadline_expiry_raises_deadline_exceeded(self):
        clock = [0.0]
        token = CancellationToken(deadline_s=1.0, clock=lambda: clock[0])
        token.check()
        assert token.remaining_s() == pytest.approx(1.0)
        clock[0] = 2.0
        assert token.expired()
        with pytest.raises(DeadlineExceededError):
            token.check()

    def test_add_deadline_only_tightens(self):
        clock = [0.0]
        token = CancellationToken(deadline_s=5.0, clock=lambda: clock[0])
        token.add_deadline(1.0)
        assert token.remaining_s() == pytest.approx(1.0)
        token.add_deadline(10.0)  # looser: ignored
        assert token.remaining_s() == pytest.approx(1.0)

    def test_deadline_exceeded_is_a_cancelled_error(self):
        # Callers that catch CancelledError handle both shapes.
        assert issubclass(DeadlineExceededError, CancelledError)


def _build_system(*, sharded: bool = False, shard_factory=None,
                  num_shards: int = 4):
    schema = make_schema(("row_id", DataType.INT), ("value", DataType.FLOAT))
    rows = [(i, float(i % 5)) for i in range(40)]
    if sharded:
        system = PolystorePlusPlus(SystemConfig(
            obs_enabled=True, obs_trace_sample_rate=1.0))
        engine = system.register_sharded_engine(
            "shardeddb", shard_factory or RelationalEngine, num_shards)
        engine.load_table("events", Table(schema, rows), shard_key="row_id")
        return system
    engine = RelationalEngine("plaindb")
    engine.load_table("events", Table(schema, rows))
    return build_cpu_polystore([engine], config=SystemConfig(
        obs_enabled=True, obs_trace_sample_rate=1.0))


def _program(system, source, udf=None, name="cancel-prog"):
    expr = system.dataset(source).table("events")
    if udf is not None:
        expr = expr.apply(udf)
    expr = expr.filter(col("value") >= 0.0)
    program = DataflowProgram(name)
    program.output("out", expr)
    return program


class TestSessionDeadlines:
    def test_execute_deadline_stops_a_slow_run(self):
        system = _build_system()

        def slow(table):
            time.sleep(0.2)
            return table

        with pytest.raises(DeadlineExceededError):
            system.default_session().execute(
                _program(system, "plaindb", udf=slow), deadline_s=0.05)

    def test_prepared_run_honors_deadline(self):
        system = _build_system()

        def slow(table):
            time.sleep(0.2)
            return table

        prepared = system.session(name="t").prepare(
            _program(system, "plaindb", udf=slow))
        with pytest.raises(DeadlineExceededError):
            prepared.run(deadline_s=0.05)
        # The handle stays usable: a run without a deadline completes.
        assert prepared.run().output("out").num_rows == 40

    def test_precancelled_token_fails_fast_without_running(self):
        system = _build_system()
        calls = []

        def udf(table):
            calls.append(1)
            return table

        prepared = system.session(name="t").prepare(
            _program(system, "plaindb", udf=udf))
        token = CancellationToken()
        token.cancel("never mind")
        with pytest.raises(CancelledError):
            prepared.run(cancellation=token)
        assert calls == []

    def test_deadline_and_token_compose(self):
        system = _build_system()
        token = CancellationToken()
        prepared = system.session(name="t").prepare(
            _program(system, "plaindb"))
        # A generous deadline with a live token: runs fine.
        result = prepared.run(deadline_s=30.0, cancellation=token)
        assert result.output("out").num_rows == 40


class TestScatterCancellation:
    def test_cancelled_fanout_stops_dispatching_remaining_shards(self):
        """Cancel fired by the first shard's scan: with a serial fan-out the
        remaining shard subtasks must never dispatch, observable both from
        the engine hook and from the recorded trace spans."""
        token = CancellationToken()
        scans = []

        class HookedEngine(RelationalEngine):
            def scan(self, table, columns=None):
                scans.append(self.name)
                if len(scans) == 1:
                    token.cancel("stop after first shard")
                return super().scan(table, columns)

        num_shards = 4
        system = _build_system(sharded=True, shard_factory=HookedEngine,
                               num_shards=num_shards)
        # max_workers=1 keeps the fan-out serial, so "stops dispatching" is
        # deterministic: shard 0 runs, the loop checks the token, stops.
        session = system.session(name="serial", max_workers=1)
        prepared = session.prepare(_program(system, "shardeddb"))
        with pytest.raises(CancelledError):
            prepared.run(cancellation=token)

        assert len(scans) == 1, f"extra shard scans dispatched: {scans}"
        shard_spans = [s for s in system.obs.tracer.spans()
                       if s.name.startswith("shard:")]
        assert 1 <= len(shard_spans) < num_shards

    def test_uncancelled_fanout_touches_every_shard(self):
        scans = []

        class CountingEngine(RelationalEngine):
            def scan(self, table, columns=None):
                scans.append(self.name)
                return super().scan(table, columns)

        system = _build_system(sharded=True, shard_factory=CountingEngine,
                               num_shards=4)
        session = system.session(name="serial", max_workers=1)
        result = session.prepare(_program(system, "shardeddb")).run()
        assert result.output("out").num_rows == 40
        assert len(scans) == 4
