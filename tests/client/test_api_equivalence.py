"""Old-API vs new-API equivalence: fingerprints, IR, plan cache, outputs.

For each example pipeline, the legacy ``HeterogeneousProgram`` build and the
equivalent ``Dataset`` expression build must produce the same fingerprint
(so they share one plan-cache entry), lower to the identical optimized IR,
and return identical results under both the accelerated ``polystore++`` mode
and a baseline mode.
"""

from __future__ import annotations

import math

import pytest

from repro import DataflowProgram, HeterogeneousProgram, col, dataset
from repro.core import build_accelerated_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.stores import (
    KeyValueEngine,
    MLEngine,
    RelationalEngine,
    TimeseriesEngine,
)
from repro.workloads import (
    build_mimic_program,
    build_recommendation_program,
    build_top_spenders_program,
    generate_recommendation,
    load_recommendation,
)


# -- pipeline pairs ---------------------------------------------------------------------


def quickstart_pair() -> tuple[HeterogeneousProgram, DataflowProgram]:
    """The quickstart pipeline: SQL aggregate + session features -> train."""
    old = HeterogeneousProgram("quickstart")
    old.sql(
        "spend",
        "SELECT customer_id, sum(amount) AS total_spend, count(*) AS n_orders, "
        "max(returned) AS any_return FROM orders GROUP BY customer_id",
        engine="ordersdb",
    )
    old.timeseries_summary("sessions", series_prefix="sessions/", engine="telemetry")
    old.join("features", left="spend", right="sessions",
             left_key="customer_id", right_key="pid")
    old.train("return_model", features="features", label_column="any_return",
              epochs=2, engine="ml")
    old.output("return_model")

    spend = (dataset("ordersdb").table("orders")
             .aggregate(["customer_id"],
                        total_spend=("sum", "amount"),
                        n_orders=("count", None),
                        any_return=("max", "returned"))
             .named("spend"))
    sessions = dataset("telemetry").timeseries("sessions/").named("sessions")
    features = spend.join(sessions, left_key="customer_id",
                          right_key="pid").named("features")
    model = features.train(label_column="any_return", model_name="return_model",
                           epochs=2, engine="ml")
    new = DataflowProgram("quickstart")
    new.output("return_model", model)
    return old, new


def recommendation_pair() -> tuple[HeterogeneousProgram, DataflowProgram]:
    """The Figure 1 recommendation pipeline across three stores."""
    old = build_recommendation_program(epochs=2)

    spend = (dataset("sales-db").table("transactions")
             .aggregate(["customer_id"],
                        total_spend=("sum", "amount"), n_orders=("count", None))
             .named("spend"))
    profiles = dataset("profiles").kv(key_prefix="customer/").named("profiles")
    engagement = dataset("clickstream").timeseries("clicks/").named("engagement")
    behaviour = spend.join(engagement, left_key="customer_id",
                           right_key="pid").named("behaviour")
    features = behaviour.join(profiles, left_key="customer_id",
                              right_key="customer_id").named("features")
    model = features.train(label_column="converted", model_name="offer_model",
                           epochs=2, engine="reco-ml")
    new = DataflowProgram("next-best-offer")
    new.output("offer_model", model)
    return old, new


def top_spenders_pair() -> tuple[HeterogeneousProgram, DataflowProgram]:
    """The reporting query: top-k customers by total spend."""
    old = build_top_spenders_program(5)

    top = (dataset("sales-db").table("transactions")
           .aggregate(["customer_id"], total_spend=("sum", "amount"))
           .sort("total_spend", descending=True)
           .limit(5))
    new = DataflowProgram("top-spenders")
    new.output("top", top)
    return old, new


def mimic_pair() -> tuple[HeterogeneousProgram, DataflowProgram]:
    """The Figure 2 ICU-stay pipeline (relational + stream + text -> train)."""
    old = build_mimic_program(min_age=40, epochs=2)

    admissions = (dataset("clinical-db")
                  .table("admissions")
                  .filter(col("age") >= 40)
                  .project("pid", "age", "num_procedures", "prior_admissions",
                           "long_stay")
                  .named("admissions"))
    vitals = dataset("monitors").timeseries("hr/").named("vitals")
    notes = (dataset("notes-db").text()
             .keyword_features(["sepsis", "ventilator", "stable"],
                               doc_prefix="note/", id_column="pid")
             .named("note_features"))
    clinical = admissions.join(vitals, on="pid").named("clinical")
    features = clinical.join(notes, on="pid").named("features")
    model = features.train(label_column="long_stay", model_name="stay_model",
                           hidden_dims=(32, 16), epochs=2, engine="dnn-engine")
    new = DataflowProgram("mimic-icu-stay")
    new.output("stay_model", model)
    return old, new


# -- deployments ------------------------------------------------------------------------


@pytest.fixture
def quickstart_system():
    relational = RelationalEngine("ordersdb")
    schema = make_schema(("order_id", DataType.INT), ("customer_id", DataType.INT),
                         ("amount", DataType.FLOAT), ("returned", DataType.INT))
    relational.load_table("orders", Table(schema, [
        (i, i % 40, (i % 37) * 3.5, int((i % 37) * 3.5 > 90)) for i in range(400)
    ]))
    timeseries = TimeseriesEngine("telemetry")
    for customer in range(40):
        timeseries.append_many(
            f"sessions/{customer}",
            [(float(day), float((customer + day) % 10)) for day in range(10)])
    return build_accelerated_polystore([relational, timeseries, MLEngine("ml")])


@pytest.fixture
def recommendation_system():
    dataset_ = generate_recommendation(80, seed=7)
    relational = RelationalEngine("sales-db")
    keyvalue = KeyValueEngine("profiles")
    timeseries = TimeseriesEngine("clickstream")
    load_recommendation(dataset_, relational=relational, keyvalue=keyvalue,
                        timeseries=timeseries)
    return build_accelerated_polystore([relational, keyvalue, timeseries,
                                        MLEngine("reco-ml")])


PAIRS = {
    "quickstart": quickstart_pair,
    "recommendation": recommendation_pair,
    "top_spenders": top_spenders_pair,
    "mimic": mimic_pair,
}


def _system_for(name: str, request) -> object:
    if name == "quickstart":
        return request.getfixturevalue("quickstart_system")
    if name == "mimic":
        return request.getfixturevalue("mimic_accelerated_system")
    return request.getfixturevalue("recommendation_system")


def _comparable(value) -> object:
    """Canonical form of an output for equality checks."""
    if isinstance(value, Table):
        return sorted(tuple(sorted(row.items())) for row in value.to_dicts())
    if isinstance(value, dict) and "metrics" in value:
        return value["metrics"]
    return value


# -- the equivalence contract -----------------------------------------------------------


@pytest.mark.parametrize("pipeline", sorted(PAIRS))
def test_fingerprints_match(pipeline):
    old, new = PAIRS[pipeline]()
    assert old.fingerprint() == new.fingerprint()


@pytest.mark.parametrize("pipeline", sorted(PAIRS))
def test_optimized_ir_is_identical(pipeline, request):
    old, new = PAIRS[pipeline]()
    system = _system_for(pipeline, request)
    old_graph = system.compile(old).graph
    new_graph = system.compile(new).graph
    assert old_graph.render() == new_graph.render()


@pytest.mark.parametrize("pipeline", sorted(PAIRS))
def test_programs_share_one_plan_cache_entry(pipeline, request):
    old, new = PAIRS[pipeline]()
    system = _system_for(pipeline, request)
    with system.session(name="equivalence") as session:
        first = session.prepare(old)
        second = session.prepare(new)
        assert first.fingerprint == second.fingerprint
        stats = session.stats()["plan_cache"]
        assert stats["size"] == 1 and stats["hits"] == 1


@pytest.mark.parametrize("pipeline", sorted(PAIRS))
@pytest.mark.parametrize("mode", ["polystore++", "cpu_polystore"])
def test_outputs_identical_across_apis(pipeline, mode, request):
    old, new = PAIRS[pipeline]()
    system = _system_for(pipeline, request)
    old_result = system.execute(old, mode=mode)
    new_result = system.execute(new, mode=mode)
    assert list(old_result.outputs) == list(new_result.outputs)
    for name in old_result.outputs:
        old_value = _comparable(old_result.output(name))
        new_value = _comparable(new_result.output(name))
        if isinstance(old_value, dict):  # model metrics
            for metric, value in old_value.items():
                assert math.isclose(value, new_value[metric], rel_tol=1e-9), metric
        else:
            assert old_value == new_value
