"""Plan aging: drifted cardinalities re-optimize, stable workloads keep pins."""

from __future__ import annotations

from repro import DataflowProgram, col, dataset
from repro.core import build_accelerated_polystore, build_cpu_polystore
from repro.core.system import SystemConfig
from repro.datamodel import DataType, Table, make_schema
from repro.stores import RelationalEngine

_SCHEMA = make_schema(("event_id", DataType.INT), ("value", DataType.FLOAT))


def _rows(n: int, offset: int = 0) -> list[tuple]:
    return [(offset + i, float((offset + i) * 31 % 1009)) for i in range(n)]


def _engine(n: int = 300) -> RelationalEngine:
    engine = RelationalEngine("eventsdb")
    engine.load_table("events", Table(_SCHEMA, _rows(n)))
    return engine


def _sorted_program() -> DataflowProgram:
    ranked = dataset("eventsdb").table("events").sort("value", descending=True)
    program = DataflowProgram("ranked-events")
    program.output("ranked", ranked)
    return program


class TestGrowthTriggersReoptimization:
    def test_grown_table_gets_a_new_plan(self):
        engine = _engine(300)
        system = build_accelerated_polystore([engine], include_gpu=False,
                                             include_tpu=False,
                                             include_migration_asic=False)
        session = system.session(name="aging")
        prepared = session.prepare(_sorted_program())

        first = prepared.run(reuse_scans=False)
        original_plan = prepared.compilation.plan_fingerprint
        assert not first.report.reoptimized
        assert first.report.offloaded_tasks == 0  # 300 rows: host sort

        # The table grows 100x after the plan was compiled and observed.
        engine.insert("events", _rows(30_000, offset=300))
        observing = prepared.run(reuse_scans=False)
        assert not observing.report.reoptimized  # this run records the drift

        reoptimized = prepared.run(reuse_scans=False)
        assert reoptimized.report.reoptimized
        assert reoptimized.report.summary()["reoptimized"] is True
        assert prepared.reoptimizations == 1
        # A new physical plan was recorded: the grown sort moved to the FPGA.
        assert prepared.compilation.plan_fingerprint != original_plan
        assert reoptimized.report.offloaded_tasks >= 1

        # The new plan is stable: no further churn on subsequent runs.
        settled = prepared.run(reuse_scans=False)
        assert not settled.report.reoptimized
        assert prepared.reoptimizations == 1
        session.close()

    def test_stable_workload_keeps_plan_and_pins(self):
        system = build_accelerated_polystore([_engine(2000)], include_gpu=False,
                                             include_tpu=False,
                                             include_migration_asic=False)
        session = system.session(name="stable")
        prepared = session.prepare(_sorted_program())
        prepared.run()
        original_plan = prepared.compilation.plan_fingerprint
        for _ in range(3):
            result = prepared.run()
            assert not result.report.reoptimized
            assert result.report.cached_tasks > 0  # pinned scans replayed
        assert prepared.reoptimizations == 0
        assert prepared.compilation.plan_fingerprint == original_plan
        session.close()


class TestHarmlessDrift:
    def test_estimate_drift_without_plan_change_keeps_pins(self):
        # The equality predicate is estimated at 10% selectivity but actually
        # keeps ~97% of the rows — drift well past the factor.  With no
        # accelerators attached the re-compiled plan is physically identical,
        # so the entry (and its pinned scans) must survive.
        engine = RelationalEngine("flowsdb")
        schema = make_schema(("flow_id", DataType.INT), ("state", DataType.STRING))
        engine.load_table("flows", Table(schema, [
            (i, "open" if i % 32 else "closed") for i in range(4000)
        ]))
        system = build_cpu_polystore([engine])
        session = system.session(name="harmless")

        flows = (dataset("flowsdb").table("flows")
                 .filter(col("state").eq("open"))
                 .aggregate([], n=("count", None)))
        program = DataflowProgram("open-flows")
        program.output("summary", flows)

        prepared = session.prepare(program)
        prepared.run()
        original_plan = prepared.compilation.plan_fingerprint
        second = prepared.run()  # drift detected, re-compiled, plan unchanged
        third = prepared.run()
        assert not second.report.reoptimized and not third.report.reoptimized
        assert prepared.reoptimizations == 0
        assert prepared.compilation.plan_fingerprint == original_plan
        assert third.report.cached_tasks > 0  # pins survived the re-bake
        # The re-bake refreshed the baked estimates from observations.
        assert third.output("summary").to_dicts()[0]["n"] == \
            sum(1 for i in range(4000) if i % 32)
        session.close()


class TestAgingKnobs:
    def test_disabled_feedback_never_reoptimizes(self):
        engine = _engine(300)
        system = build_accelerated_polystore(
            [engine], config=SystemConfig(adaptive_feedback=False),
            include_gpu=False, include_tpu=False, include_migration_asic=False)
        session = system.session(name="frozen")
        prepared = session.prepare(_sorted_program())
        prepared.run(reuse_scans=False)
        engine.insert("events", _rows(30_000, offset=300))
        for _ in range(3):
            result = prepared.run(reuse_scans=False)
            assert not result.report.reoptimized
        assert prepared.reoptimizations == 0
        assert system.feedback_stats is None
        session.close()

    def test_drift_factor_none_disables_aging(self):
        engine = _engine(300)
        system = build_accelerated_polystore(
            [engine], config=SystemConfig(reoptimize_drift_factor=None),
            include_gpu=False, include_tpu=False, include_migration_asic=False)
        session = system.session(name="no-aging")
        prepared = session.prepare(_sorted_program())
        prepared.run(reuse_scans=False)
        engine.insert("events", _rows(30_000, offset=300))
        prepared.run(reuse_scans=False)
        result = prepared.run(reuse_scans=False)
        assert not result.report.reoptimized
        assert prepared.reoptimizations == 0
        # Stats are still collected (feedback on) — only aging is off.
        assert system.feedback_stats is not None
        assert len(system.feedback_stats) > 0
        session.close()
