"""Tests for the property-graph engine."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError, StorageError
from repro.stores.graph import GraphEngine, PatternStep


@pytest.fixture
def ward_graph() -> GraphEngine:
    engine = GraphEngine("wards")
    for ward in ("emergency", "icu", "surgery", "recovery", "general"):
        engine.add_node(ward, "ward", {"beds": 10})
    engine.add_node("p1", "patient", {"age": 70})
    engine.add_edge("emergency", "icu", "transfer", {"weight": 2.0})
    engine.add_edge("emergency", "general", "transfer", {"weight": 1.0})
    engine.add_edge("general", "recovery", "transfer", {"weight": 1.0})
    engine.add_edge("icu", "surgery", "transfer", {"weight": 1.0})
    engine.add_edge("surgery", "recovery", "transfer", {"weight": 1.0})
    engine.add_edge("p1", "emergency", "admitted_to")
    return engine


class TestGraphStructure:
    def test_duplicate_node_rejected(self, ward_graph: GraphEngine):
        with pytest.raises(StorageError):
            ward_graph.add_node("icu", "ward")

    def test_edge_requires_endpoints(self, ward_graph: GraphEngine):
        with pytest.raises(StorageError):
            ward_graph.add_edge("icu", "missing", "transfer")

    def test_labels_and_counts(self, ward_graph: GraphEngine):
        stats = ward_graph.statistics()
        assert stats["nodes"] == 6
        assert stats["edges"] == 6
        assert set(stats["labels"]) == {"ward", "patient"}

    def test_neighbors_and_degree(self, ward_graph: GraphEngine):
        graph = ward_graph.graph
        assert set(graph.neighbors("emergency", "transfer")) == {"icu", "general"}
        assert graph.degree("recovery") == 2


class TestQueries:
    def test_shortest_path_unweighted(self, ward_graph: GraphEngine):
        path, cost = ward_graph.shortest_path("emergency", "recovery")
        assert cost == 2.0
        assert path == ["emergency", "general", "recovery"]

    def test_shortest_path_weighted_prefers_cheap_edges(self, ward_graph: GraphEngine):
        path, cost = ward_graph.shortest_path("emergency", "surgery", weighted=True)
        assert path == ["emergency", "icu", "surgery"]
        assert cost == 3.0

    def test_no_path_raises(self, ward_graph: GraphEngine):
        with pytest.raises(QueryError):
            ward_graph.shortest_path("recovery", "emergency")

    def test_reachable_with_depth_limit(self, ward_graph: GraphEngine):
        depths = ward_graph.reachable("emergency", max_depth=1)
        assert set(depths) == {"emergency", "icu", "general"}

    def test_subtree(self, ward_graph: GraphEngine):
        assert "recovery" in ward_graph.subtree("emergency")

    def test_pattern_match_two_hops(self, ward_graph: GraphEngine):
        matches = ward_graph.match("ward", [PatternStep(edge_label="transfer"),
                                            PatternStep(edge_label="transfer")])
        ends = {m.nodes[-1].node_id for m in matches}
        assert "recovery" in ends or "surgery" in ends
        assert all(len(m.edges) == 2 for m in matches)

    def test_pattern_match_with_filter(self, ward_graph: GraphEngine):
        matches = ward_graph.match(
            "patient", [PatternStep(edge_label="admitted_to", node_label="ward")])
        assert len(matches) == 1
        assert matches[0].nodes[-1].node_id == "emergency"

    def test_neighborhood_aggregate(self, ward_graph: GraphEngine):
        value = ward_graph.neighborhood_aggregate("emergency", "beds",
                                                  edge_label="transfer",
                                                  aggregation="sum")
        assert value == 20.0

    def test_neighborhood_aggregate_missing_property(self, ward_graph: GraphEngine):
        assert ward_graph.neighborhood_aggregate("emergency", "nonexistent") is None

    def test_central_nodes(self, ward_graph: GraphEngine):
        ranked = ward_graph.central_nodes(top_k=2)
        assert len(ranked) == 2
        assert ranked[0][1] >= ranked[1][1]

    def test_bulk_load(self):
        engine = GraphEngine()
        engine.load_nodes([{"node_id": "a", "label": "x", "v": 1},
                           {"node_id": "b", "label": "x", "v": 2}])
        engine.load_edges([{"source": "a", "target": "b", "label": "e", "weight": 3.0}])
        assert engine.graph.num_edges == 1
        assert engine.node_properties("x")[0]["v"] == 1
