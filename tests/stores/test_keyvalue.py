"""Tests for the LSM-style key/value engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stores.keyvalue import KeyValueEngine, MemTable, SSTable, merge_sstables
from repro.stores.keyvalue.memtable import TOMBSTONE


class TestMemTable:
    def test_put_get_delete(self):
        memtable = MemTable(capacity=10)
        memtable.put("a", 1)
        memtable.delete("a")
        found, value = memtable.get("a")
        assert found and value is TOMBSTONE

    def test_items_sorted(self):
        memtable = MemTable()
        for key in ("c", "a", "b"):
            memtable.put(key, key)
        assert [k for k, _ in memtable.items()] == ["a", "b", "c"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MemTable(capacity=0)


class TestSSTable:
    def test_requires_sorted_entries(self):
        with pytest.raises(ValueError):
            SSTable([("b", 1), ("a", 2)])

    def test_range_scan(self):
        sstable = SSTable([(f"k{i}", i) for i in range(10)])
        assert [v for _, v in sstable.range("k2", "k5")] == [2, 3, 4]

    def test_merge_prefers_newer_and_drops_tombstones(self):
        old = SSTable([("a", 1), ("b", 2)])
        new = SSTable([("a", 10), ("b", TOMBSTONE)])
        merged = merge_sstables([old, new])
        assert merged.get("a") == (True, 10)
        assert merged.get("b") == (False, None)


class TestEngine:
    def test_get_put_delete(self):
        engine = KeyValueEngine(memtable_capacity=4)
        engine.put("x", {"v": 1})
        assert engine.get("x") == {"v": 1}
        engine.delete("x")
        assert engine.get("x") is None
        assert not engine.contains("x")

    def test_flush_and_read_from_sstable(self):
        engine = KeyValueEngine(memtable_capacity=2)
        for i in range(7):
            engine.put(f"k{i}", i)
        stats = engine.statistics()
        assert stats["sstables"] >= 2
        assert engine.get("k0") == 0 and engine.get("k6") == 6

    def test_overwrite_across_flushes(self):
        engine = KeyValueEngine(memtable_capacity=2)
        engine.put("k", "old")
        engine.flush()
        engine.put("k", "new")
        assert engine.get("k") == "new"

    def test_range_is_sorted_and_live_only(self):
        engine = KeyValueEngine(memtable_capacity=3)
        engine.put_many({f"user/{i}": i for i in range(5)})
        engine.delete("user/2")
        keys = [k for k, _ in engine.range("user/", "user0")]
        assert keys == ["user/0", "user/1", "user/3", "user/4"]

    def test_compact_reduces_sstables(self):
        engine = KeyValueEngine(memtable_capacity=2)
        for i in range(10):
            engine.put(f"k{i}", i)
        engine.compact()
        assert engine.statistics()["sstables"] == 1
        assert len(engine) == 10

    def test_multi_get_skips_missing(self):
        engine = KeyValueEngine()
        engine.put("a", 1)
        assert engine.multi_get(["a", "missing"]) == {"a": 1}

    def test_wal_recovery_reproduces_state(self):
        engine = KeyValueEngine(memtable_capacity=3)
        engine.put("a", 1)
        engine.put("b", 2)
        engine.delete("a")
        engine.put("c", 3)
        recovered = engine.recover_from_wal()
        assert recovered.get("a") is None
        assert recovered.get("b") == 2
        assert recovered.get("c") == 3

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["put", "delete"]),
                  st.text(alphabet="abcde", min_size=1, max_size=3),
                  st.integers(0, 100)),
        max_size=60,
    ))
    def test_property_matches_dict_model(self, operations):
        """The LSM engine behaves exactly like a plain dict reference model."""
        engine = KeyValueEngine(memtable_capacity=4)
        model: dict[str, int] = {}
        for op, key, value in operations:
            if op == "put":
                engine.put(key, value)
                model[key] = value
            else:
                engine.delete(key)
                model.pop(key, None)
        assert dict(engine.scan()) == model
