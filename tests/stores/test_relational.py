"""Tests for the relational engine: SQL, planning, indexes and execution."""

from __future__ import annotations

import pytest

from repro.datamodel import DataType, Table, make_schema
from repro.exceptions import QueryError, StorageError
from repro.stores.base import Capability
from repro.stores.relational import RelationalEngine, parse_select
from repro.stores.relational.planner import (
    AggregatePlan,
    FilterPlan,
    JoinPlan,
    build_plan,
)
from repro.stores.relational.storage import HeapStorage


class TestSqlParser:
    def test_simple_select(self):
        statement = parse_select("SELECT a, b FROM t WHERE a > 5 ORDER BY b DESC LIMIT 3")
        assert statement.table == "t"
        assert [i.column for i in statement.items] == ["a", "b"]
        assert statement.order_by == "b" and statement.order_descending
        assert statement.limit == 3

    def test_star_select(self):
        assert parse_select("SELECT * FROM t").select_star

    def test_join_clause(self):
        statement = parse_select(
            "SELECT a FROM t JOIN u ON t.id = u.id WHERE u.x = 'y'")
        assert statement.joins[0].table == "u"
        assert statement.joins[0].left_key == "t.id"

    def test_aggregates_and_group_by(self):
        statement = parse_select(
            "SELECT customer, sum(amount) AS total FROM txns GROUP BY customer")
        assert statement.items[1].aggregate == "sum"
        assert statement.items[1].output_name == "total"
        assert statement.group_by == ["customer"]

    def test_in_and_is_null(self):
        statement = parse_select(
            "SELECT a FROM t WHERE a IN (1, 2, 3) AND b IS NOT NULL")
        assert statement.where is not None

    def test_string_literal_with_quote(self):
        statement = parse_select("SELECT a FROM t WHERE name = 'o''brien'")
        assert "o'brien" in str(statement.where)

    def test_syntax_error(self):
        with pytest.raises(QueryError):
            parse_select("SELECT FROM t")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(QueryError):
            parse_select("SELECT a FROM t garbage garbage")


class TestPlanner:
    def test_plan_shape_for_join_query(self):
        plan = build_plan(parse_select(
            "SELECT a FROM t JOIN u ON t.id = u.id WHERE t.a > 1 ORDER BY a"))
        kinds = [type(node).__name__ for node in plan.walk()]
        assert "SortPlan" in kinds and "FilterPlan" in kinds and "JoinPlan" in kinds

    def test_aggregate_plan(self):
        plan = build_plan(parse_select(
            "SELECT region, count(*) AS n FROM t GROUP BY region"))
        aggregate_nodes = [n for n in plan.walk() if isinstance(n, AggregatePlan)]
        assert aggregate_nodes and aggregate_nodes[0].group_by == ("region",)

    def test_render_is_multiline(self):
        plan = build_plan(parse_select("SELECT a FROM t WHERE a = 1"))
        assert len(plan.render().splitlines()) >= 2


class TestHeapStorage:
    def test_pages_fill_and_grow(self):
        heap = HeapStorage(make_schema(("a", DataType.INT)), page_capacity=4)
        heap.insert_many([(i,) for i in range(10)])
        assert heap.num_pages == 3
        assert heap.num_rows == 10
        assert list(heap.scan()) == [(i,) for i in range(10)]

    def test_fetch_by_rid(self):
        heap = HeapStorage(make_schema(("a", DataType.INT)), page_capacity=2)
        rid = heap.insert((7,))
        assert heap.fetch(*rid) == (7,)

    def test_invalid_rid(self):
        heap = HeapStorage(make_schema(("a", DataType.INT)))
        with pytest.raises(StorageError):
            heap.fetch(3, 0)


class TestEngine:
    def test_capabilities(self, relational_engine: RelationalEngine):
        assert relational_engine.supports(Capability.JOIN)
        assert not relational_engine.supports(Capability.TEXT_SEARCH)

    def test_duplicate_table_rejected(self, relational_engine: RelationalEngine):
        with pytest.raises(StorageError):
            relational_engine.create_table("patients", relational_engine.table_schema("patients"))

    def test_filter_and_order(self, relational_engine: RelationalEngine):
        result = relational_engine.execute_sql(
            "SELECT pid, age FROM patients WHERE age > 60 ORDER BY age DESC")
        assert result.column("age") == [85, 72, 64]

    def test_aggregate_sql(self, relational_engine: RelationalEngine):
        result = relational_engine.execute_sql(
            "SELECT count(*) AS n, avg(age) AS mean_age FROM patients")
        assert result.to_dicts()[0]["n"] == 5

    def test_join_sql(self, relational_engine: RelationalEngine):
        visits = Table.from_dicts([
            {"pid": 1, "ward": "icu"}, {"pid": 1, "ward": "recovery"},
            {"pid": 3, "ward": "icu"},
        ])
        relational_engine.load_table("visits", visits)
        result = relational_engine.execute_sql(
            "SELECT name, ward FROM patients JOIN visits ON patients.pid = visits.pid")
        assert result.num_rows == 3

    def test_index_lookup(self, relational_engine: RelationalEngine):
        relational_engine.create_index("patients", "pid", kind="hash")
        result = relational_engine.index_lookup("patients", "pid", 3)
        assert result.column("name") == ["alan"]

    def test_range_lookup_requires_sorted_index(self, relational_engine: RelationalEngine):
        with pytest.raises(StorageError):
            relational_engine.range_lookup("patients", "age", 50, 80)
        relational_engine.create_index("patients", "age", kind="sorted")
        result = relational_engine.range_lookup("patients", "age", 50, 80)
        assert sorted(result.column("age")) == [51, 64, 72]

    def test_top_k(self, relational_engine: RelationalEngine):
        result = relational_engine.top_k("patients", "score", 2)
        assert result.column("score") == [0.9, 0.7]

    def test_missing_table_raises(self, relational_engine: RelationalEngine):
        with pytest.raises(StorageError):
            relational_engine.scan("nope")

    def test_metrics_recorded(self, relational_engine: RelationalEngine):
        relational_engine.scan("patients")
        operations = [m.operation for m in relational_engine.metrics.records]
        assert "scan" in operations

    def test_empty_result_keeps_schema(self, relational_engine: RelationalEngine):
        result = relational_engine.execute_sql("SELECT pid FROM patients WHERE age > 200")
        assert result.num_rows == 0
