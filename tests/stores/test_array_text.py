"""Tests for the array store and the text store."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StorageError
from repro.stores.array import ArrayEngine, ChunkedArray
from repro.stores.text import TextEngine, tokenize
from repro.stores.text.inverted_index import InvertedIndex
from repro.stores.text.tokenizer import ngrams, term_frequencies


class TestChunkedArray:
    def test_roundtrip(self):
        data = np.arange(30.0).reshape(5, 6)
        chunked = ChunkedArray.from_numpy(data, chunk_shape=(2, 3))
        assert np.array_equal(chunked.to_numpy(), data)
        assert chunked.num_chunks == 6

    def test_slice_reads_only_overlapping_chunks(self):
        data = np.arange(100.0).reshape(10, 10)
        chunked = ChunkedArray.from_numpy(data, chunk_shape=(5, 5))
        before = chunked.chunk_reads
        window = chunked.slice(0, 3, 0, 3)
        assert np.array_equal(window, data[:3, :3])
        assert chunked.chunk_reads - before == 1

    def test_empty_slice(self):
        chunked = ChunkedArray.from_numpy(np.ones((4, 4)))
        assert chunked.slice(3, 3, 0, 2).size == 0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 20), st.integers(1, 20), st.integers(1, 7), st.integers(1, 7))
    def test_property_roundtrip_any_shape(self, rows, cols, chunk_rows, chunk_cols):
        data = np.random.default_rng(0).normal(size=(rows, cols))
        chunked = ChunkedArray.from_numpy(data, chunk_shape=(chunk_rows, chunk_cols))
        assert np.allclose(chunked.to_numpy(), data)


class TestArrayEngine:
    def test_store_and_matmul(self):
        engine = ArrayEngine()
        engine.store("a", np.eye(4) * 2.0)
        engine.store("b", np.ones((4, 3)))
        result = engine.matmul("a", "b", store_as="c")
        assert result.shape == (4, 3)
        assert engine.exists("c")
        assert np.allclose(engine.load("c"), 2.0)

    def test_matmul_shape_mismatch(self):
        engine = ArrayEngine()
        engine.store("a", np.ones((2, 3)))
        with pytest.raises(StorageError):
            engine.matmul("a", np.ones((2, 2)))

    def test_duplicate_store_requires_replace(self):
        engine = ArrayEngine()
        engine.store("a", np.ones((2, 2)))
        with pytest.raises(StorageError):
            engine.store("a", np.zeros((2, 2)))
        engine.store("a", np.zeros((2, 2)), replace=True)
        assert engine.load("a").sum() == 0.0

    def test_reduce_and_elementwise(self):
        engine = ArrayEngine()
        engine.store("a", np.arange(6.0).reshape(2, 3))
        assert engine.reduce("a", reduction="sum") == 15.0
        doubled = engine.elementwise("a", lambda x: x * 2)
        assert doubled.max() == 10.0

    def test_slice(self):
        engine = ArrayEngine(chunk_shape=(2, 2))
        engine.store("a", np.arange(16.0).reshape(4, 4))
        assert np.array_equal(engine.slice("a", 1, 3, 1, 3),
                              np.array([[5.0, 6.0], [9.0, 10.0]]))

    def test_missing_array(self):
        with pytest.raises(StorageError):
            ArrayEngine().load("ghost")


class TestTokenizer:
    def test_tokenize_removes_stopwords_and_punctuation(self):
        tokens = tokenize("The patient IS stable, and resting.")
        assert tokens == ["patient", "stable", "resting"]

    def test_term_frequencies(self):
        counts = term_frequencies("sepsis sepsis ventilator")
        assert counts["sepsis"] == 2

    def test_ngrams(self):
        assert ngrams(["a", "b", "c"], 2) == ["a_b", "b_c"]


class TestInvertedIndex:
    def test_boolean_and_or(self):
        index = InvertedIndex()
        index.add("d1", "sepsis ventilator")
        index.add("d2", "stable recovery")
        index.add("d3", "sepsis stable")
        assert index.boolean_search(["sepsis", "stable"], mode="and") == {"d3"}
        assert index.boolean_search(["ventilator", "recovery"], mode="or") == {"d1", "d2"}

    def test_reindex_replaces_postings(self):
        index = InvertedIndex()
        index.add("d1", "old words here")
        index.add("d1", "completely new")
        assert index.documents_with("old") == set()
        assert index.documents_with("new") == {"d1"}

    def test_tfidf_ranks_matching_doc_first(self):
        index = InvertedIndex()
        index.add("d1", "sepsis sepsis sepsis")
        index.add("d2", "sepsis once in a long stable note about recovery")
        ranked = index.tfidf_search("sepsis")
        assert ranked[0][0] == "d1"


class TestTextEngine:
    def test_add_search_and_features(self):
        engine = TextEngine()
        engine.add_documents([
            {"doc_id": "note/1", "text": "patient stable after treatment",
             "metadata": {"pid": 1}},
            {"doc_id": "note/2", "text": "sepsis workup, ventilator support started",
             "metadata": {"pid": 2}},
        ])
        assert engine.search("ventilator")[0][0] == "note/2"
        features = engine.keyword_features("note/2", ["sepsis", "stable"])
        assert features == {"sepsis": 1.0, "stable": 0.0}
        assert engine.documents_matching({"pid": 1}) == ["note/1"]
        assert engine.vocabulary_size() > 0

    def test_remove_document(self):
        engine = TextEngine()
        engine.add_document("d", "hello world")
        engine.remove_document("d")
        assert not engine.has_document("d")
        with pytest.raises(StorageError):
            engine.get("d")

    def test_statistics(self):
        engine = TextEngine()
        engine.add_document("d", "alpha beta gamma")
        stats = engine.statistics()
        assert stats["documents"] == 1 and stats["tokens"] == 3
