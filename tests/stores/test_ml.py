"""Tests for the ML engine: tensor ops, models and clustering."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataModelError, StorageError
from repro.stores.ml import (
    LogisticRegression,
    MLEngine,
    MLPClassifier,
    TensorOps,
    kmeans,
)


def make_blobs(n: int = 200, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] + 0.5 * x[:, 1] - 0.2 * x[:, 2] > 0).astype(np.float64)
    return x, y


class TestTensorOps:
    def test_gemm_counts_flops(self):
        ops = TensorOps()
        ops.gemm(np.ones((4, 5)), np.ones((5, 6)))
        assert ops.counter.flops == 2 * 4 * 5 * 6
        assert ops.counter.gemm_calls == 1

    def test_gemv_and_shapes(self):
        ops = TensorOps()
        result = ops.gemv(np.ones((3, 2)), np.array([1.0, 2.0]))
        assert np.allclose(result, 3.0)
        with pytest.raises(DataModelError):
            ops.gemv(np.ones((3, 2)), np.ones(5))

    def test_gemm_shape_mismatch(self):
        with pytest.raises(DataModelError):
            TensorOps().gemm(np.ones((2, 3)), np.ones((2, 3)))

    def test_sigmoid_extremes_do_not_overflow(self):
        values = TensorOps().sigmoid(np.array([-1e6, 0.0, 1e6]))
        assert values[0] == pytest.approx(0.0, abs=1e-9)
        assert values[1] == pytest.approx(0.5)
        assert values[2] == pytest.approx(1.0, abs=1e-9)

    def test_softmax_rows_sum_to_one(self):
        result = TensorOps().softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        assert np.allclose(result.sum(axis=1), 1.0)

    def test_counter_reset(self):
        ops = TensorOps()
        ops.relu(np.ones(4))
        ops.counter.reset()
        assert ops.counter.flops == 0


class TestModels:
    def test_mlp_learns_linear_boundary(self):
        x, y = make_blobs()
        model = MLPClassifier(4, (16,), learning_rate=0.1, seed=1)
        history = model.fit(x, y, epochs=20, batch_size=32, seed=1)
        assert history.final_accuracy > 0.85
        assert history.losses[-1] < history.losses[0]

    def test_mlp_input_dim_checked(self):
        model = MLPClassifier(4)
        with pytest.raises(DataModelError):
            model.predict(np.ones((3, 5)))

    def test_mlp_parameter_count(self):
        model = MLPClassifier(4, (8, 4))
        assert model.parameter_count() == (4 * 8 + 8) + (8 * 4 + 4) + (4 * 1 + 1)

    def test_logistic_learns(self):
        x, y = make_blobs(seed=2)
        model = LogisticRegression(4, learning_rate=0.5)
        losses = model.fit(x, y, epochs=15, batch_size=32)
        predictions = model.predict(x)
        assert float(np.mean(predictions == y)) > 0.85
        assert losses[-1] < losses[0]

    def test_invalid_hyperparameters(self):
        x, y = make_blobs(50)
        with pytest.raises(DataModelError):
            MLPClassifier(4).fit(x, y, epochs=0)
        with pytest.raises(DataModelError):
            MLPClassifier(0)


class TestKMeans:
    def test_separable_clusters_recovered(self):
        rng = np.random.default_rng(0)
        a = rng.normal(loc=(-5, -5), scale=0.5, size=(50, 2))
        b = rng.normal(loc=(5, 5), scale=0.5, size=(50, 2))
        result = kmeans(np.vstack([a, b]), 2, seed=1)
        first_half = set(result.assignments[:50].tolist())
        second_half = set(result.assignments[50:].tolist())
        assert len(first_half) == 1 and len(second_half) == 1
        assert first_half != second_half

    def test_inertia_monotone_nonincreasing(self):
        x, _ = make_blobs(120, seed=3)
        result = kmeans(x, 3, seed=3)
        assert all(later <= earlier + 1e-9 for earlier, later in
                   zip(result.inertia_history, result.inertia_history[1:]))

    def test_invalid_cluster_count(self):
        with pytest.raises(DataModelError):
            kmeans(np.ones((3, 2)), 5)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 5))
    def test_property_every_point_assigned(self, k):
        x = np.random.default_rng(k).normal(size=(40, 3))
        result = kmeans(x, k, seed=k)
        assert len(result.assignments) == 40
        assert set(result.assignments.tolist()) <= set(range(k))


class TestEngine:
    def test_train_evaluate_predict(self):
        x, y = make_blobs()
        engine = MLEngine()
        engine.train_classifier("clf", x, y, epochs=12, hidden_dims=(16,))
        metrics = engine.evaluate("clf", x, y)
        assert metrics["accuracy"] > 0.8
        assert engine.predict("clf", x[:5]).shape == (5,)
        assert "clf" in engine.list_models()
        assert engine.model_info("clf")["parameters"] > 0

    def test_missing_model_raises(self):
        with pytest.raises(StorageError):
            MLEngine().predict("ghost", np.ones((1, 2)))

    def test_statistics_track_flops(self):
        x, y = make_blobs(80)
        engine = MLEngine()
        engine.train_logistic("lr", x, y, epochs=2)
        assert engine.statistics()["total_flops"] > 0
