"""Tests for volcano operators, expressions and the bitonic sorting network."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QueryError
from repro.stores.relational.expressions import (
    and_,
    column,
    compare,
    literal,
    not_,
    or_,
    split_conjunction,
)
from repro.stores.relational.operators import (
    AggregateSpec,
    Filter,
    GroupByAggregate,
    HashJoin,
    Limit,
    Project,
    Sort,
    SortMergeJoin,
    TableScan,
    TopK,
    bitonic_sort,
)

ROWS = [
    {"pid": 1, "age": 72, "ward": "icu", "cost": 100.0},
    {"pid": 2, "age": 35, "ward": "general", "cost": 20.0},
    {"pid": 3, "age": 85, "ward": "icu", "cost": 250.0},
    {"pid": 4, "age": 51, "ward": "recovery", "cost": 80.0},
]


class TestExpressions:
    def test_comparison_and_boolean(self):
        predicate = and_(compare("age", ">", 40), compare("ward", "=", "icu"))
        assert predicate.evaluate(ROWS[0])
        assert not predicate.evaluate(ROWS[1])

    def test_or_and_not(self):
        predicate = or_(compare("age", "<", 40), not_(compare("ward", "=", "icu")))
        assert predicate.evaluate(ROWS[1])
        assert not predicate.evaluate(ROWS[0])

    def test_null_comparison_is_false(self):
        assert not compare("age", ">", 10).evaluate({"age": None})

    def test_referenced_columns(self):
        predicate = and_(compare("age", ">", 40), compare("cost", "<", 200))
        assert predicate.referenced_columns() == {"age", "cost"}

    def test_split_conjunction(self):
        predicate = and_(compare("a", "=", 1), compare("b", "=", 2), compare("c", "=", 3))
        assert len(split_conjunction(predicate)) == 3

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            compare("a", "~", 1)

    def test_selectivity_bounds(self):
        predicate = or_(compare("a", "=", 1), compare("b", ">", 2))
        assert 0.0 < predicate.estimated_selectivity() <= 1.0

    def test_unknown_column_raises(self):
        with pytest.raises(QueryError):
            column("missing").evaluate({"a": 1})

    def test_literal_str(self):
        assert str(literal("x")) == "'x'"


class TestOperators:
    def test_filter(self):
        result = Filter(TableScan(ROWS), compare("ward", "=", "icu")).execute()
        assert [r["pid"] for r in result] == [1, 3]

    def test_project_unknown_column(self):
        with pytest.raises(QueryError):
            Project(TableScan(ROWS), ["nope"]).execute()

    def test_limit_and_sort(self):
        result = Limit(Sort(TableScan(ROWS), ["age"], descending=True), 2).execute()
        assert [r["age"] for r in result] == [85, 72]

    def test_top_k_equivalent_to_sort_limit(self):
        top = TopK(TableScan(ROWS), "cost", 2).execute()
        assert [r["pid"] for r in top] == [3, 1]

    def test_hash_join_inner(self):
        right = [{"pid": 1, "payer": "a"}, {"pid": 3, "payer": "b"}]
        result = HashJoin(TableScan(ROWS), TableScan(right), "pid", "pid").execute()
        assert {r["pid"] for r in result} == {1, 3}
        assert all("payer" in r for r in result)

    def test_hash_join_left_keeps_unmatched(self):
        right = [{"pid": 1, "payer": "a"}]
        result = HashJoin(TableScan(ROWS), TableScan(right), "pid", "pid",
                          how="left").execute()
        assert len(result) == 4
        assert any(r["payer"] is None for r in result)

    def test_sort_merge_join_matches_hash_join(self):
        right = [{"pid": p, "extra": p * 10} for p in (1, 2, 3, 3)]
        hash_rows = HashJoin(TableScan(ROWS), TableScan(right), "pid", "pid").execute()
        merge_rows = SortMergeJoin(TableScan(ROWS), TableScan(right), "pid", "pid").execute()
        key = lambda r: (r["pid"], r.get("extra"))
        assert sorted(hash_rows, key=key) == sorted(merge_rows, key=key)

    def test_group_by_aggregate(self):
        result = GroupByAggregate(
            TableScan(ROWS), ["ward"],
            [AggregateSpec("count", None, "n"), AggregateSpec("avg", "cost", "avg_cost")],
        ).execute()
        by_ward = {r["ward"]: r for r in result}
        assert by_ward["icu"]["n"] == 2
        assert by_ward["icu"]["avg_cost"] == pytest.approx(175.0)

    def test_global_aggregate_on_empty_input(self):
        result = GroupByAggregate(TableScan([]), [],
                                  [AggregateSpec("count", None, "n")]).execute()
        assert result == [{"n": 0}]

    def test_invalid_aggregate_function(self):
        with pytest.raises(QueryError):
            AggregateSpec("median", "cost", "m")


class TestBitonicSort:
    def test_sorts_non_power_of_two(self):
        values, stats = bitonic_sort([5, 1, 9, 3, 7, 2])
        assert values == [1, 2, 3, 5, 7, 9]
        assert stats.n_padded == 8

    def test_descending(self):
        values, _ = bitonic_sort([4, 1, 3], descending=True)
        assert values == [4, 3, 1]

    def test_key_function(self):
        values, _ = bitonic_sort(ROWS, key=lambda r: r["age"])
        assert [r["age"] for r in values] == [35, 51, 72, 85]

    def test_empty_and_singleton(self):
        assert bitonic_sort([])[0] == []
        assert bitonic_sort([42])[0] == [42]

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), max_size=120))
    def test_property_matches_builtin_sort(self, values):
        result, stats = bitonic_sort(values)
        assert result == sorted(values)
        if len(values) > 1:
            assert stats.comparisons > 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), min_size=2,
                    max_size=64))
    def test_property_stage_count_is_log_squared(self, values):
        _, stats = bitonic_sort(values)
        n = stats.n_padded
        log_n = n.bit_length() - 1
        assert stats.stages == log_n * (log_n + 1) // 2
