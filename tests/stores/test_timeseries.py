"""Tests for the timeseries/stream engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QueryError, StorageError
from repro.stores.timeseries import (
    Point,
    TimeseriesEngine,
    downsample,
    moving_average,
    supported_aggregations,
    tumbling_window,
)


@pytest.fixture
def engine() -> TimeseriesEngine:
    engine = TimeseriesEngine("monitors")
    engine.append_many("hr/1", [(float(i), 60.0 + i % 10) for i in range(100)])
    engine.append_many("hr/2", [(float(i), 90.0) for i in range(50)])
    engine.create_series("bp/1", tags={"unit": "mmHg"})
    return engine


class TestSeries:
    def test_out_of_order_append_keeps_order(self, engine: TimeseriesEngine):
        series = engine.create_series("late")
        series.extend([(10.0, 1.0), (5.0, 2.0), (7.0, 3.0)])
        assert series.timestamps() == [5.0, 7.0, 10.0]

    def test_between_bounds(self, engine: TimeseriesEngine):
        points = engine.query_range("hr/1", 10, 20)
        assert len(points) == 10
        assert points[0].timestamp == 10.0

    def test_latest(self, engine: TimeseriesEngine):
        assert engine.latest("hr/1").timestamp == 99.0

    def test_latest_empty_raises(self, engine: TimeseriesEngine):
        with pytest.raises(StorageError):
            engine.latest("bp/1")

    def test_missing_series_raises(self, engine: TimeseriesEngine):
        with pytest.raises(StorageError):
            engine.query_range("nope")


class TestWindows:
    def test_tumbling_window_mean(self, engine: TimeseriesEngine):
        windows = engine.window_aggregate("hr/2", 10.0, "mean")
        assert len(windows) == 5
        assert all(w.value == 90.0 for w in windows)
        assert all(w.count == 10 for w in windows)

    def test_window_aggregations_supported(self):
        assert {"mean", "sum", "min", "max", "count", "stddev"} <= set(supported_aggregations())

    def test_unknown_aggregation_rejected(self):
        with pytest.raises(QueryError):
            tumbling_window([Point(0.0, 1.0)], 10.0, "p99")

    def test_zero_window_rejected(self):
        with pytest.raises(QueryError):
            tumbling_window([Point(0.0, 1.0)], 0.0)

    def test_downsample(self):
        points = [Point(float(i), float(i)) for i in range(10)]
        assert len(downsample(points, 3)) == 4

    def test_moving_average_smooths(self):
        points = [Point(float(i), v) for i, v in enumerate([0, 10, 0, 10])]
        smoothed = moving_average(points, 2)
        assert smoothed[-1].value == 5.0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 1e4, allow_nan=False),
                              st.floats(-1e3, 1e3, allow_nan=False)),
                    min_size=1, max_size=100))
    def test_property_window_counts_cover_all_points(self, points):
        """Every input point lands in exactly one tumbling window."""
        results = tumbling_window([Point(t, v) for t, v in points], 7.0, "count")
        assert sum(int(r.value) for r in results) == len(points)
        starts = [r.window_start for r in results]
        assert starts == sorted(starts)


class TestEngineSurface:
    def test_streaming_batches(self, engine: TimeseriesEngine):
        batches = list(engine.stream("hr/1", batch_size=30))
        assert [len(b) for b in batches] == [30, 30, 30, 10]

    def test_summarize(self, engine: TimeseriesEngine):
        summary = engine.summarize("hr/2")
        assert summary["count"] == 50.0
        assert summary["mean"] == 90.0

    def test_summarize_empty_series(self, engine: TimeseriesEngine):
        assert engine.summarize("bp/1")["count"] == 0.0

    def test_list_series_with_tags(self, engine: TimeseriesEngine):
        assert engine.list_series({"unit": "mmHg"}) == ["bp/1"]

    def test_statistics(self, engine: TimeseriesEngine):
        stats = engine.statistics()
        assert stats["series"] == 3
        assert stats["points"] == 150
