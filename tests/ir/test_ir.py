"""Tests for the IR: operators, graph structure and validation."""

from __future__ import annotations

import pytest

from repro.exceptions import IRError
from repro.ir import IRGraph, Operator, assert_valid, validate_graph, validate_operator


def small_graph() -> IRGraph:
    graph = IRGraph("test")
    scan = graph.add(Operator("scan", {"table": "t"}, engine="db"))
    filter_node = graph.add(Operator("filter", {"predicate": None}, [scan.op_id], "db"))
    sort_node = graph.add(Operator("sort", {"by": "a"}, [filter_node.op_id], "db"))
    graph.mark_output(sort_node.op_id)
    return graph


class TestOperator:
    def test_unknown_kind_rejected(self):
        with pytest.raises(IRError):
            Operator("explode", {})

    def test_ids_assigned_per_graph(self):
        # Ids are graph-local and deterministic: no global counter, so two
        # graphs built the same way get the same ids (and concurrent
        # sessions cannot race on shared state).
        def build() -> IRGraph:
            graph = IRGraph("ids")
            scan = graph.add(Operator("scan", {"table": "t"}))
            graph.add(Operator("filter", {"predicate": None}, [scan.op_id]))
            return graph

        first, second = build(), build()
        assert [n.op_id for n in first.nodes()] == ["scan_1", "filter_2"]
        assert [n.op_id for n in first.nodes()] == [n.op_id for n in second.nodes()]
        assert len({n.op_id for n in first.nodes()}) == 2

    def test_reset_operator_ids_shim_is_gone(self):
        # The PR-3 deprecation shim has been removed: ids are per-graph and
        # there is no process-global counter left to reset.
        import repro.ir
        import repro.ir.nodes

        assert not hasattr(repro.ir, "reset_operator_ids")
        assert not hasattr(repro.ir.nodes, "reset_operator_ids")

    def test_copied_graphs_never_collide_on_new_ids(self):
        graph = IRGraph("orig")
        scan = graph.add(Operator("scan", {"table": "t"}))
        graph.mark_output(scan.op_id)
        duplicate = graph.copy()
        added = duplicate.add(Operator("scan", {"table": "u"}))
        assert added.op_id not in {scan.op_id}
        assert len(duplicate) == 2

    def test_annotations_properties(self):
        node = Operator("scan", {"table": "t"})
        node.estimated_rows = 100
        node.estimated_bytes = 6400
        assert node.estimated_rows == 100
        assert node.estimated_bytes == 6400

    def test_accelerable_kinds(self):
        assert Operator("sort", {"by": "a"}, []).is_accelerable
        assert not Operator("scan", {"table": "t"}).is_accelerable

    def test_copy_is_independent(self):
        node = Operator("scan", {"table": "t"})
        duplicate = node.copy()
        duplicate.params["table"] = "other"
        assert node.params["table"] == "t"


class TestGraph:
    def test_add_requires_existing_inputs(self):
        graph = IRGraph()
        with pytest.raises(IRError):
            graph.add(Operator("filter", {"predicate": None}, ["ghost"]))

    def test_topological_order_and_stages(self):
        graph = small_graph()
        order = [n.kind for n in graph.topological_order()]
        assert order == ["scan", "filter", "sort"]
        assert [len(stage) for stage in graph.stages()] == [1, 1, 1]

    def test_cycle_detection(self):
        graph = IRGraph()
        a = graph.add(Operator("scan", {"table": "t"}))
        b = graph.add(Operator("filter", {"predicate": None}, [a.op_id]))
        a.inputs = [b.op_id]
        with pytest.raises(IRError):
            graph.topological_order()

    def test_consumers_and_producers(self):
        graph = small_graph()
        scan = graph.nodes_of_kind("scan")[0]
        filter_node = graph.nodes_of_kind("filter")[0]
        assert graph.consumers(scan.op_id)[0].op_id == filter_node.op_id
        assert graph.producers(filter_node.op_id)[0].op_id == scan.op_id

    def test_insert_between(self):
        graph = small_graph()
        scan = graph.nodes_of_kind("scan")[0]
        filter_node = graph.nodes_of_kind("filter")[0]
        migrate = graph.insert_between(scan.op_id, filter_node.op_id,
                                       Operator("migrate", {"source_engine": "a",
                                                            "target_engine": "b"}))
        assert filter_node.inputs == [migrate.op_id]
        assert migrate.inputs == [scan.op_id]
        assert_valid(graph)

    def test_remove_rewires_single_input_node(self):
        graph = small_graph()
        filter_node = graph.nodes_of_kind("filter")[0]
        scan = graph.nodes_of_kind("scan")[0]
        sort_node = graph.nodes_of_kind("sort")[0]
        graph.remove(filter_node.op_id)
        assert sort_node.inputs == [scan.op_id]

    def test_replace_output(self):
        graph = small_graph()
        scan = graph.nodes_of_kind("scan")[0]
        old_output = graph.outputs[0]
        graph.replace_output(old_output, scan.op_id)
        assert graph.outputs == [scan.op_id]

    def test_prune_keeps_outputs(self):
        graph = small_graph()
        dangling = graph.add(Operator("scan", {"table": "unused"}, engine="db"))
        removed = graph.prune(lambda node: node.kind != "scan" or node.params["table"] != "unused")
        assert removed == 1
        assert dangling.op_id not in graph

    def test_copy_is_deep_enough(self):
        graph = small_graph()
        duplicate = graph.copy()
        duplicate.nodes_of_kind("scan")[0].params["table"] = "changed"
        assert graph.nodes_of_kind("scan")[0].params["table"] == "t"
        assert duplicate.outputs == graph.outputs

    def test_render_mentions_stages(self):
        assert "stage 0" in small_graph().render()


class TestValidation:
    def test_valid_graph_has_no_problems(self):
        assert validate_graph(small_graph()) == []

    def test_missing_required_param_detected(self):
        problems = validate_operator(Operator("scan", {}))
        assert any("table" in p for p in problems)

    def test_wrong_arity_detected(self):
        node = Operator("join", {"left_key": "a", "right_key": "b"}, [])
        problems = validate_operator(node)
        assert any("expects 2 inputs" in p for p in problems)

    def test_graph_without_outputs_flagged(self):
        graph = IRGraph()
        graph.add(Operator("scan", {"table": "t"}))
        assert any("no output" in p for p in validate_graph(graph))

    def test_assert_valid_raises(self):
        graph = IRGraph()
        graph.add(Operator("scan", {}))
        with pytest.raises(IRError):
            assert_valid(graph)
