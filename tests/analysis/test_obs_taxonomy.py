"""obs-taxonomy: metric families and span names against the registry."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_sources
from repro.analysis.core import SourceFile
from repro.analysis.rules.obs_taxonomy import (
    SPAN_TAXONOMY,
    ObsTaxonomyRule,
    parse_registry,
)

HUB = '''\
class Observability:
    def __init__(self, reg):
        self.requests_total = reg.counter(
            "polystore_requests_total", "requests", ("outcome",))
        self.exec_seconds = reg.histogram(
            "polystore_exec_seconds", "latency", ())
        self.queue_depth = reg.gauge("polystore_queue_depth", "depth", ())
'''


def _run(code, path="src/repro/middleware/example.py"):
    hub = SourceFile("src/repro/obs/__init__.py", HUB)
    source = SourceFile(path, textwrap.dedent(code))
    return [f for f in analyze_sources([hub, source],
                                       rules=[ObsTaxonomyRule()])
            if f.path == path]


class TestRegistryParsing:
    def test_parse_registry_extracts_families(self):
        hub = SourceFile("src/repro/obs/__init__.py", HUB)
        assert parse_registry(hub.tree) == {
            "requests_total": "counter",
            "exec_seconds": "histogram",
            "queue_depth": "gauge",
        }


class TestFamilyUse:
    def test_unregistered_family_flagged(self):
        findings = _run("""\
            def record(self):
                self._obs.request_total.inc(outcome="ok")
            """)
        assert len(findings) == 1
        assert findings[0].line == 2
        assert "request_total" in findings[0].message

    def test_registered_family_is_clean(self):
        assert _run("""\
            def record(self, obs):
                obs.requests_total.inc(outcome="ok")
                self._obs.exec_seconds.observe(0.2)
                obs.queue_depth.set(3)
            """) == []

    def test_non_family_hub_attrs_ignored(self):
        assert _run("""\
            def record(self, obs):
                obs.tracer.annotations.set("k", 1)
            """) == []


class TestSpans:
    def test_unknown_prefix_flagged(self):
        findings = _run("""\
            def trace(self):
                with self.tracer.span("bogus:phase", "session"):
                    pass
            """)
        assert len(findings) == 1
        assert "'bogus'" in findings[0].message

    def test_category_mismatch_flagged(self):
        findings = _run("""\
            def trace(self):
                with self.tracer.span("op:scan-1", "session"):
                    pass
            """)
        assert len(findings) == 1
        assert "'operator'" in findings[0].message

    def test_taxonomy_prefixes_accepted_with_their_category(self):
        calls = "\n".join(
            f'        with self.tracer.span("{prefix}:x", "{category}"):\n'
            f"            pass"
            for prefix, category in SPAN_TAXONOMY.items())
        assert _run("def trace(self):\n" + calls,
                    path="src/repro/middleware/spans.py") == []

    def test_fstring_prefix_checked_dynamic_tail_ignored(self):
        findings = _run("""\
            def trace(self, op_id):
                with self.tracer.span(f"op:{op_id}", "operator"):
                    pass
                with self.tracer.span(f"weird:{op_id}", "operator"):
                    pass
            """)
        assert len(findings) == 1
        assert "'weird'" in findings[0].message


class TestRegistration:
    def test_registration_outside_hub_flagged(self):
        findings = _run("""\
            def setup(reg):
                return reg.counter("polystore_adhoc_total", "d", ())
            """)
        assert len(findings) == 1
        assert "outside the Observability hub" in findings[0].message

    def test_naming_conventions(self):
        findings = _run("""\
            def setup(reg):
                reg.counter("polystore_bad_counter", "d", ())
                reg.histogram("polystore_bad_hist", "d", ())
                reg.gauge("unprefixed_depth", "d", ())
            """)
        messages = " | ".join(f.message for f in findings)
        assert "_total" in messages
        assert "_seconds" in messages
        assert "polystore_<subsystem>_<what>" in messages
