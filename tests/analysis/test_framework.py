"""Framework behavior: pragmas, suppression scope, parse errors, CLI."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_sources
from repro.analysis.cli import main
from repro.analysis.core import Finding, registered_rules
from repro.analysis.rules.lock_discipline import LockDisciplineRule

ABBA = """\
class Store:
    def one(self):
        with self._a_lock:
            with self._b_lock:
                pass

    def two(self):
        with self._b_lock:
            with self._a_lock:
                pass
"""


def _abba_findings(make_source, code):
    return analyze_sources([make_source(code)],
                           rules=[LockDisciplineRule()])


class TestSuppressions:
    def test_trailing_pragma_suppresses_its_line(self, make_source):
        code = ABBA.replace(
            "            with self._a_lock:\n                pass",
            "            with self._a_lock:  "
            "# repro: allow(lock-discipline): test fixture\n"
            "                pass")
        assert _abba_findings(make_source, code) == []

    def test_standalone_pragma_covers_next_line(self, make_source):
        code = ABBA.replace(
            "        with self._b_lock:\n            with self._a_lock:",
            "        with self._b_lock:\n"
            "            # repro: allow(lock-discipline): test fixture\n"
            "            with self._a_lock:")
        assert _abba_findings(make_source, code) == []

    def test_pragma_for_other_rule_does_not_suppress(self, make_source):
        code = ABBA.replace(
            "            with self._a_lock:\n                pass",
            "            with self._a_lock:  "
            "# repro: allow(async-hygiene): wrong rule\n"
            "                pass")
        findings = _abba_findings(make_source, code)
        assert [f.rule for f in findings] == ["lock-discipline"]

    def test_comma_separated_rule_list(self, make_source):
        code = ABBA.replace(
            "            with self._a_lock:\n                pass",
            "            with self._a_lock:  "
            "# repro: allow(async-hygiene, lock-discipline): fixture\n"
            "                pass")
        assert _abba_findings(make_source, code) == []

    def test_pragma_without_reason_is_reported_and_inert(self, make_source):
        code = ABBA.replace(
            "            with self._a_lock:\n                pass",
            "            with self._a_lock:  "
            "# repro: allow(lock-discipline)\n"
            "                pass")
        findings = _abba_findings(make_source, code)
        assert {f.rule for f in findings} == {"pragma", "lock-discipline"}

    def test_malformed_pragma_is_reported(self, make_source):
        source = make_source("x = 1  # repro: allow lock-discipline\n")
        findings = analyze_sources([source], rules=[])
        assert [f.rule for f in findings] == ["pragma"]
        assert findings[0].line == 1

    def test_docstring_mentioning_pragma_syntax_is_not_a_pragma(
            self, make_source):
        # Regression: the scanner tokenizes rather than regex-matching
        # lines, so prose like this module's own docstring never trips it.
        source = make_source('''\
            """Suppress with ``# repro: allow(<rule>): <reason>``.

            A malformed ``# repro: allow`` pragma is itself a finding.
            """
            x = 1
            ''')
        assert analyze_sources([source], rules=[]) == []
        assert source.suppressions == []


class TestParseErrors:
    def test_unparseable_file_yields_parse_finding(self, make_source):
        source = make_source("def broken(:\n")
        findings = analyze_sources([source])
        assert [f.rule for f in findings] == ["parse"]

    def test_finding_render_format(self):
        finding = Finding(path="src/a.py", line=7, rule="demo", message="m")
        assert finding.render() == "src/a.py:7: [demo] m"


class TestCli:
    def test_all_five_rules_registered(self):
        assert [rule.id for rule in registered_rules()] == [
            "async-hygiene", "cancellation-safety", "changelog-contract",
            "lock-discipline", "obs-taxonomy"]

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "lock-discipline" in out and "obs-taxonomy" in out

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["--rule", "no-such-rule"]) == 2

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["definitely/not/a/path"]) == 2

    def test_strict_exit_codes_on_fixture(self, tmp_path, capsys):
        bad = tmp_path / "fixture.py"
        bad.write_text(textwrap.dedent(ABBA), encoding="utf-8")
        assert main([str(bad)]) == 0  # advisory mode reports, exits 0
        assert main(["--strict", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "[lock-discipline]" in out
        assert main(["--strict", "--rule", "obs-taxonomy", str(bad)]) == 0
