"""async-hygiene: no blocking calls on the serving tier's event loop."""

from __future__ import annotations

import pytest

from repro.analysis.rules.async_hygiene import AsyncHygieneRule

SERVE_PATH = "src/repro/serve/example.py"


@pytest.fixture
def run(run_rule):
    def _run(code, path=SERVE_PATH):
        return run_rule(AsyncHygieneRule(), code, path=path)
    return _run


class TestBlockingCalls:
    def test_time_sleep_in_coroutine(self, run):
        findings = run("""\
            import time

            async def poll(self):
                time.sleep(0.1)
            """)
        assert len(findings) == 1
        assert findings[0].line == 4
        assert "asyncio.sleep" in findings[0].message

    def test_await_asyncio_sleep_is_clean(self, run):
        assert run("""\
            import asyncio

            async def poll(self):
                await asyncio.sleep(0.1)
            """) == []

    def test_sync_file_io(self, run):
        findings = run("""\
            async def load(path):
                with open(path) as fh:
                    return fh.read()
            """)
        assert len(findings) == 1
        assert "file I/O" in findings[0].message

    def test_blocking_socket_constructor_and_method(self, run):
        findings = run("""\
            import socket

            async def fetch(addr):
                sock = socket.socket()
                sock.connect(addr)
            """)
        assert len(findings) == 2

    def test_thread_lock_held_on_loop(self, run):
        findings = run("""\
            async def mutate(self):
                with self._lock:
                    self._state += 1
            """)
        assert len(findings) == 1
        assert "self._lock" in findings[0].message

    def test_unbounded_acquire_flagged_bounded_ok(self, run):
        findings = run("""\
            async def grab(self):
                self._lock.acquire()
                self._lock.acquire(timeout=0.5)
                self._lock.acquire(False)
                self._lock.acquire(blocking=False)
            """)
        assert len(findings) == 1
        assert findings[0].line == 2


class TestScope:
    def test_sync_def_in_serve_is_out_of_scope(self, run):
        assert run("""\
            import time

            def worker():
                time.sleep(0.1)
            """) == []

    def test_nested_sync_def_runs_off_loop(self, run):
        # Delivery closures execute on worker threads, not the loop.
        assert run("""\
            import time

            async def handle(self):
                def deliver(response):
                    time.sleep(0.01)
                    with self._lock:
                        pass
                self._pool.submit(deliver)
            """) == []

    def test_non_serve_path_is_out_of_scope(self, run):
        assert run("""\
            import time

            async def poll(self):
                time.sleep(0.1)
            """, path="src/repro/middleware/runner.py") == []
