"""Shared helpers for the analyzer's own tests."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import analyze_sources
from repro.analysis.core import SourceFile


@pytest.fixture
def run_rule():
    """Run one rule over inline source, returning its findings.

    ``path`` matters: several rules are path-scoped (serve/, engine.py).
    """

    def run(rule, code, path="src/repro/example.py", context=None):
        source = SourceFile(path, textwrap.dedent(code))
        rules = [rule] if rule is not None else None
        return analyze_sources([source], rules=rules, context=context)

    return run


@pytest.fixture
def make_source():
    def make(code, path="src/repro/example.py"):
        return SourceFile(path, textwrap.dedent(code))

    return make
