"""The shipped tree must be clean under --strict (the CI gate)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.core import registered_rules

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_tree_is_clean_under_all_rules():
    findings = analyze_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_run_covers_every_registered_rule():
    # The gate is only meaningful if all five rules are registered when
    # the runner imports the rules package.
    assert len(registered_rules()) == 5
