"""lock-discipline: ABBA ordering and notify-under-lock detection."""

from __future__ import annotations

import pytest

from repro.analysis.rules.lock_discipline import LockDisciplineRule


@pytest.fixture
def run(run_rule):
    def _run(code, path="src/repro/example.py"):
        return run_rule(LockDisciplineRule(), code, path=path)
    return _run


class TestAbbaOrder:
    def test_inconsistent_pair_flagged_at_later_site(self, run):
        findings = run("""\
            class Store:
                def one(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def two(self):
                    with self._b_lock:
                        with self._a_lock:
                            pass
            """)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.line == 9  # the later of the two nesting sites
        assert "ABBA" in finding.message
        assert "self._a_lock" in finding.message

    def test_consistent_nesting_is_clean(self, run):
        assert run("""\
            class Store:
                def one(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def two(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass
            """) == []

    def test_conflict_through_same_class_call(self, run):
        findings = run("""\
            class Store:
                def outer(self):
                    with self._a_lock:
                        self.inner()

                def inner(self):
                    with self._b_lock:
                        pass

                def reversed(self):
                    with self._b_lock:
                        with self._a_lock:
                            pass
            """)
        assert len(findings) == 1
        assert "inconsistent lock order" in findings[0].message

    def test_classes_are_independent_scopes(self, run):
        assert run("""\
            class One:
                def m(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

            class Two:
                def m(self):
                    with self._b_lock:
                        with self._a_lock:
                            pass
            """) == []


class TestNotifyUnderLock:
    def test_notify_call_under_lock(self, run):
        findings = run("""\
            class Engine:
                def put(self, key, value):
                    with self._lock:
                        self._data[key] = value
                        self._notify_listeners(key)
            """)
        assert len(findings) == 1
        assert findings[0].line == 5
        assert "notify" in findings[0].message

    def test_notify_after_release_is_clean(self, run):
        assert run("""\
            class Engine:
                def put(self, key, value):
                    with self._lock:
                        self._data[key] = value
                    self._notify_listeners(key)
            """) == []

    def test_bare_callback_invocation_under_lock(self, run):
        findings = run("""\
            class Hub:
                def fire(self):
                    with self._lock:
                        for listener in self._listeners:
                            listener(self)
            """)
        assert len(findings) == 1
        assert "'listener'" in findings[0].message

    def test_transitive_notify_through_helper(self, run):
        findings = run("""\
            class Engine:
                def put(self, key):
                    with self._lock:
                        self.emit(key)

                def emit(self, key):
                    self.changelog.notify_batch(key)
            """)
        assert len(findings) == 1
        assert "transitively" in findings[0].message

    def test_nested_def_runs_outside_the_lock(self, run):
        # The closure executes later, not while the lock is held; but a
        # lock taken *inside* the closure still gets its own context.
        assert run("""\
            class Server:
                def handle(self):
                    with self._lock:
                        def deliver(response):
                            self._notify_listeners(response)
                        self._queue.append(deliver)
            """) == []
