"""changelog-contract: engine mutators must emit deltas."""

from __future__ import annotations

import pytest

from repro.analysis.rules.changelog_contract import ChangelogContractRule

ENGINE_PATH = "src/repro/stores/demo/engine.py"


@pytest.fixture
def run(run_rule):
    def _run(code, path=ENGINE_PATH):
        return run_rule(ChangelogContractRule(), code, path=path)
    return _run


class TestMutatorDetection:
    def test_unmarked_public_mutator_flagged_at_def(self, run):
        findings = run("""\
            class DemoEngine(Engine):
                def put(self, key, value):
                    self._data[key] = value
            """)
        assert len(findings) == 1
        assert findings[0].line == 2  # anchored at the def, not the store
        assert "DemoEngine.put" in findings[0].message

    def test_marked_mutator_is_clean(self, run):
        assert run("""\
            class DemoEngine(Engine):
                def put(self, key, value):
                    self._data[key] = value
                    self.mark_data_changed(self._scope(), entries=[])
            """) == []

    def test_mark_through_same_class_helper(self, run):
        # The ShardedEngine _routed_write pattern: the public mutator only
        # reaches mark_data_changed through a private relay.
        assert run("""\
            class DemoEngine(Engine):
                def put(self, key, value):
                    with self._routed_write("put") as relay:
                        relay.put(key, value)
                        self._relay(key)

                def _relay(self, key):
                    self.mark_data_changed(self._scope(), entries=[key])
            """) == []

    def test_mutation_through_tainted_local(self, run):
        findings = run("""\
            class DemoEngine(Engine):
                def route(self, key, value):
                    owner = self._shards[0]
                    owner.put(key, value)
            """)
        assert len(findings) == 1
        assert "DemoEngine.route" in findings[0].message

    def test_mutating_call_on_self_state(self, run):
        findings = run("""\
            class DemoEngine(Engine):
                def push(self, row):
                    self._rows.append(row)
            """)
        assert len(findings) == 1

    def test_emit_durability_meta_satisfies(self, run):
        assert run("""\
            class DemoEngine(Engine):
                def create_index(self, name):
                    self._indexes[name] = {}
                    self.emit_durability_meta(("create_index", name))
            """) == []


class TestScope:
    def test_non_engine_file_is_out_of_scope(self, run):
        assert run("""\
            class DemoEngine(Engine):
                def put(self, key, value):
                    self._data[key] = value
            """, path="src/repro/middleware/session.py") == []

    def test_non_engine_class_is_out_of_scope(self, run):
        assert run("""\
            class Helper:
                def put(self, key, value):
                    self._data[key] = value
            """) == []

    def test_private_methods_and_properties_exempt(self, run):
        assert run("""\
            class DemoEngine(Engine):
                def _internal(self, key, value):
                    self._data[key] = value

                @property
                def size(self):
                    self._cache = None
                    return len(self._data)
            """) == []

    def test_lifecycle_hooks_exempt_by_name(self, run):
        assert run("""\
            class DemoEngine(Engine):
                def attach_spill(self, spill):
                    self._spill = spill
            """) == []

    def test_readonly_method_is_clean(self, run):
        assert run("""\
            class DemoEngine(Engine):
                def get(self, key):
                    return self._data.get(key)
            """) == []

    def test_bookkeeping_writes_do_not_count(self, run):
        assert run("""\
            class DemoEngine(Engine):
                def scan(self, query):
                    self.metrics.counters["scan"] += 1
                    return list(self._data)
            """) == []
