"""cancellation-safety: broad handlers must not swallow cancellation."""

from __future__ import annotations

import pytest

from repro.analysis.rules.cancellation_safety import CancellationSafetyRule

DISPATCH_PATH = "src/repro/serve/example.py"


@pytest.fixture
def run(run_rule):
    def _run(code, path=DISPATCH_PATH):
        return run_rule(CancellationSafetyRule(), code, path=path)
    return _run


class TestBroadHandlers:
    def test_swallowing_except_exception_flagged(self, run):
        findings = run("""\
            def dispatch(self, message):
                try:
                    self._route(message)
                except Exception:
                    return None
            """)
        assert len(findings) == 1
        assert findings[0].line == 4
        assert "swallows cancellation" in findings[0].message

    def test_earlier_cancel_handler_excuses(self, run):
        assert run("""\
            def dispatch(self, message):
                try:
                    self._route(message)
                except CancelledError:
                    self._release_slot()
                except Exception as exc:
                    return exc
            """) == []

    def test_deadline_handler_also_excuses(self, run):
        assert run("""\
            def dispatch(self, message):
                try:
                    self._route(message)
                except (DeadlineExceededError, TimeoutError):
                    self._release_slot()
                except Exception as exc:
                    return exc
            """) == []

    def test_reraise_inside_handler_excuses(self, run):
        assert run("""\
            def dispatch(self, message):
                try:
                    self._route(message)
                except Exception as exc:
                    raise ExecutionError(str(exc)) from exc
            """) == []

    def test_base_exception_needs_reraise_even_after_cancel_handler(self, run):
        # asyncio.CancelledError derives from BaseException and sails past
        # an Exception-level CancelledError handler.
        findings = run("""\
            def dispatch(self, message):
                try:
                    self._route(message)
                except CancelledError:
                    self._release_slot()
                except BaseException:
                    return None
            """)
        assert len(findings) == 1
        assert "BaseException" in findings[0].message

    def test_bare_except_flagged(self, run):
        findings = run("""\
            def dispatch(self, message):
                try:
                    self._route(message)
                except:
                    pass
            """)
        assert len(findings) == 1
        assert "bare except" in findings[0].message


class TestScope:
    def test_narrow_handler_is_fine(self, run):
        assert run("""\
            def dispatch(self, message):
                try:
                    self._route(message)
                except KeyError:
                    return None
            """) == []

    def test_async_def_outside_dispatch_paths_in_scope(self, run):
        findings = run("""\
            async def refresh(self):
                try:
                    await self._pull()
                except Exception:
                    pass
            """, path="src/repro/views/example.py")
        assert len(findings) == 1

    def test_sync_code_outside_dispatch_paths_out_of_scope(self, run):
        assert run("""\
            def refresh(self):
                try:
                    self._pull()
                except Exception:
                    pass
            """, path="src/repro/views/example.py") == []
