"""Wire protocol: framing round-trips, bounds, responses, serialization."""

from __future__ import annotations

import io
import socket
import struct
import threading

import pytest

from repro.datamodel import DataType, Table, make_schema
from repro.serve import protocol
from repro.serve.protocol import (
    ProtocolError,
    decode_body,
    encode_frame,
    error_response,
    frame_length,
    ok_response,
    read_frame_sync,
    serialize_outputs,
    serialize_value,
)


class TestFraming:
    def test_round_trip(self):
        frame = encode_frame({"op": "ping", "id": 7})
        length = frame_length(frame[:4])
        assert length == len(frame) - 4
        assert decode_body(frame[4:]) == {"op": "ping", "id": 7}

    def test_body_must_be_json_object(self):
        with pytest.raises(ProtocolError):
            decode_body(b"[1, 2, 3]")
        with pytest.raises(ProtocolError):
            decode_body(b"not json at all")

    def test_declared_length_is_bounded(self):
        huge = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError):
            frame_length(huge)

    def test_sync_read_over_a_socketpair(self):
        left, right = socket.socketpair()
        try:
            message = {"op": "execute", "id": "a", "params": {"x": 1}}
            left.sendall(encode_frame(message))
            assert read_frame_sync(right) == message
            left.close()
            assert read_frame_sync(right) is None  # clean EOF
        finally:
            right.close()

    def test_mid_frame_eof_is_an_error(self):
        left, right = socket.socketpair()
        try:
            frame = encode_frame({"op": "ping", "id": 1})
            left.sendall(frame[: len(frame) - 2])
            left.close()
            with pytest.raises(ProtocolError):
                read_frame_sync(right)
        finally:
            right.close()


class TestResponses:
    def test_ok_response_echoes_id(self):
        response = ok_response("r1", pong=True)
        assert response == {"id": "r1", "ok": True, "pong": True}

    def test_overload_and_quota_are_retryable(self):
        for code in (protocol.OVERLOADED, protocol.QUOTA_EXCEEDED,
                     protocol.SHUTTING_DOWN):
            response = error_response("r", code, "nope", retry_after_s=0.25)
            assert response["error"]["retryable"] is True
            assert response["error"]["retry_after_s"] == 0.25

    def test_terminal_errors_are_not_retryable(self):
        for code in (protocol.BAD_REQUEST, protocol.UNKNOWN_PROGRAM,
                     protocol.CANCELLED, protocol.DEADLINE_EXCEEDED,
                     protocol.INTERNAL):
            assert error_response("r", code, "x")["error"]["retryable"] is False


class TestSerialization:
    def test_table_serializes_row_major(self):
        schema = make_schema(("pid", DataType.INT), ("name", DataType.STRING))
        table = Table(schema, [(1, "ada"), (2, "alan")])
        value = serialize_value(table)
        assert value["kind"] == "table"
        assert value["columns"] == ["pid", "name"]
        assert value["rows"] == [[1, "ada"], [2, "alan"]]

    def test_non_table_values_pass_through(self):
        outputs = serialize_outputs({"n": 3, "s": "x", "d": {"k": 1}})
        assert outputs == {"n": 3, "s": "x", "d": {"k": 1}}

    def test_encoded_frame_survives_table_payload(self):
        schema = make_schema(("a", DataType.INT),)
        payload = ok_response(1, outputs=serialize_outputs(
            {"t": Table(schema, [(i,) for i in range(10)])}))
        decoded = decode_body(encode_frame(payload)[4:])
        assert decoded["outputs"]["t"]["rows"][9] == [9]


def test_concurrent_sync_reads_preserve_frame_boundaries():
    """Many frames written back-to-back decode one by one, no tearing."""
    left, right = socket.socketpair()
    frames = [{"id": i, "op": "ping"} for i in range(50)]
    received = []

    def reader():
        while True:
            message = read_frame_sync(right)
            if message is None:
                break
            received.append(message)

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        buffer = io.BytesIO()
        for frame in frames:
            buffer.write(encode_frame(frame))
        left.sendall(buffer.getvalue())
        left.close()
        thread.join(timeout=10)
        assert received == frames
    finally:
        right.close()
