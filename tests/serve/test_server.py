"""Serving tier end-to-end: execution parity, coalescing, quotas, cancel."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro import DataflowProgram, SystemConfig, col
from repro.core import build_cpu_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.eide import Param
from repro.exceptions import CancelledError, DeadlineExceededError
from repro.obs import ancestors, parse_prometheus_text
from repro.serve import protocol
from repro.serve.client import ServeError, TcpClient
from repro.stores import RelationalEngine

ROWS = [(1, 72, 0.9), (2, 35, 0.4), (3, 85, 0.7), (4, 51, 0.2), (5, 64, 0.6)]


def _system(**config_overrides):
    engine = RelationalEngine("servedb")
    schema = make_schema(("pid", DataType.INT), ("age", DataType.INT),
                         ("score", DataType.FLOAT))
    engine.load_table("patients", Table(schema, ROWS))
    config = SystemConfig(obs_enabled=True, obs_trace_sample_rate=1.0,
                          **config_overrides)
    return build_cpu_polystore([engine], config=config)


def _scan_program(system, name="patients_over"):
    expr = (system.dataset("servedb").table("patients")
            .filter(col("age") > Param("min_age", default=0)))
    program = DataflowProgram(name)
    program.output("result", expr)
    return program


def _gated_program(system, udf, name="gated"):
    """A program whose UDF the test controls; the trailing filter gives the
    executor a post-UDF cancellation checkpoint."""
    expr = (system.dataset("servedb").table("patients")
            .apply(udf).filter(col("age") >= 0))
    program = DataflowProgram(name)
    program.output("result", expr)
    return program


def _rows(response, output="result"):
    return sorted(response["outputs"][output]["rows"])


class TestExecuteBasics:
    def test_execute_matches_direct_session(self):
        system = _system()
        with system.serve(pool_size=2) as server:
            server.register("patients_over", _scan_program(system))
            client = server.connect()
            served = client.execute("patients_over", {"min_age": 50},
                                    timeout=30)
        direct = system.session(name="direct").prepare(
            _scan_program(system, name="direct")).run(min_age=50)
        expected = sorted([pid, age, score] for pid, age, score in ROWS
                          if age > 50)
        assert _rows(served) == expected
        assert sorted(
            list(r.values()) for r in direct.output("result").to_dicts()
        ) == expected
        assert served["coalesced"] is False
        assert served["mode"] == "polystore++"

    def test_default_params_apply(self):
        system = _system()
        with system.serve() as server:
            server.register("patients_over", _scan_program(system))
            response = server.connect().execute("patients_over", timeout=30)
        assert len(response["outputs"]["result"]["rows"]) == len(ROWS)

    def test_unknown_program_is_terminal(self):
        system = _system()
        with system.serve() as server:
            with pytest.raises(ServeError) as excinfo:
                server.connect().execute("nope", timeout=30)
        assert excinfo.value.code == protocol.UNKNOWN_PROGRAM
        assert excinfo.value.retryable is False

    def test_malformed_messages_get_bad_request(self):
        system = _system()
        with system.serve() as server:
            server.register("patients_over", _scan_program(system))
            client = server.connect()
            bad_op = client.request({"op": "frobnicate", "id": 1}, timeout=30)
            assert bad_op["error"]["code"] == protocol.BAD_REQUEST
            bad_params = client.request(
                {"op": "execute", "id": 2, "program": "patients_over",
                 "params": [1, 2]}, timeout=30)
            assert bad_params["error"]["code"] == protocol.BAD_REQUEST

    def test_programs_and_ping_and_stats(self):
        system = _system()
        with system.serve() as server:
            server.register("patients_over", _scan_program(system))
            client = server.connect()
            assert client.ping(timeout=30) is True
            assert client.programs(timeout=30) == ["patients_over"]
            stats = client.stats(timeout=30)
            assert stats["admission"]["slots"] == system.config.serve_pool_size


class TestCoalescing:
    def test_identical_concurrent_reads_share_one_execution(self):
        system = _system()
        gate = threading.Event()
        started = threading.Event()
        calls = []

        def udf(table):
            calls.append(1)
            started.set()
            assert gate.wait(timeout=30)
            return table

        with system.serve(pool_size=1) as server:
            server.register("gated", _gated_program(system, udf))
            client = server.connect()
            leader = client.submit_execute("gated")
            assert started.wait(timeout=30)
            follower = client.submit_execute("gated")
            # The follower attaches to the in-flight group without needing a
            # second slot (the pool has exactly one, and the leader holds it).
            deadline = time.monotonic() + 30
            while server.stats()["coalesced_attached_total"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            gate.set()
            leader_response = leader.result(timeout=30)
            follower_response = follower.result(timeout=30)
        assert len(calls) == 1
        assert leader_response["ok"] and follower_response["ok"]
        assert leader_response["coalesced"] is False
        assert follower_response["coalesced"] is True
        assert _rows(leader_response) == _rows(follower_response)
        assert system.obs.registry.value(
            "polystore_serve_coalesced_total", tenant="default") == 1

    def test_different_params_do_not_coalesce(self):
        system = _system()
        with system.serve(pool_size=2) as server:
            server.register("patients_over", _scan_program(system))
            client = server.connect()
            a = client.execute("patients_over", {"min_age": 50}, timeout=30)
            b = client.execute("patients_over", {"min_age": 80}, timeout=30)
        assert len(_rows(a)) == 4
        assert len(_rows(b)) == 1

    def test_different_tenants_do_not_coalesce(self):
        # The tenant is part of the coalescing key: sharing across tenants
        # would let one tenant's cancel fail another's request and leak its
        # traffic pattern via coalesced responses.
        system = _system()
        gate = threading.Event()
        started = threading.Event()
        calls = []

        def udf(table):
            calls.append(1)
            started.set()
            assert gate.wait(timeout=30)
            return table

        with system.serve(pool_size=1) as server:
            server.register("gated", _gated_program(system, udf))
            client = server.connect()
            first = client.submit_execute("gated", tenant="a")
            assert started.wait(timeout=30)
            second = client.submit_execute("gated", tenant="b")
            deadline = time.monotonic() + 30
            # b queues for its own slot rather than attaching to a's group.
            while server.stats()["admission"]["queued"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            assert server.stats()["coalesced_attached_total"] == 0
            gate.set()
            assert first.result(timeout=30)["ok"]
            assert second.result(timeout=30)["ok"]
        assert len(calls) == 2


class TestQuotas:
    def test_over_rate_tenant_is_rejected_with_retry_hint(self):
        system = _system()
        with system.serve() as server:
            server.register("patients_over", _scan_program(system))
            server.set_tenant("free", rate=0.5, burst=1.0)
            client = server.connect()
            client.execute("patients_over", tenant="free", timeout=30)
            with pytest.raises(ServeError) as excinfo:
                client.execute("patients_over", tenant="free", timeout=30)
            # Unlimited tenants are unaffected.
            client.execute("patients_over", tenant="pro", timeout=30)
        assert excinfo.value.code == protocol.QUOTA_EXCEEDED
        assert excinfo.value.retryable is True
        assert excinfo.value.retry_after_s > 0
        assert system.obs.registry.value(
            "polystore_serve_rejects_total", tenant="free",
            reason="quota") == 1


class TestCancellation:
    def test_cancel_queued_request_never_runs(self):
        system = _system()
        gate = threading.Event()
        started = threading.Event()
        calls = []

        def udf(table):
            calls.append(1)
            started.set()
            assert gate.wait(timeout=30)
            return table

        with system.serve(pool_size=1) as server:
            server.register("gated", _gated_program(system, udf),
                            coalesce=False)
            client = server.connect()
            leader = client.submit_execute("gated")
            assert started.wait(timeout=30)
            queued = client.submit_execute("gated", request_id="victim")
            deadline = time.monotonic() + 30
            while server.stats()["admission"]["queued"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            assert client.cancel("victim", timeout=30) is True
            cancelled = queued.result(timeout=30)
            gate.set()
            assert leader.result(timeout=30)["ok"]
        assert cancelled["ok"] is False
        assert cancelled["error"]["code"] == protocol.CANCELLED
        assert len(calls) == 1  # the victim never reached a worker

    def test_cancel_running_request_stops_at_next_checkpoint(self):
        system = _system()
        gate = threading.Event()
        started = threading.Event()

        def udf(table):
            started.set()
            assert gate.wait(timeout=30)
            return table

        with system.serve(pool_size=1) as server:
            server.register("gated", _gated_program(system, udf),
                            coalesce=False)
            client = server.connect()
            running = client.submit_execute("gated", request_id="target")
            assert started.wait(timeout=30)
            assert client.cancel("target", timeout=30) is True
            gate.set()  # the UDF returns; the next checkpoint observes cancel
            response = running.result(timeout=30)
        assert response["ok"] is False
        assert response["error"]["code"] == protocol.CANCELLED
        assert system.obs.registry.value(
            "polystore_serve_requests_total", tenant="default",
            outcome="cancelled") == 1

    def test_cancel_unknown_request_reports_not_found(self):
        system = _system()
        with system.serve() as server:
            assert server.connect().cancel("ghost", timeout=30) is False

    def test_deadline_expires_while_queued(self):
        system = _system()
        gate = threading.Event()
        started = threading.Event()

        def udf(table):
            started.set()
            assert gate.wait(timeout=30)
            return table

        with system.serve(pool_size=1) as server:
            server.register("gated", _gated_program(system, udf),
                            coalesce=False)
            client = server.connect()
            leader = client.submit_execute("gated")
            assert started.wait(timeout=30)
            doomed = client.submit_execute("gated", deadline_s=0.05)
            response = doomed.result(timeout=30)
            gate.set()
            assert leader.result(timeout=30)["ok"]
        assert response["error"]["code"] == protocol.DEADLINE_EXCEEDED
        assert system.obs.registry.value(
            "polystore_serve_rejects_total", tenant="default",
            reason="deadline") == 1

    def test_follower_deadline_expiry_leaves_the_group_running(self):
        # An expired follower must detach alone: the leader (and the slot it
        # holds) keeps running, completes normally, and must not try to
        # deliver a second response to the already-expired follower.
        system = _system()
        gate = threading.Event()
        started = threading.Event()

        def udf(table):
            started.set()
            assert gate.wait(timeout=30)
            return table

        with system.serve(pool_size=1) as server:
            server.register("gated", _gated_program(system, udf))
            client = server.connect()
            leader = client.submit_execute("gated")
            assert started.wait(timeout=30)
            follower = client.submit_execute("gated", deadline_s=0.05)
            expired = follower.result(timeout=30)
            assert expired["ok"] is False
            assert expired["error"]["code"] == protocol.DEADLINE_EXCEEDED
            gate.set()
            assert leader.result(timeout=30)["ok"]
            # The execution slot was released, not leaked: a fresh request
            # still gets dispatched and completes.
            assert client.execute("gated", timeout=30)["ok"]
            assert server.stats()["inflight"] == 0
        assert system.obs.registry.value(
            "polystore_serve_rejects_total", tenant="default",
            reason="deadline") == 1

    def test_deadline_expires_while_running(self):
        system = _system()

        def udf(table):
            time.sleep(0.2)
            return table

        with system.serve() as server:
            server.register("slow", _gated_program(system, udf, name="slow"),
                            coalesce=False)
            with pytest.raises(ServeError) as excinfo:
                server.connect().execute("slow", deadline_s=0.05, timeout=30)
        assert excinfo.value.code == protocol.DEADLINE_EXCEEDED
        assert excinfo.value.retryable is False


class TestObservability:
    def test_metrics_scrape_has_serve_families(self):
        system = _system()
        with system.serve() as server:
            server.register("patients_over", _scan_program(system))
            client = server.connect()
            client.execute("patients_over", {"min_age": 50}, timeout=30)
            scrape = client.metrics(timeout=30)
        parsed = parse_prometheus_text(scrape)
        requests = parsed["polystore_serve_requests_total"]["samples"]
        [ok_sample] = [s for s in requests
                       if s["labels"] == {"tenant": "default",
                                          "outcome": "ok"}]
        assert ok_sample["value"] == 1
        assert parsed["polystore_serve_sessions_busy"]["type"] == "gauge"
        assert "polystore_serve_queue_depth" in parsed

    def test_request_spans_join_the_trace_taxonomy(self):
        system = _system()
        with system.serve() as server:
            server.register("patients_over", _scan_program(system))
            server.connect().execute("patients_over", timeout=30)
        spans = system.obs.tracer.spans()
        serve_spans = [s for s in spans if s.name == "serve:patients_over"]
        assert len(serve_spans) == 1
        inner = [s for s in spans if s.name == "request:patients_over"]
        assert inner, "session request span missing under the serve span"
        lineage = [a.name for a in ancestors(inner[0], spans)]
        assert "serve:patients_over" in lineage
        assert serve_spans[0].attrs["tenant"] == "default"


class TestTcpTransport:
    def test_tcp_round_trip_and_parity(self):
        system = _system()
        with system.serve(pool_size=2) as server:
            server.register("patients_over", _scan_program(system))
            host, port = server.address
            with TcpClient(host, port) as tcp:
                assert tcp.ping(timeout=30)
                over_tcp = tcp.execute("patients_over", {"min_age": 50},
                                       timeout=30)
                in_process = server.connect().execute(
                    "patients_over", {"min_age": 50}, timeout=30)
                assert _rows(over_tcp) == _rows(in_process)
                scrape = tcp.metrics(timeout=30)
        assert "polystore_serve_requests_total" in scrape

    def test_timeout_mid_frame_keeps_the_stream_aligned(self):
        # A response that times out after its length prefix (or part of its
        # body) arrived must not desynchronize the stream: the partial frame
        # stays buffered and the next read resumes it.
        listener = socket.create_server(("127.0.0.1", 0))
        host, port = listener.getsockname()[:2]
        client = TcpClient(host, port)
        server_sock, _ = listener.accept()
        outcome: dict[str, object] = {}

        def call(key, message, timeout):
            try:
                outcome[key] = client.request(message, timeout)
            except Exception as exc:  # noqa: BLE001 - recorded for asserts
                outcome[key] = exc

        try:
            first = threading.Thread(
                target=call, args=("first", {"op": "ping", "id": "p1"}, 0.3))
            first.start()
            assert protocol.read_frame_sync(server_sock)["id"] == "p1"
            response = protocol.encode_frame(
                protocol.ok_response("p1", pong=True))
            server_sock.sendall(response[:6])  # prefix + 2 body bytes
            first.join(timeout=10)
            assert not first.is_alive()
            assert isinstance(outcome["first"], TimeoutError)

            server_sock.sendall(response[6:])  # the late remainder
            second = threading.Thread(
                target=call, args=("second", {"op": "ping", "id": "p2"}, 10))
            second.start()
            assert protocol.read_frame_sync(server_sock)["id"] == "p2"
            server_sock.sendall(protocol.encode_frame(
                protocol.ok_response("p2", pong=True)))
            second.join(timeout=10)
            assert not second.is_alive()
            assert outcome["second"]["id"] == "p2"
            # The late first response was reassembled as one frame and
            # parked under its own id, not misread as a length prefix.
            assert client._pending == {"p1": protocol.ok_response(
                "p1", pong=True)}
        finally:
            client.close()
            server_sock.close()
            listener.close()

    def test_disconnect_cancels_outstanding_work(self):
        system = _system()
        gate = threading.Event()
        started = threading.Event()

        def udf(table):
            started.set()
            assert gate.wait(timeout=30)
            return table

        with system.serve(pool_size=1) as server:
            server.register("gated", _gated_program(system, udf),
                            coalesce=False)
            host, port = server.address
            tcp = TcpClient(host, port)
            tcp._sock.sendall(protocol.encode_frame(
                {"op": "execute", "id": "orphan", "program": "gated"}))
            assert started.wait(timeout=30)
            tcp.close()  # drop the connection with the request running
            gate.set()
            deadline = time.monotonic() + 30
            while server.stats()["inflight"] > 0:
                assert time.monotonic() < deadline
                time.sleep(0.005)
        # The tracked request was cancelled (or completed into the void)
        # rather than leaking in the in-flight registry; which of the two
        # depends on whether the disconnect or the gate release lands first.
        assert system.obs.registry.value(
            "polystore_serve_requests_total", tenant="default",
            outcome="cancelled") in (None, 1)


class TestShutdown:
    def test_stop_is_idempotent_and_sessions_close(self):
        system = _system()
        server = system.serve()
        server.register("patients_over", _scan_program(system))
        server.connect().execute("patients_over", timeout=30)
        server.stop()
        server.stop()  # second stop is a no-op

    def test_submit_during_stop_window_unblocks_client(self):
        # Between stop() posting loop.stop() and the loop actually closing,
        # call_soon_threadsafe accepts callbacks that will never run.  A
        # submit landing in that window must still resolve the client's
        # future (with the retryable SHUTTING_DOWN contract), not hang.
        system = _system()
        server = system.serve()
        server.register("patients_over", _scan_program(system))
        client = server.connect()
        server._loop_stopping = True  # simulate the stop window
        with pytest.raises(ServeError) as exc_info:
            client.execute("patients_over", timeout=5)
        assert exc_info.value.code == protocol.SHUTTING_DOWN
        assert exc_info.value.retryable
        server._loop_stopping = False
        server.stop()

    def test_execute_after_stop_rejects_cleanly(self):
        # A client that kept its handle across stop() gets the same
        # retryable SHUTTING_DOWN contract as a drained queue entry,
        # not a raw event-loop RuntimeError.
        system = _system()
        server = system.serve()
        server.register("patients_over", _scan_program(system))
        client = server.connect()
        server.stop()
        with pytest.raises(ServeError) as exc_info:
            client.execute("patients_over", timeout=30)
        assert exc_info.value.code == "SHUTTING_DOWN"
        assert exc_info.value.retryable


class TestCancellationErrorMapping:
    """Cancellation signals escaping an op handler must keep their meaning.

    Regression for the analyzer's cancellation-safety rule: the dispatch
    ``except Exception`` used to fold CancelledError/DeadlineExceededError
    into INTERNAL, so clients retried work that was deliberately shed.
    """

    def test_cancelled_error_in_op_maps_to_cancelled_code(self):
        system = _system()

        def shed() -> str:
            raise CancelledError("scrape shed under load")

        system.export_prometheus = shed
        with system.serve() as server:
            with pytest.raises(ServeError) as excinfo:
                server.connect().metrics(timeout=30)
        assert excinfo.value.code == protocol.CANCELLED

    def test_deadline_error_in_op_maps_to_deadline_code(self):
        system = _system()

        def expired() -> str:
            raise DeadlineExceededError("budget spent before scrape")

        system.export_prometheus = expired
        with system.serve() as server:
            with pytest.raises(ServeError) as excinfo:
                server.connect().metrics(timeout=30)
        assert excinfo.value.code == protocol.DEADLINE_EXCEEDED
