"""Overload behavior: explicit rejects, bounded latency, honest gauges."""

from __future__ import annotations

import threading
import time

from repro import DataflowProgram, SystemConfig, col
from repro.core import build_cpu_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.serve import protocol
from repro.serve.client import ServeError
from repro.stores import RelationalEngine


def _system():
    engine = RelationalEngine("loaddb")
    schema = make_schema(("row_id", DataType.INT), ("value", DataType.FLOAT))
    engine.load_table("events", Table(
        schema, [(i, float(i % 9)) for i in range(64)]))
    config = SystemConfig(obs_enabled=True, obs_trace_sample_rate=0.0)
    return build_cpu_polystore([engine], config=config)


def _program(system, name, udf=None):
    expr = system.dataset("loaddb").table("events")
    if udf is not None:
        expr = expr.apply(udf)
    expr = expr.filter(col("value") >= 0.0)
    program = DataflowProgram(name)
    program.output("out", expr)
    return program


class TestQueueDepthGauges:
    def test_gauges_match_admission_state_while_saturated(self):
        system = _system()
        gate = threading.Event()
        started = threading.Event()

        def udf(table):
            started.set()
            assert gate.wait(timeout=30)
            return table

        with system.serve(pool_size=1, max_queue=8,
                          max_queue_per_tenant=4) as server:
            server.register("slow", _program(system, "slow", udf),
                            coalesce=False)
            client = server.connect()
            blocker = client.submit_execute("slow", tenant="bulk")
            assert started.wait(timeout=30)
            queued = [client.submit_execute("slow", tenant="bulk")
                      for _ in range(4)]  # fills the per-tenant bound
            deadline = time.monotonic() + 30
            while server.stats()["admission"]["queued"] < 4:
                assert time.monotonic() < deadline
                time.sleep(0.005)

            # Gauges sampled by refresh_gauges must agree with live state.
            system.refresh_gauges()
            assert system.obs.registry.value(
                "polystore_serve_queue_depth", tenant="bulk") == 4
            assert system.obs.registry.value(
                "polystore_serve_sessions_busy") == 1
            assert server.stats()["admission"]["queues"] == {"bulk": 4}

            # The 5th queued request breaches the bound: explicit reject.
            overflow = client.submit_execute("slow", tenant="bulk")
            rejected = overflow.result(timeout=30)
            assert rejected["error"]["code"] == protocol.OVERLOADED
            assert rejected["error"]["retryable"] is True
            assert rejected["error"]["retry_after_s"] > 0

            gate.set()
            assert blocker.result(timeout=30)["ok"]
            assert all(f.result(timeout=30)["ok"] for f in queued)
            system.refresh_gauges()
            assert system.obs.registry.value(
                "polystore_serve_queue_depth", tenant="bulk") == 0
            # One more scrape retires the drained tenant's series: the gauge
            # label set stays bounded under tenant-id churn.
            system.refresh_gauges()
            assert system.obs.registry.value(
                "polystore_serve_queue_depth", tenant="bulk") is None
        assert system.obs.registry.value(
            "polystore_serve_rejects_total", tenant="bulk",
            reason="overloaded") == 1


class TestOverloadIsolation:
    def test_fast_tenant_latency_bounded_under_bulk_saturation(self):
        """Slow-UDF flood from one tenant must not starve or deadlock the
        other: every fast request finishes (directly or via bounded
        retries on retryable rejects) with bounded latency."""
        system = _system()

        def slow_udf(table):
            time.sleep(0.03)
            return table

        with system.serve(pool_size=2, max_queue=6,
                          max_queue_per_tenant=4) as server:
            server.register("slow", _program(system, "slow", slow_udf),
                            coalesce=False)
            server.register("fast", _program(system, "fast"))
            server.set_tenant("fast", weight=8.0)
            client = server.connect()

            bulk_futures = [client.submit_execute("slow", tenant="bulk")
                            for _ in range(24)]

            latencies = []
            for _ in range(10):
                start = time.monotonic()
                for attempt in range(40):
                    try:
                        response = client.execute("fast", tenant="fast",
                                                  timeout=30)
                        break
                    except ServeError as exc:
                        assert exc.retryable, (
                            f"fast tenant got terminal {exc.code}")
                        time.sleep(min(exc.retry_after_s or 0.01, 0.05))
                else:
                    raise AssertionError("fast request never admitted")
                assert len(response["outputs"]["out"]["rows"]) == 64
                latencies.append(time.monotonic() - start)

            bulk_responses = [f.result(timeout=60) for f in bulk_futures]

        # Every bulk request resolved explicitly: served or rejected with a
        # retryable OVERLOADED — never silently queued forever.
        outcomes = {"ok": 0, "rejected": 0}
        for response in bulk_responses:
            if response["ok"]:
                outcomes["ok"] += 1
            else:
                assert response["error"]["code"] == protocol.OVERLOADED
                assert response["error"]["retryable"] is True
                outcomes["rejected"] += 1
        assert outcomes["ok"] >= 1
        assert outcomes["rejected"] >= 1  # bounds were actually exercised
        assert outcomes["ok"] + outcomes["rejected"] == 24

        latencies.sort()
        p99 = latencies[int(0.99 * (len(latencies) - 1))]
        # ~24 bulk requests at 30ms over 2 slots is ~360ms of backlog; a
        # starved fast tenant would show seconds here.  Generous bound to
        # stay robust on slow CI machines while still catching starvation.
        assert p99 < 3.0, f"fast-tenant p99 {p99:.3f}s under bulk load"
