"""Unit tests for token-bucket quotas and stride-scheduled admission."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.serve.admission import AdmissionController
from repro.serve.coalesce import Coalescer, coalesce_key
from repro.serve.quotas import QuotaManager, TenantPolicy, TokenBucket


class _Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = _Clock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        retry = bucket.try_acquire()
        assert retry == pytest.approx(0.5)  # 1 token at 2/s
        clock.advance(0.5)
        assert bucket.try_acquire() == 0.0

    def test_tokens_cap_at_burst(self):
        clock = _Clock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(2.0)


class TestQuotaManager:
    def test_default_is_unlimited(self):
        quotas = QuotaManager()
        assert all(quotas.try_acquire("anyone") == 0.0 for _ in range(100))

    def test_rate_limited_tenant_gets_retry_hint(self):
        clock = _Clock()
        quotas = QuotaManager(clock=clock)
        quotas.set_policy("free", rate=1.0, burst=2.0)
        assert quotas.try_acquire("free") == 0.0
        assert quotas.try_acquire("free") == 0.0
        retry = quotas.try_acquire("free")
        assert retry == pytest.approx(1.0)
        clock.advance(1.0)
        assert quotas.try_acquire("free") == 0.0
        # Other tenants stay on the unlimited default.
        assert quotas.try_acquire("pro") == 0.0

    def test_policy_amendment_keeps_unset_fields(self):
        quotas = QuotaManager()
        quotas.set_policy("t", rate=5.0, burst=10.0)
        policy = quotas.set_policy("t", weight=4.0)
        assert policy == TenantPolicy(rate=5.0, burst=10.0, weight=4.0)
        assert quotas.weight("t") == 4.0

    def test_invalid_policies_are_rejected(self):
        with pytest.raises(ConfigurationError):
            TenantPolicy(rate=0.0)
        with pytest.raises(ConfigurationError):
            TenantPolicy(burst=0.5)
        with pytest.raises(ConfigurationError):
            TenantPolicy(weight=-1.0)

    def test_describe_reports_policies(self):
        quotas = QuotaManager()
        quotas.set_policy("free", rate=2.0, burst=4.0, weight=0.5)
        description = quotas.describe()
        assert description["tenants"]["free"]["rate"] == 2.0
        assert description["default"]["rate"] is None


class TestAdmissionController:
    def _controller(self, slots=2, max_queue=4, per_tenant=2):
        return AdmissionController(slots=slots, max_queue=max_queue,
                                   max_queue_per_tenant=per_tenant)

    def test_slots_then_queue_then_reject(self):
        admission = self._controller(slots=1, max_queue=2, per_tenant=2)
        assert admission.try_admit("a", "r1")[0] == "run"
        assert admission.try_admit("a", "r2")[0] == "queued"
        assert admission.try_admit("a", "r3")[0] == "queued"
        decision, retry_after = admission.try_admit("a", "r4")
        assert decision == "reject"
        assert retry_after > 0
        assert admission.rejected_total == 1

    def test_per_tenant_bound_rejects_before_global(self):
        admission = self._controller(slots=1, max_queue=10, per_tenant=1)
        admission.try_admit("a", "r1")
        assert admission.try_admit("a", "r2")[0] == "queued"
        assert admission.try_admit("a", "r3")[0] == "reject"
        # Another tenant still has queue room.
        assert admission.try_admit("b", "r4")[0] == "queued"

    def test_release_dispatches_fifo_within_tenant(self):
        admission = self._controller(slots=1, max_queue=4, per_tenant=4)
        admission.try_admit("a", "r1")
        admission.try_admit("a", "r2")
        admission.try_admit("a", "r3")
        assert admission.on_release() == "r2"
        assert admission.on_release() == "r3"
        assert admission.on_release() is None
        assert admission.busy == 0

    def test_stride_weights_interleave_proportionally(self):
        admission = self._controller(slots=1, max_queue=20, per_tenant=10)
        admission.try_admit("heavy", "h0", weight=2.0)
        for i in range(6):
            admission.try_admit("heavy", f"h{i + 1}", weight=2.0)
        for i in range(3):
            admission.try_admit("light", f"l{i}", weight=1.0)
        weights = {"heavy": 2.0, "light": 1.0}
        order = [admission.on_release(weights) for _ in range(9)]
        # Over any window the 2:1 weights show as ~2 heavy per light.
        first_six = order[:6]
        assert first_six.count("heavy"[0] + str(0)) == 0  # h0 already ran
        heavy_in_first_six = sum(1 for r in first_six if r.startswith("h"))
        assert heavy_in_first_six == 4
        assert sorted(order) == sorted(
            [f"h{i}" for i in range(1, 7)] + [f"l{i}" for i in range(3)])

    def test_idle_tenant_cannot_bank_credit(self):
        admission = self._controller(slots=1, max_queue=20, per_tenant=10)
        admission.try_admit("a", "a0")
        # Tenant a runs many requests; b was idle the whole time.
        for i in range(5):
            admission.try_admit("a", f"a{i + 1}")
        for _ in range(5):
            admission.on_release()
        admission.try_admit("b", "b0")
        admission.try_admit("a", "a-late")
        # b's pass was re-synced to the global pass on arrival: it gets the
        # next slot but not five back-to-back turns of "owed" credit.
        assert admission.on_release() == "b0"

    def test_remove_unlinks_a_queued_item(self):
        admission = self._controller(slots=1, max_queue=4, per_tenant=4)
        admission.try_admit("a", "r1")
        admission.try_admit("a", "r2")
        assert admission.remove("a", "r2") is True
        assert admission.remove("a", "r2") is False
        assert admission.on_release() is None

    def test_drain_returns_everything_queued(self):
        admission = self._controller(slots=1, max_queue=6, per_tenant=6)
        admission.try_admit("a", "r1")
        for i in range(3):
            admission.try_admit("a", f"q{i}")
        drained = admission.drain()
        assert sorted(drained) == ["q0", "q1", "q2"]
        assert admission.queued == 0

    def test_retry_hint_tracks_service_time(self):
        admission = self._controller(slots=2, max_queue=10, per_tenant=10)
        for _ in range(20):
            admission.observe_service_time(0.1)
        admission.try_admit("a", "r1")
        admission.try_admit("a", "r2")
        admission.try_admit("a", "r3")
        # Backlog of 3 over 2 slots at ~0.1s each.
        assert admission.retry_after_hint() == pytest.approx(0.15, rel=0.3)

    def test_snapshot_shape(self):
        admission = self._controller()
        admission.try_admit("a", "r1")
        snapshot = admission.snapshot()
        assert snapshot["busy"] == 1
        assert snapshot["slots"] == 2
        assert snapshot["queues"] == {}

    def test_invalid_bounds_raise(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(slots=0, max_queue=1, max_queue_per_tenant=1)

    def test_pass_state_is_pruned_with_drained_queues(self):
        # Tenant ids are client-supplied strings: stride bookkeeping must
        # not accumulate an entry per tenant ever seen, only per tenant
        # with queued work.
        admission = self._controller(slots=1, max_queue=10, per_tenant=10)
        for i in range(50):
            admission.try_admit(f"drive-by-{i}", f"r{i}")
            admission.on_release()
        assert admission._pass == {}
        admission.try_admit("a", "r-run")
        admission.try_admit("b", "r-queued")
        assert set(admission._pass) == {"b"}
        assert admission.on_release() == "r-queued"  # b's queue drains
        assert admission._pass == {}
        admission.try_admit("c", "c0")
        admission.remove("c", "c0")
        assert admission._pass == {}
        admission.try_admit("d", "d0")
        admission.drain()
        assert admission._pass == {}


class TestCoalesceKey:
    def test_param_order_does_not_matter(self):
        a = coalesce_key("t", "p", "m", {"x": 1, "y": 2})
        b = coalesce_key("t", "p", "m", {"y": 2, "x": 1})
        assert a == b

    def test_distinct_identities_differ(self):
        base = coalesce_key("t", "p", "m", {"x": 1})
        assert coalesce_key("other", "p", "m", {"x": 1}) != base
        assert coalesce_key("t", "q", "m", {"x": 1}) != base
        assert coalesce_key("t", "p", "m", {"x": 2}) != base
        assert coalesce_key("t", "p", "other", {"x": 1}) != base

    def test_unserializable_params_opt_out(self):
        assert coalesce_key("t", "p", "m", {"x": object()}) is None

    def test_group_lifecycle(self):
        coalescer = Coalescer()
        group = coalescer.create("k", "leader")
        coalescer.attach(group, "f1", "deliver-1")
        assert coalescer.lookup("k") is group
        assert len(group) == 1
        assert coalescer.detach(group, "f1") is True
        assert coalescer.detach(group, "f1") is False
        assert coalescer.pop("k") is group
        assert coalescer.lookup("k") is None
