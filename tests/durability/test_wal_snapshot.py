"""WAL framing, snapshot atomicity and SSTable compaction mechanics."""

from __future__ import annotations

import pytest

from repro.durability import faults
from repro.durability.snapshot import (
    load_manifest,
    load_snapshot,
    snapshot_id,
    snapshot_name,
    write_manifest,
    write_snapshot,
)
from repro.durability.wal import (
    Liveness,
    WalWriter,
    decode_stream,
    encode_record,
    read_records,
    segment_index,
    segment_name,
)
from repro.exceptions import StorageError
from repro.stores.keyvalue import KeyValueEngine, SSTable, merge_sstables
from repro.stores.keyvalue.memtable import TOMBSTONE


@pytest.fixture(autouse=True)
def _clear_faults():
    faults.clear()
    yield
    faults.clear()


class TestFraming:
    def test_roundtrip_many_records(self):
        records = [{"i": i, "payload": "x" * i} for i in range(20)]
        data = b"".join(encode_record(r) for r in records)
        decoded, torn = decode_stream(data)
        assert decoded == records
        assert torn == 0

    def test_torn_tail_is_truncated(self):
        good = encode_record({"k": 1})
        torn = encode_record({"k": 2})[:-3]
        decoded, torn_bytes = decode_stream(good + torn)
        assert decoded == [{"k": 1}]
        assert torn_bytes == len(torn)

    def test_corrupt_checksum_stops_decoding(self):
        frames = [encode_record(i) for i in range(3)]
        corrupted = bytearray(b"".join(frames))
        corrupted[len(frames[0]) + 10] ^= 0xFF  # flip a payload byte of #2
        decoded, torn_bytes = decode_stream(bytes(corrupted))
        assert decoded == [0]
        assert torn_bytes > 0

    def test_segment_name_roundtrip(self):
        assert segment_index(segment_name(42)) == 42
        assert segment_index("not-a-wal.log") is None
        assert segment_index("snap-00000001.pkl") is None


class TestWalWriter:
    @pytest.mark.parametrize("sync", ["always", "interval", "off"])
    def test_append_and_read_back(self, tmp_path, sync):
        writer = WalWriter(tmp_path, Liveness(), sync=sync)
        for i in range(10):
            writer.append({"i": i})
        writer.close()
        records, truncated = read_records(tmp_path, 0)
        assert [r["i"] for r in records] == list(range(10))
        assert truncated == 0

    def test_unknown_sync_policy_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            WalWriter(tmp_path, Liveness(), sync="sometimes")

    def test_rotation_splits_segments_and_replay_starts_midway(self, tmp_path):
        writer = WalWriter(tmp_path, Liveness())
        writer.append({"seg": 0})
        segment = writer.rotate()
        writer.append({"seg": 1})
        writer.close()
        assert segment == 1
        tail, _ = read_records(tmp_path, segment)
        assert tail == [{"seg": 1}]
        everything, _ = read_records(tmp_path, 0)
        assert everything == [{"seg": 0}, {"seg": 1}]

    def test_dead_writer_is_a_noop(self, tmp_path):
        liveness = Liveness()
        writer = WalWriter(tmp_path, liveness)
        writer.append({"i": 1})
        liveness.kill()
        writer.append({"i": 2})
        assert writer.rotate() == 0
        writer.close()
        records, _ = read_records(tmp_path, 0)
        assert records == [{"i": 1}]

    def test_wal_append_fault_leaves_torn_record(self, tmp_path):
        liveness = Liveness()
        writer = WalWriter(tmp_path, liveness)
        writer.append({"i": 1})
        faults.arm("wal.append")
        with pytest.raises(faults.InjectedFault):
            writer.append({"i": 2})
        assert not liveness.alive
        records, truncated = read_records(tmp_path, 0)
        assert records == [{"i": 1}]
        assert truncated == 1


class TestSnapshots:
    def test_write_load_roundtrip(self, tmp_path):
        payload = {"state": list(range(100))}
        name = write_snapshot(tmp_path, 3, payload, Liveness())
        assert snapshot_id(name) == 3
        assert load_snapshot(tmp_path, name) == payload

    def test_snapshot_fault_never_exposes_partial_file(self, tmp_path):
        faults.arm("snapshot.write")
        liveness = Liveness()
        with pytest.raises(faults.InjectedFault):
            write_snapshot(tmp_path, 1, {"x": 1}, liveness)
        assert not liveness.alive
        assert not (tmp_path / snapshot_name(1)).exists()

    def test_manifest_roundtrip_and_missing(self, tmp_path):
        assert load_manifest(tmp_path) is None
        manifest = {"snapshot_id": 7, "snapshot": snapshot_name(7),
                    "wal_segment": 2, "scoped_versions": {"kv": 9}}
        write_manifest(tmp_path, manifest)
        assert load_manifest(tmp_path) == manifest


class TestFaultRegistry:
    def test_arm_is_one_shot(self):
        faults.arm("wal.append")
        assert faults.trip("wal.append")
        assert not faults.trip("wal.append")

    def test_skip_counts_passes(self):
        faults.arm("wal.append", skip=2)
        assert not faults.trip("wal.append")
        assert not faults.trip("wal.append")
        assert faults.trip("wal.append")

    def test_disarm(self):
        faults.arm("snapshot.write")
        faults.disarm("snapshot.write")
        assert not faults.trip("snapshot.write")


class TestMergeSSTables:
    def test_full_merge_drops_all_tombstones(self):
        old = SSTable([("a", 1), ("b", 2)])
        new = SSTable([("a", 10), ("b", TOMBSTONE)])
        merged = merge_sstables([old, new])
        assert merged.get("a") == (True, 10)
        assert merged.get("b") == (False, None)

    def test_partial_merge_keeps_tombstone_shadowing_older_level(self):
        oldest = SSTable([("b", 2)])
        mid = SSTable([("a", 1)])
        newest = SSTable([("b", TOMBSTONE)])
        merged = merge_sstables([mid, newest], older=[oldest])
        # "b" still exists at the older level: dropping the tombstone would
        # resurrect it.
        assert merged.get("b") == (True, TOMBSTONE)

    def test_partial_merge_drops_annihilated_tombstone(self):
        oldest = SSTable([("z", 9)])
        mid = SSTable([("b", 2)])
        newest = SSTable([("b", TOMBSTONE)])
        merged = merge_sstables([mid, newest], older=[oldest])
        # The tombstone cancelled the only "b" in the merge inputs and no
        # older level holds the key: Z-set annihilation leaves nothing.
        assert merged.get("b") == (False, None)
        assert len(merged) == 0


class TestIncrementalCompaction:
    def test_small_flush_does_not_rewrite_large_run(self):
        engine = KeyValueEngine(memtable_capacity=1000)
        for i in range(500):
            engine.put(f"base/{i:04d}", i)
        engine.flush()
        engine.put("tiny", 1)
        engine.compact()
        sizes = [len(t) for t in engine._sstables]
        assert len(sizes) == 2 and max(sizes) == 500

    def test_similar_sized_runs_merge(self):
        engine = KeyValueEngine(memtable_capacity=2)
        for i in range(10):
            engine.put(f"k{i}", i)
        engine.compact()
        assert engine.statistics()["sstables"] == 1
        assert len(engine) == 10

    def test_full_compaction_still_available(self):
        engine = KeyValueEngine(memtable_capacity=1000)
        for i in range(500):
            engine.put(f"base/{i:04d}", i)
        engine.flush()
        engine.put("tiny", 1)
        engine.compact(full=True)
        assert engine.statistics()["sstables"] == 1

    def test_reads_stay_correct_across_partial_compactions(self):
        engine = KeyValueEngine(memtable_capacity=4)
        model = {}
        for i in range(40):
            engine.put(f"k{i % 13}", i)
            model[f"k{i % 13}"] = i
            if i % 11 == 0:
                engine.delete(f"k{(i + 1) % 13}")
                model.pop(f"k{(i + 1) % 13}", None)
            if i % 7 == 0:
                engine.compact()
        engine.compact()
        assert dict(engine.scan()) == model

    def test_partial_compaction_does_not_resurrect_deletes(self):
        engine = KeyValueEngine(memtable_capacity=2)
        engine.put("a", 1)
        engine.put("b", 2)
        engine.flush()          # run 1: a, b
        engine.delete("a")
        engine.flush()          # run 2: tombstone(a)
        engine.put("c", 3)
        engine.flush()          # run 3: c
        engine.compact()
        assert engine.get("a") is None
        assert dict(engine.scan()) == {"b": 2, "c": 3}
