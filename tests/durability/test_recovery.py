"""Crash recovery: restart roundtrips, hard kills, twins and views.

The twin pattern: apply the same mutations to a durable system and to a
never-persisted engine, crash (or close) the durable one, recover it from
disk, and require byte-identical reads *and* identical scoped data versions
and changelog positions — recovery must be indistinguishable from having
never crashed.
"""

from __future__ import annotations

import pytest

from repro import PolystorePlusPlus, col
from repro.compiler.pipeline import CompilerOptions
from repro.core.system import SystemConfig
from repro.datamodel import DataType, Table, make_schema
from repro.durability import InjectedFault, faults
from repro.eide.dataflow import DataflowProgram, Dataset
from repro.exceptions import ConfigurationError
from repro.stores import (
    GraphEngine,
    KeyValueEngine,
    RelationalEngine,
    TextEngine,
    TimeseriesEngine,
)

SCHEMA = make_schema(("order_id", DataType.INT), ("customer", DataType.STRING),
                     ("amount", DataType.FLOAT))


@pytest.fixture(autouse=True)
def _clear_faults():
    faults.clear()
    yield
    faults.clear()


def _config(data_dir, **overrides) -> SystemConfig:
    defaults = {"data_dir": str(data_dir), "durability_sync": "always"}
    defaults.update(overrides)
    return SystemConfig(**defaults)


def _relational_ops(db):
    db.create_table("orders", SCHEMA)
    db.insert("orders", [(i, f"c{i % 5}", float(i % 9)) for i in range(60)])
    db.create_index("orders", "customer", kind="hash")
    db.delete_rows("orders", col("order_id") < 8)
    db.update_rows("orders", col("order_id") == 11, {"amount": 99.0})


def _kv_ops(kv):
    for i in range(25):
        kv.put(f"user/{i:03d}", {"clicks": i})
    kv.delete("user/007")
    kv.compact()


def _ts_ops(ts):
    ts.create_series("cpu", {"host": "a"})
    for i in range(30):
        ts.append("cpu", float(i), float(i % 5))
    ts.append_many("mem", [(float(i), 1.0) for i in range(10)])


def _text_ops(text):
    for i in range(12):
        text.add_document(f"d{i}", f"polystore shard number {i}", {"n": i})
    text.remove_document("d3")


def _engine_fingerprint(engine):
    """Everything recovery must reproduce exactly for one engine."""
    state: dict = {
        "scoped": {scope: engine.data_version_for(scope)
                   for scope in sorted(engine.known_scopes())},
        "data_version": engine.data_version,
        "log_head": engine.changelog.latest_seq,
    }
    if isinstance(engine, RelationalEngine):
        state["tables"] = {
            name: list(engine.snapshot_scan(name)[0].rows)
            for name in engine.list_tables()
        }
    elif isinstance(engine, KeyValueEngine):
        state["data"] = list(engine.scan())
    elif isinstance(engine, TimeseriesEngine):
        state["series"] = {
            key: [(p.timestamp, p.value) for p in engine.series(key)]
            for key in engine.list_series()
        }
    elif isinstance(engine, TextEngine):
        state["docs"] = {d: engine.get(d) for d in engine.documents_matching({})}
        state["search"] = engine.search("polystore")
    return state


class TestCleanRestart:
    def test_all_four_engines_roundtrip(self, tmp_path):
        system = PolystorePlusPlus(data_dir=str(tmp_path))
        engines = {
            "ordersdb": system.register_engine(RelationalEngine("ordersdb")),
            "profiles": system.register_engine(
                KeyValueEngine("profiles", memtable_capacity=8)),
            "metrics": system.register_engine(TimeseriesEngine("metrics")),
            "docs": system.register_engine(TextEngine("docs")),
        }
        _relational_ops(engines["ordersdb"])
        _kv_ops(engines["profiles"])
        _ts_ops(engines["metrics"])
        _text_ops(engines["docs"])
        expected = {name: _engine_fingerprint(e) for name, e in engines.items()}
        system.close()

        reborn = PolystorePlusPlus(data_dir=str(tmp_path))
        recovered = {
            "ordersdb": reborn.register_engine(RelationalEngine("ordersdb")),
            "profiles": reborn.register_engine(
                KeyValueEngine("profiles", memtable_capacity=8)),
            "metrics": reborn.register_engine(TimeseriesEngine("metrics")),
            "docs": reborn.register_engine(TextEngine("docs")),
        }
        for name, engine in recovered.items():
            assert _engine_fingerprint(engine) == expected[name], name
        # A clean close checkpointed everything: the tail is empty.
        for report in reborn.durability.recovery_report().values():
            assert report["restored"] and report["replayed_batches"] == 0

    def test_secondary_index_recovers_via_meta_replay(self, tmp_path):
        system = PolystorePlusPlus(data_dir=str(tmp_path))
        db = system.register_engine(RelationalEngine("ordersdb"))
        _relational_ops(db)
        system.close()

        reborn = PolystorePlusPlus(data_dir=str(tmp_path))
        db2 = reborn.register_engine(RelationalEngine("ordersdb"))
        assert "customer" in db2._tables["orders"].hash_indexes
        index = db2._tables["orders"].hash_indexes["customer"]
        assert sorted(index.lookup("c1"))  # populated, not just present

    def test_unsupported_engine_is_skipped_not_broken(self, tmp_path):
        system = PolystorePlusPlus(data_dir=str(tmp_path))
        graph = system.register_engine(GraphEngine("net"))
        graph.add_node("a", "person")
        graph.add_node("b", "person")
        graph.add_edge("a", "b", "knows")
        description = system.durability.describe()
        assert "net" in description["skipped_engines"]
        assert "net" not in description["engines"]
        system.close()

    def test_mismatched_engine_type_is_rejected(self, tmp_path):
        system = PolystorePlusPlus(data_dir=str(tmp_path))
        system.register_engine(KeyValueEngine("store"))
        system.close()
        reborn = PolystorePlusPlus(data_dir=str(tmp_path))
        with pytest.raises(ConfigurationError):
            reborn.register_engine(TextEngine("store"))

    def test_double_open_rejected_and_close_is_idempotent(self, tmp_path):
        system = PolystorePlusPlus(data_dir=str(tmp_path))
        with pytest.raises(ConfigurationError):
            system.open(str(tmp_path))
        system.close()
        system.close()


class TestHardKill:
    def test_mid_append_kill_matches_never_crashed_twin(self, tmp_path):
        system = PolystorePlusPlus(_config(tmp_path))
        db = system.register_engine(RelationalEngine("ordersdb"))
        twin = RelationalEngine("ordersdb")
        for engine in (db, twin):
            _relational_ops(engine)
        expected = _engine_fingerprint(twin)

        faults.arm("wal.append")
        with pytest.raises(InjectedFault):
            db.insert("orders", [(999, "doomed", 1.0)])
        # The in-memory system saw the doomed write; disk must not have.
        assert any(r[0] == 999 for r in db.snapshot_scan("orders")[0].rows)

        reborn = PolystorePlusPlus(data_dir=str(tmp_path))
        db2 = reborn.register_engine(RelationalEngine("ordersdb"))
        assert _engine_fingerprint(db2) == expected
        report = reborn.durability.recovery_report()["ordersdb"]
        assert report["truncated_records"] == 1

    def test_mid_snapshot_kill_recovers_from_previous_checkpoint(self, tmp_path):
        system = PolystorePlusPlus(_config(tmp_path, durability_snapshot_every=5))
        kv = system.register_engine(KeyValueEngine("profiles"))
        twin = KeyValueEngine("profiles")
        for i in range(3):
            kv.put(f"k{i}", i)
            twin.put(f"k{i}", i)
        faults.arm("snapshot.write")
        # The 5th WAL record triggers a checkpoint inside the write; the
        # snapshot dies pre-rename, but the write's WAL record already
        # landed — recovery must include it.
        with pytest.raises(InjectedFault):
            for i in range(3, 10):
                kv.put(f"k{i}", i)
        for i in range(3, 5):
            twin.put(f"k{i}", i)

        reborn = PolystorePlusPlus(data_dir=str(tmp_path))
        kv2 = reborn.register_engine(KeyValueEngine("profiles"))
        assert _engine_fingerprint(kv2) == _engine_fingerprint(twin)
        report = reborn.durability.recovery_report()["profiles"]
        assert report["replayed_batches"] > 0

    def test_recovery_replays_only_the_tail(self, tmp_path):
        system = PolystorePlusPlus(_config(tmp_path))
        kv = system.register_engine(KeyValueEngine("profiles"))
        for i in range(40):
            kv.put(f"pre/{i}", i)
        system.durability.checkpoint()
        for i in range(7):
            kv.put(f"post/{i}", i)
        faults.arm("wal.append")
        with pytest.raises(InjectedFault):
            kv.put("doomed", 0)

        reborn = PolystorePlusPlus(data_dir=str(tmp_path))
        kv2 = reborn.register_engine(KeyValueEngine("profiles"))
        report = reborn.durability.recovery_report()["profiles"]
        # Only the 7 post-checkpoint records replay, not all 47.
        assert report["replayed_batches"] == 7
        assert kv2.get("pre/39") == 39 and kv2.get("post/6") == 6
        assert kv2.get("doomed") is None

    def test_torn_multi_row_insert_recovers_consistently(self, tmp_path):
        system = PolystorePlusPlus(_config(tmp_path))
        db = system.register_engine(RelationalEngine("ordersdb"))
        db.create_table("orders", SCHEMA)
        with pytest.raises(Exception):
            # Row 3 fails validation after two rows landed in the heap; the
            # engine logs a gap whose op carries the landed rows.
            db.insert("orders", [(1, "a", 1.0), (2, "b", 2.0),
                                 ("bad", object(), None)], validate=True)
        live = _engine_fingerprint(db)
        system.close()

        reborn = PolystorePlusPlus(data_dir=str(tmp_path))
        db2 = reborn.register_engine(RelationalEngine("ordersdb"))
        assert _engine_fingerprint(db2) == live


class TestShardedDurability:
    def _deploy(self, tmp_path, num_shards=2, **overrides):
        system = PolystorePlusPlus(_config(tmp_path, **overrides))
        engine = system.register_sharded_engine("ordersdb", RelationalEngine,
                                                num_shards)
        return system, engine

    def test_sharded_roundtrip_preserves_topology_and_data(self, tmp_path):
        system, engine = self._deploy(tmp_path, num_shards=3)
        engine.load_table("orders", Table(SCHEMA, [
            (i, f"c{i % 5}", float(i)) for i in range(50)
        ]))
        engine.create_index("orders", "customer")
        expected = _engine_fingerprint(engine)
        expected_rows = sorted(engine.scan("orders").rows)
        system.close()

        # The constructor asks for 2 shards; the persisted 3-shard topology
        # must win.
        reborn = PolystorePlusPlus(data_dir=str(tmp_path))
        engine2 = reborn.register_sharded_engine("ordersdb", RelationalEngine, 2)
        assert engine2.num_shards == 3
        assert sorted(engine2.scan("orders").rows) == expected_rows
        assert _engine_fingerprint(engine2)["scoped"] == expected["scoped"]
        assert engine2.has_index("orders", "customer")

    def test_rebalance_cutover_is_durable(self, tmp_path):
        system, engine = self._deploy(tmp_path, num_shards=2)
        engine.load_table("orders", Table(SCHEMA, [
            (i, f"c{i % 5}", float(i)) for i in range(40)
        ]))
        system.rebalance_sharded_engine("ordersdb", 4)
        assert engine.num_shards == 4
        engine.insert("orders", [(1000, "cX", 3.0)])
        expected_rows = sorted(engine.scan("orders").rows)
        expected_scoped = _engine_fingerprint(engine)["scoped"]
        system.close()

        reborn = PolystorePlusPlus(data_dir=str(tmp_path))
        engine2 = reborn.register_sharded_engine("ordersdb", RelationalEngine, 2)
        assert engine2.num_shards == 4
        assert sorted(engine2.scan("orders").rows) == expected_rows
        assert _engine_fingerprint(engine2)["scoped"] == expected_scoped

    def test_mid_cutover_kill_recovers_on_old_topology(self, tmp_path):
        system, engine = self._deploy(tmp_path, num_shards=2)
        rows = [(i, f"c{i % 5}", float(i)) for i in range(40)]
        engine.load_table("orders", Table(SCHEMA, rows))
        faults.arm("rebalance.cutover")
        with pytest.raises(InjectedFault):
            system.rebalance_sharded_engine("ordersdb", 4)

        reborn = PolystorePlusPlus(data_dir=str(tmp_path))
        engine2 = reborn.register_sharded_engine("ordersdb", RelationalEngine, 2)
        # The manifest swap never happened: the old generation serves.
        assert engine2.num_shards == 2
        assert sorted(engine2.scan("orders").rows) == sorted(rows)
        # And the next rebalance works from the recovered state.
        reborn.rebalance_sharded_engine("ordersdb", 4)
        assert engine2.num_shards == 4
        assert sorted(engine2.scan("orders").rows) == sorted(rows)

    def test_kill_during_routed_write_matches_twin(self, tmp_path):
        system, engine = self._deploy(tmp_path, num_shards=2)
        twin = PolystorePlusPlus().register_sharded_engine(
            "ordersdb", RelationalEngine, 2)
        for target in (engine, twin):
            target.load_table("orders", Table(SCHEMA, [
                (i, f"c{i % 5}", float(i)) for i in range(30)
            ]))
        # Kill inside the *shard* WAL append of the doomed row's write.
        faults.arm("wal.append")
        with pytest.raises(InjectedFault):
            engine.insert("orders", [(999, "doomed", 1.0)])

        reborn = PolystorePlusPlus(data_dir=str(tmp_path))
        engine2 = reborn.register_sharded_engine("ordersdb", RelationalEngine, 2)
        assert sorted(engine2.scan("orders").rows) == sorted(
            twin.scan("orders").rows)
        assert _engine_fingerprint(engine2)["scoped"] == \
            _engine_fingerprint(twin)["scoped"]


def _spend_expr(system):
    return (system.dataset("salesdb").table("orders")
            .filter(col("amount") > 1.0)
            .aggregate(["customer"], total=("sum", "amount")))


def _recompute(system):
    program = DataflowProgram("recompute-baseline")
    program.output("res", Dataset(_spend_expr(system).node))
    result = system.execute(program, options=CompilerOptions(use_views=False))
    return sorted(tuple(sorted(r.items()))
                  for r in result.output("res").to_dicts())


def _view_rows(view):
    return sorted(tuple(sorted(r.items())) for r in view.read()[0].to_dicts())


class TestViewRecovery:
    def _populate(self, system):
        db = system.register_engine(RelationalEngine("salesdb"))
        db.create_table("orders", SCHEMA)
        db.insert("orders", [(i, f"c{i % 4}", float(i % 7)) for i in range(50)])
        return db

    def test_view_definition_survives_restart_and_refresh_matches(self, tmp_path):
        system = PolystorePlusPlus(_config(tmp_path))
        self._populate(system)
        system.create_view("spend", _spend_expr(system), policy="manual")
        system.close()

        reborn = PolystorePlusPlus(data_dir=str(tmp_path))
        db2 = reborn.register_engine(RelationalEngine("salesdb"))
        # The view re-registered (resync-from-snapshot) as soon as its
        # source engine came back.
        assert "spend" in reborn.views.names()
        view = reborn.view("spend")
        assert _view_rows(view) == _recompute(reborn)
        db2.insert("orders", [(1000, "c1", 40.0)])
        view.refresh()
        assert _view_rows(view) == _recompute(reborn)

    def test_view_refresh_equals_recompute_after_hard_kill(self, tmp_path):
        system = PolystorePlusPlus(_config(tmp_path))
        db = self._populate(system)
        system.create_view("spend", _spend_expr(system), policy="manual")
        db.insert("orders", [(2000, "c2", 30.0)])
        faults.arm("wal.append")
        with pytest.raises(InjectedFault):
            db.insert("orders", [(2001, "c3", 31.0)])

        reborn = PolystorePlusPlus(data_dir=str(tmp_path))
        db2 = reborn.register_engine(RelationalEngine("salesdb"))
        view = reborn.view("spend")
        assert _view_rows(view) == _recompute(reborn)
        db2.delete_rows("orders", col("customer") == "c2")
        view.refresh()
        assert _view_rows(view) == _recompute(reborn)

    def test_dropped_view_stays_dropped_after_restart(self, tmp_path):
        system = PolystorePlusPlus(_config(tmp_path))
        self._populate(system)
        system.create_view("spend", _spend_expr(system), policy="manual")
        system.drop_view("spend")
        system.close()

        reborn = PolystorePlusPlus(data_dir=str(tmp_path))
        reborn.register_engine(RelationalEngine("salesdb"))
        assert "spend" not in reborn.views.names()

    def test_view_waits_for_its_source_engine(self, tmp_path):
        system = PolystorePlusPlus(_config(tmp_path))
        self._populate(system)
        system.register_engine(KeyValueEngine("other"))
        system.create_view("spend", _spend_expr(system), policy="manual")
        system.close()

        reborn = PolystorePlusPlus(data_dir=str(tmp_path))
        reborn.register_engine(KeyValueEngine("other"))
        assert "spend" not in reborn.views.names()  # salesdb not back yet
        reborn.register_engine(RelationalEngine("salesdb"))
        assert "spend" in reborn.views.names()


class TestDescribe:
    def test_describe_reports_durability(self, tmp_path):
        system = PolystorePlusPlus(_config(tmp_path))
        system.register_engine(KeyValueEngine("profiles"))
        info = system.describe()["durability"]
        assert info["path"] == str(tmp_path)
        assert info["sync"] == "always"
        assert info["engines"] == ["profiles"]
        system.close()
        assert system.describe()["durability"] is None
