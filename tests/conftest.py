"""Shared fixtures for the Polystore++ test suite."""

from __future__ import annotations

import pytest

from repro.core import build_accelerated_polystore, build_cpu_polystore
from repro.datamodel import Column, DataType, Schema, Table
from repro.stores import (
    KeyValueEngine,
    MLEngine,
    RelationalEngine,
    TextEngine,
    TimeseriesEngine,
)
from repro.workloads import generate_mimic, load_mimic


@pytest.fixture
def patients_schema() -> Schema:
    """A small patients schema used across relational tests."""
    return Schema([
        Column("pid", DataType.INT),
        Column("age", DataType.INT),
        Column("name", DataType.STRING),
        Column("score", DataType.FLOAT),
    ])


@pytest.fixture
def patients_table(patients_schema: Schema) -> Table:
    """A small patients table."""
    rows = [
        (1, 72, "ada", 0.9),
        (2, 35, "grace", 0.4),
        (3, 85, "alan", 0.7),
        (4, 51, "edsger", 0.2),
        (5, 64, "barbara", 0.6),
    ]
    return Table(patients_schema, rows)


@pytest.fixture
def relational_engine(patients_table: Table) -> RelationalEngine:
    """A relational engine preloaded with the patients table."""
    engine = RelationalEngine("testdb")
    engine.load_table("patients", patients_table)
    return engine


@pytest.fixture
def mimic_engines():
    """A small MIMIC deployment: engines loaded with 60 synthetic patients."""
    dataset = generate_mimic(60, points_per_patient=8, seed=3)
    relational = RelationalEngine("clinical-db")
    timeseries = TimeseriesEngine("monitors")
    text = TextEngine("notes-db")
    ml = MLEngine("dnn-engine")
    load_mimic(dataset, relational=relational, timeseries=timeseries, text=text)
    return {
        "dataset": dataset,
        "relational": relational,
        "timeseries": timeseries,
        "text": text,
        "ml": ml,
    }


@pytest.fixture
def mimic_cpu_system(mimic_engines):
    """A CPU-only polystore over the MIMIC deployment."""
    return build_cpu_polystore([
        mimic_engines["relational"], mimic_engines["timeseries"],
        mimic_engines["text"], mimic_engines["ml"],
    ])


@pytest.fixture
def mimic_accelerated_system(mimic_engines):
    """An accelerated Polystore++ over the MIMIC deployment."""
    return build_accelerated_polystore([
        mimic_engines["relational"], mimic_engines["timeseries"],
        mimic_engines["text"], mimic_engines["ml"],
    ])
