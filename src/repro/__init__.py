"""Polystore++ reproduction: an accelerated polystore system for heterogeneous workloads.

The public API is intentionally small; most users need only:

* :class:`repro.PolystorePlusPlus` — build a deployment, register engines and
  accelerators, execute heterogeneous programs.
* :class:`repro.HeterogeneousProgram` — describe a workload spanning SQL,
  streams, graphs, text and ML.
* The engines in :mod:`repro.stores` and the simulated accelerators in
  :mod:`repro.accelerators` for lower-level use.
"""

from repro.cancellation import CancellationToken
from repro.catalog import Catalog
from repro.client import PreparedProgram, Session
from repro.cluster import (
    HashPartitioner,
    RangePartitioner,
    ShardedEngine,
    ShardRebalancer,
)
from repro.core import (
    EXECUTION_MODES,
    ExecutionResult,
    PolystorePlusPlus,
    SystemConfig,
    build_accelerated_polystore,
    build_cpu_polystore,
)
from repro.eide import (
    DataflowProgram,
    Dataset,
    HeterogeneousProgram,
    Param,
    col,
    compile_natural_language,
    dataset,
    lit,
    view_dataset,
)
from repro.views import MaintenancePolicy, MaterializedView

__version__ = "1.2.0"

__all__ = [
    "PolystorePlusPlus",
    "SystemConfig",
    "ExecutionResult",
    "EXECUTION_MODES",
    "Session",
    "PreparedProgram",
    "CancellationToken",
    "HeterogeneousProgram",
    "Param",
    "DataflowProgram",
    "Dataset",
    "dataset",
    "view_dataset",
    "MaterializedView",
    "MaintenancePolicy",
    "col",
    "lit",
    "compile_natural_language",
    "Catalog",
    "build_cpu_polystore",
    "build_accelerated_polystore",
    "ShardedEngine",
    "HashPartitioner",
    "RangePartitioner",
    "ShardRebalancer",
    "__version__",
]
