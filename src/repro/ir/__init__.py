"""Hierarchical intermediate representation for heterogeneous programs."""

from repro.ir.graph import IRGraph
from repro.ir.nodes import ACCELERABLE_KINDS, OPERATOR_KINDS, Operator
from repro.ir.validation import assert_valid, validate_graph, validate_operator

__all__ = [
    "IRGraph",
    "Operator",
    "OPERATOR_KINDS",
    "ACCELERABLE_KINDS",
    "validate_graph",
    "validate_operator",
    "assert_valid",
]
