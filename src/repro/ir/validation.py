"""IR validation: structural checks run after frontend lowering and after
each optimization pass."""

from __future__ import annotations

from repro.exceptions import IRError
from repro.ir.graph import IRGraph
from repro.ir.nodes import OPERATOR_KINDS, Operator

#: Parameters each operator kind must carry to be executable by an adapter.
_REQUIRED_PARAMS: dict[str, tuple[str, ...]] = {
    "scan": ("table",),
    "index_seek": ("table", "column", "value"),
    "join": ("left_key", "right_key"),
    "aggregate": ("aggregates",),
    "sort": ("by",),
    "limit": ("n",),
    "top_k": ("by", "k"),
    "kv_get": ("keys",),
    "ts_range": ("series",),
    "window_aggregate": ("window_s",),
    "ts_summarize": ("series_prefix",),
    "graph_match": ("start_label",),
    "shortest_path": ("start", "end"),
    "text_search": ("query",),
    "keyword_features": ("keywords",),
    "train": ("model_name",),
    "predict": ("model_name",),
    "kmeans": ("n_clusters",),
    "migrate": ("source_engine", "target_engine"),
    "python_udf": ("fn",),
    "view_read": ("view",),
}

#: How many data-flow inputs each kind expects (None = any number).
_EXPECTED_INPUTS: dict[str, int | None] = {
    "scan": 0,
    "index_seek": 0,
    "kv_get": 0,
    "ts_range": 0,
    "ts_summarize": 0,
    "graph_match": 0,
    "graph_nodes": 0,
    "shortest_path": 0,
    "text_search": 0,
    "join": 2,
    "union": None,
    "filter": 1,
    "project": 1,
    "aggregate": 1,
    "sort": 1,
    "limit": 1,
    "top_k": 1,
    "window_aggregate": None,
    "keyword_features": None,
    "matmul": 2,
    "gemv": 2,
    "train": None,
    "predict": 1,
    "kmeans": 1,
    "feature_matrix": None,
    "migrate": 1,
    "materialize": 1,
    "python_udf": None,
    "neighborhood": 0,
    "view_read": 0,
}


def validate_graph(graph: IRGraph) -> list[str]:
    """Validate an IR graph, returning a list of problems (empty when valid)."""
    problems: list[str] = []
    try:
        order = graph.topological_order()
    except IRError as exc:
        return [str(exc)]
    for node in order:
        problems.extend(validate_operator(node))
    if not graph.outputs:
        problems.append("graph has no output nodes")
    for output in graph.outputs:
        if output not in graph:
            problems.append(f"output {output!r} is not a node")
    return problems


def validate_operator(node: Operator) -> list[str]:
    """Validate one operator's kind, parameters and input arity."""
    problems: list[str] = []
    if node.kind not in OPERATOR_KINDS:
        problems.append(f"{node.op_id}: unknown kind {node.kind!r}")
        return problems
    for param in _REQUIRED_PARAMS.get(node.kind, ()):
        if param not in node.params:
            problems.append(f"{node.op_id}: {node.kind} is missing parameter {param!r}")
    expected = _EXPECTED_INPUTS.get(node.kind)
    if expected is not None and len(node.inputs) != expected:
        problems.append(
            f"{node.op_id}: {node.kind} expects {expected} inputs, has {len(node.inputs)}"
        )
    return problems


def assert_valid(graph: IRGraph) -> None:
    """Raise :class:`IRError` when the graph is invalid."""
    problems = validate_graph(graph)
    if problems:
        raise IRError("invalid IR graph:\n  " + "\n  ".join(problems))
