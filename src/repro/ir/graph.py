"""The IR graph: a DAG of operators with data-flow edges.

The graph is the unit the compiler's passes rewrite, the optimizer costs,
and the executor schedules.  Edges are implicit in each operator's
``inputs`` list; the graph maintains the reverse (consumer) index and offers
the mutation helpers passes need (insert, remove, replace) while preserving
acyclicity.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator

from repro.exceptions import IRError
from repro.ir.nodes import Operator


class IRGraph:
    """A directed acyclic graph of :class:`Operator` nodes."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._nodes: dict[str, Operator] = {}
        self._outputs: list[str] = []
        #: Per-graph operator id counter: ids are deterministic for a given
        #: construction order and never shared across graphs (no global
        #: state, so concurrent sessions cannot race on it).
        self._next_id = 0

    # -- construction -------------------------------------------------------------

    def add(self, operator: Operator) -> Operator:
        """Add a node, assigning it a graph-local id when it has none.

        The node's inputs must already be present.  Nodes arriving with an
        explicit id (copies from another graph) keep it; the counter skips
        past any numeric suffix so later additions can never collide.
        """
        if not operator.op_id:
            self._next_id += 1
            operator.op_id = f"{operator.kind}_{self._next_id}"
        else:
            suffix = operator.op_id.rsplit("_", 1)[-1]
            if suffix.isdigit():
                self._next_id = max(self._next_id, int(suffix))
        if operator.op_id in self._nodes:
            raise IRError(f"duplicate operator id {operator.op_id!r}")
        for input_id in operator.inputs:
            if input_id not in self._nodes:
                raise IRError(
                    f"operator {operator.op_id!r} references unknown input {input_id!r}"
                )
        self._nodes[operator.op_id] = operator
        return operator

    def mark_output(self, op_id: str) -> None:
        """Mark a node as a program output (kept alive by DCE)."""
        if op_id not in self._nodes:
            raise IRError(f"unknown operator {op_id!r}")
        if op_id not in self._outputs:
            self._outputs.append(op_id)

    @property
    def outputs(self) -> list[str]:
        """Ids of output nodes."""
        return list(self._outputs)

    def replace_output(self, old: str, new: str) -> None:
        """Replace an output marker (used by passes that rewrite output nodes)."""
        if new not in self._nodes:
            raise IRError(f"unknown operator {new!r}")
        self._outputs = [new if op_id == old else op_id for op_id in self._outputs]

    # -- access -------------------------------------------------------------------------

    def node(self, op_id: str) -> Operator:
        """The node with the given id."""
        try:
            return self._nodes[op_id]
        except KeyError as exc:
            raise IRError(f"unknown operator {op_id!r}") from exc

    def __contains__(self, op_id: object) -> bool:
        return op_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterator[Operator]:
        """All nodes in insertion order."""
        yield from self._nodes.values()

    def nodes_of_kind(self, kind: str) -> list[Operator]:
        """All nodes with the given kind."""
        return [node for node in self._nodes.values() if node.kind == kind]

    def consumers(self, op_id: str) -> list[Operator]:
        """Nodes that read the output of ``op_id``."""
        return [node for node in self._nodes.values() if op_id in node.inputs]

    def producers(self, op_id: str) -> list[Operator]:
        """Nodes whose output ``op_id`` reads."""
        return [self.node(input_id) for input_id in self.node(op_id).inputs]

    # -- ordering -----------------------------------------------------------------------

    def topological_order(self) -> list[Operator]:
        """Nodes in a valid execution order; raises :class:`IRError` on cycles."""
        in_degree = {op_id: len(node.inputs) for op_id, node in self._nodes.items()}
        consumers: dict[str, list[str]] = {op_id: [] for op_id in self._nodes}
        for node in self._nodes.values():
            for input_id in node.inputs:
                consumers[input_id].append(node.op_id)
        queue = deque(sorted(op_id for op_id, deg in in_degree.items() if deg == 0))
        order: list[Operator] = []
        while queue:
            current = queue.popleft()
            order.append(self._nodes[current])
            for consumer in consumers[current]:
                in_degree[consumer] -= 1
                if in_degree[consumer] == 0:
                    queue.append(consumer)
        if len(order) != len(self._nodes):
            raise IRError("IR graph contains a cycle")
        return order

    def stages(self) -> list[list[Operator]]:
        """Group nodes into parallel stages (nodes whose inputs are all in
        earlier stages), the structure the executor pipelines."""
        level: dict[str, int] = {}
        for node in self.topological_order():
            level[node.op_id] = 1 + max(
                (level[input_id] for input_id in node.inputs), default=-1
            )
        n_stages = max(level.values(), default=-1) + 1
        grouped: list[list[Operator]] = [[] for _ in range(n_stages)]
        for node in self.topological_order():
            grouped[level[node.op_id]].append(node)
        return grouped

    # -- mutation (used by optimization passes) ----------------------------------------------

    def remove(self, op_id: str) -> None:
        """Remove a node; consumers are rewired to its single input if it has one."""
        node = self.node(op_id)
        consumers = self.consumers(op_id)
        if consumers and len(node.inputs) != 1:
            raise IRError(
                f"cannot remove {op_id!r}: it has consumers and {len(node.inputs)} inputs"
            )
        replacement = node.inputs[0] if node.inputs else None
        for consumer in consumers:
            consumer.inputs = [
                replacement if input_id == op_id else input_id
                for input_id in consumer.inputs
                if not (input_id == op_id and replacement is None)
            ]
        self._outputs = [replacement if o == op_id and replacement else o
                         for o in self._outputs if not (o == op_id and replacement is None)]
        del self._nodes[op_id]

    def replace_input(self, op_id: str, old_input: str, new_input: str) -> None:
        """Rewire one input edge of a node."""
        node = self.node(op_id)
        if new_input not in self._nodes:
            raise IRError(f"unknown operator {new_input!r}")
        node.inputs = [new_input if i == old_input else i for i in node.inputs]

    def insert_between(self, producer_id: str, consumer_id: str,
                       operator: Operator) -> Operator:
        """Insert ``operator`` on the edge from ``producer_id`` to ``consumer_id``."""
        consumer = self.node(consumer_id)
        if producer_id not in consumer.inputs:
            raise IRError(f"{consumer_id!r} does not read {producer_id!r}")
        operator.inputs = [producer_id]
        self.add(operator)
        consumer.inputs = [operator.op_id if i == producer_id else i for i in consumer.inputs]
        return operator

    def prune(self, keep: Callable[[Operator], bool]) -> int:
        """Remove nodes failing ``keep`` that have no consumers; returns count removed."""
        removed = 0
        changed = True
        while changed:
            changed = False
            for node in list(self._nodes.values()):
                if keep(node) or node.op_id in self._outputs:
                    continue
                if not self.consumers(node.op_id):
                    del self._nodes[node.op_id]
                    removed += 1
                    changed = True
        return removed

    # -- rendering ----------------------------------------------------------------------------

    def render(self) -> str:
        """Multi-line text rendering in topological order."""
        lines = [f"IRGraph({self.name}, nodes={len(self)})"]
        for stage_index, stage in enumerate(self.stages()):
            lines.append(f"  stage {stage_index}:")
            for node in stage:
                marker = " *" if node.op_id in self._outputs else ""
                inputs = ", ".join(node.inputs) if node.inputs else "-"
                lines.append(f"    {node.describe()} <- [{inputs}]{marker}")
        return "\n".join(lines)

    def copy(self) -> "IRGraph":
        """A structural copy with copied nodes (safe for pass experimentation)."""
        duplicate = IRGraph(self.name)
        for node in self.topological_order():
            duplicate.add(node.copy())
        for output in self._outputs:
            duplicate.mark_output(output)
        return duplicate
