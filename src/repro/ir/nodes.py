"""Intermediate-representation nodes.

The paper's compiler chapter (§IV-B-1) calls for a *hierarchical* IR: a
control-level graph whose nodes each carry a data-flow description of one
operator.  Here every node is an :class:`Operator` — a typed, parameterized
unit of work bound (eventually) to an engine or accelerator — and the
:class:`~repro.ir.graph.IRGraph` holds the data-flow edges between them.

A deliberately generic node shape (kind + params + annotations) keeps the
optimization passes uniform: passes match on ``kind`` and rewrite ``params``
without needing one class per operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import IRError

#: Operator kinds understood by the compiler, adapters and cost models.
OPERATOR_KINDS = frozenset({
    # relational
    "scan", "index_seek", "filter", "project", "join", "aggregate", "sort",
    "limit", "top_k",
    # key/value
    "kv_get", "kv_range",
    # timeseries
    "ts_range", "window_aggregate", "ts_summarize",
    # graph
    "graph_match", "shortest_path", "neighborhood", "graph_nodes",
    # text
    "text_search", "keyword_features",
    # array / ML
    "matmul", "gemv", "train", "predict", "kmeans", "feature_matrix",
    # data movement and glue
    "migrate", "materialize", "union", "python_udf",
    # materialized-view reads (served by the view registry, not an engine)
    "view_read",
})

#: Kinds that are candidates for accelerator offload (paper §III-A).
ACCELERABLE_KINDS = frozenset({
    "sort", "filter", "project", "window_aggregate", "matmul", "gemv",
    "train", "predict", "migrate",
})

@dataclass
class Operator:
    """One IR node: a unit of work with data-flow inputs.

    Attributes:
        op_id: Unique node identifier, assigned by the owning
            :class:`~repro.ir.graph.IRGraph` on :meth:`~IRGraph.add` (each
            graph numbers its own operators, so ids are deterministic per
            graph and independent of any global state).
        kind: Operator kind, one of :data:`OPERATOR_KINDS`.
        params: Operator-specific parameters (table names, predicates,
            hyper-parameters, ...).
        inputs: ``op_id``\\ s of producer nodes whose outputs this node reads.
        engine: Name of the engine the node is bound to (``None`` until
            placement decides).
        accelerator: Name of the accelerator chosen by the offload planner
            (``None`` when the operator runs on the host engine).
        annotations: Optimizer annotations such as estimated cardinality,
            estimated bytes, selectivity and data model.
    """

    kind: str
    params: dict[str, Any] = field(default_factory=dict)
    inputs: list[str] = field(default_factory=list)
    engine: str | None = None
    accelerator: str | None = None
    annotations: dict[str, Any] = field(default_factory=dict)
    op_id: str = ""

    def __post_init__(self) -> None:
        if self.kind not in OPERATOR_KINDS:
            raise IRError(f"unknown operator kind {self.kind!r}")

    # -- annotation helpers -----------------------------------------------------------

    @property
    def estimated_rows(self) -> int:
        """Estimated output cardinality (0 when unknown)."""
        return int(self.annotations.get("estimated_rows", 0))

    @estimated_rows.setter
    def estimated_rows(self, value: int) -> None:
        self.annotations["estimated_rows"] = int(value)

    @property
    def estimated_bytes(self) -> int:
        """Estimated output size in bytes (0 when unknown)."""
        return int(self.annotations.get("estimated_bytes", 0))

    @estimated_bytes.setter
    def estimated_bytes(self, value: int) -> None:
        self.annotations["estimated_bytes"] = int(value)

    @property
    def is_accelerable(self) -> bool:
        """Whether this operator kind is an offload candidate."""
        return self.kind in ACCELERABLE_KINDS

    def describe(self) -> str:
        """One-line rendering used by plan dumps and the executor log."""
        target = self.accelerator or self.engine or "?"
        interesting = {k: v for k, v in self.params.items()
                       if isinstance(v, (str, int, float, bool))}
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(interesting.items()))
        return f"{self.op_id} [{self.kind} @ {target}] ({params})"

    def copy(self) -> "Operator":
        """A deep-enough copy for pass rewrites (new params/annotations dicts)."""
        return Operator(
            kind=self.kind,
            params=dict(self.params),
            inputs=list(self.inputs),
            engine=self.engine,
            accelerator=self.accelerator,
            annotations=dict(self.annotations),
            op_id=self.op_id,
        )
