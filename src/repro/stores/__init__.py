"""Substrate data-processing engines federated by the polystore."""

from repro.stores.array import ArrayEngine
from repro.stores.base import (
    Capability,
    Concurrency,
    DataModel,
    Engine,
    MetricsRecorder,
    OperationMetrics,
)
from repro.stores.graph import GraphEngine
from repro.stores.keyvalue import KeyValueEngine
from repro.stores.ml import MLEngine
from repro.stores.relational import RelationalEngine
from repro.stores.text import TextEngine
from repro.stores.timeseries import TimeseriesEngine

__all__ = [
    "Engine",
    "Capability",
    "Concurrency",
    "DataModel",
    "MetricsRecorder",
    "OperationMetrics",
    "RelationalEngine",
    "KeyValueEngine",
    "TimeseriesEngine",
    "GraphEngine",
    "ArrayEngine",
    "TextEngine",
    "MLEngine",
]
