"""The cross-engine changelog: typed, scoped delta batches per engine.

Every mutation of engine state is described by a :class:`DeltaBatch` — a
Z-set style set of ``(record, weight)`` entries (DBSP's generalized
multiset: weight ``+1`` inserts a record, ``-1`` deletes it, an update is a
``-1``/``+1`` pair) tagged with a *scope* naming the table, namespace or
series the mutation touched.  The batch stream is the invalidation currency
of the system:

* per-scope version counters (:meth:`~repro.stores.base.Engine.data_version_for`)
  let pinned scan snapshots revalidate only against the scopes they read,
* materialized views (:mod:`repro.views`) consume the batches to refresh in
  time proportional to the change instead of the base data.

Mutations an engine cannot (or does not) describe as entries are recorded
as *gaps*: a gap poisons every cursor that opened before it, forcing
consumers of the affected scope back to a full resync.  This keeps the log
honest — a consumer never silently misses a write.

Retention is bounded (:attr:`ChangeLog.capacity` batches); a cursor that
falls behind the retained window reads ``complete=False`` and must resync.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Sequence

#: Scope name for an engine-wide (unscoped) mutation.
UNSCOPED = None


def table_scope(table: str) -> str:
    """The changelog scope of one relational table."""
    return f"table:{table}"


def kv_scope() -> str:
    """The changelog scope of a key/value engine's single namespace."""
    return "kv"


def series_scope(key: str) -> str:
    """The changelog scope of one timeseries."""
    return f"series:{key}"


def docs_scope() -> str:
    """The changelog scope of a document (text) engine's corpus."""
    return "docs"


def leaf_read_scope(kind: str, params: dict[str, Any]) -> str | None:
    """The scope an IR leaf read depends on (``None`` = whole engine).

    This is the read-side counterpart of the write-side scope constructors
    above: a pinned ``scan`` of one table only revalidates against that
    table's counter, a ``ts_range`` of one series against that series.
    Reads whose footprint cannot be named (prefix summaries, graph
    traversals) conservatively depend on the engine-level counter.
    """
    if kind in ("scan", "index_seek"):
        table = params.get("table")
        return table_scope(str(table)) if table else None
    if kind in ("kv_get", "kv_range"):
        return kv_scope()
    if kind in ("ts_range", "window_aggregate"):
        series = params.get("series")
        return series_scope(str(series)) if series else None
    if kind in ("text_search", "keyword_features"):
        return docs_scope()
    return None


@dataclass(frozen=True)
class DeltaBatch:
    """One mutation of engine state, as a weighted (Z-set) record batch.

    ``entries`` is empty for *gap* batches — mutations the engine could not
    describe record-by-record (DDL, bulk rebuilds, engines without typed
    deltas).  Consumers positioned before a gap affecting their scope must
    resync from the base data.
    """

    seq: int
    scope: str | None
    entries: tuple[tuple[Any, int], ...] = ()
    gap: bool = False
    #: Logical operation that produced this batch — ``(name, args)`` — used
    #: by the durability subsystem to replay the mutation through the
    #: engine's own API.  ``None`` for batches no mutator claims (engines
    #: without durable replay); recovery treats those as untyped version
    #: bumps only.
    op: tuple[str, Any] | None = None

    @property
    def rows(self) -> int:
        """Total absolute multiplicity carried by this batch."""
        return sum(abs(weight) for _, weight in self.entries)


#: Listener signature: called synchronously after a batch is appended.
Listener = Callable[[DeltaBatch], None]


class ChangeLog:
    """A bounded, scoped, subscribable log of one engine's delta batches.

    Retention is capped both by batch count (``capacity``) and by total
    retained entry rows (``max_rows``) — a bulk load logging one huge batch
    must not pin a table-sized entry list in memory; it ages out (possibly
    immediately), and consumers behind the trim resync from the base.
    """

    def __init__(self, capacity: int = 4096, *,
                 max_rows: int = 262_144) -> None:
        if capacity < 1:
            raise ValueError("changelog capacity must be at least 1")
        if max_rows < 1:
            raise ValueError("changelog max_rows must be at least 1")
        self.capacity = capacity
        self.max_rows = max_rows
        self._lock = threading.RLock()
        #: Retained batches, oldest first; a deque so steady-state eviction
        #: (one batch out per batch in, on every engine write) stays O(1).
        self._batches: deque[DeltaBatch] = deque()
        self._retained_rows = 0
        self._next_seq = 1
        #: Sequence number of the oldest batch still retained, or the next
        #: seq when the log is empty.  Cursors older than this must resync.
        self._oldest_retained = 1
        self._listeners: list[Listener] = []
        #: Durability sink: called under the log lock for every appended
        #: batch, so WAL order equals sequence order (see
        #: :mod:`repro.durability.manager`).
        self._wal_sink: Listener | None = None

    # -- writing ------------------------------------------------------------------------

    def append(self, scope: str | None, entries: Sequence[tuple[Any, int]],
               *, notify: bool = True,
               op: tuple[str, Any] | None = None) -> DeltaBatch:
        """Record one typed mutation batch (and, by default, notify).

        ``notify=False`` lets a caller holding its own write lock append
        atomically with the mutation and deliver the notification after
        releasing it (see :meth:`notify_batch`).  ``op`` tags the batch with
        the mutator call that produced it, for durable replay.
        """
        return self._push(scope, tuple(entries), gap=False, notify=notify,
                          op=op)

    def mark_gap(self, scope: str | None = UNSCOPED, *, notify: bool = True,
                 op: tuple[str, Any] | None = None) -> DeltaBatch:
        """Record an undescribed mutation of ``scope`` (``None`` = everything)."""
        return self._push(scope, (), gap=True, notify=notify, op=op)

    def notify_batch(self, batch: DeltaBatch) -> None:
        """Deliver a deferred notification for an already-appended batch."""
        with self._lock:
            listeners = list(self._listeners)
        for listener in listeners:
            listener(batch)

    def _push(self, scope: str | None, entries: tuple, *, gap: bool,
              notify: bool, op: tuple[str, Any] | None = None) -> DeltaBatch:
        with self._lock:
            batch = DeltaBatch(seq=self._next_seq, scope=scope,
                               entries=entries, gap=gap, op=op)
            self._next_seq += 1
            self._batches.append(batch)
            self._retained_rows += len(entries)
            while self._batches and (len(self._batches) > self.capacity
                                     or self._retained_rows > self.max_rows):
                evicted = self._batches.popleft()
                self._retained_rows -= len(evicted.entries)
            self._oldest_retained = (self._batches[0].seq if self._batches
                                     else self._next_seq)
            if self._wal_sink is not None:
                self._wal_sink(batch)
        # Listeners run outside the log lock (and callers are expected to
        # have released their engine locks): an eager view refresh triggered
        # here may fan work out to threads that read the same engine.
        if notify:
            self.notify_batch(batch)
        return batch

    # -- reading ------------------------------------------------------------------------

    @property
    def latest_seq(self) -> int:
        """Sequence number of the newest batch (0 when nothing was logged)."""
        with self._lock:
            return self._next_seq - 1

    def read_since(self, cursor: int, scope: str | None = None
                   ) -> tuple[list[DeltaBatch], bool]:
        """Batches with ``seq > cursor`` affecting ``scope``, plus completeness.

        ``scope=None`` reads every scope.  The second element is ``False``
        when the cursor fell behind the retained window or a *gap* batch
        affecting the scope appeared after the cursor — the consumer's state
        can no longer be maintained from deltas and must be resynced.
        """
        with self._lock:
            batches, complete, _ = self._read_locked(cursor, scope)
            return batches, complete

    def pull(self, cursor: int, scope: str | None = None
             ) -> tuple[list[DeltaBatch], bool, int]:
        """:meth:`read_since` plus the head seq the read covered, atomically.

        A scope-filtered consumer must advance its cursor to the returned
        head even when no batch matched: a complete read provably missed
        nothing up to the head, and leaving the cursor behind would let
        heavy writes to *other* scopes trim the log past it — forcing full
        resyncs of a scope that received zero writes.
        """
        with self._lock:
            return self._read_locked(cursor, scope)

    def _read_locked(self, cursor: int, scope: str | None
                     ) -> tuple[list[DeltaBatch], bool, int]:
        head = self._next_seq - 1
        if cursor >= head:
            # Caught up — the common case for every staleness probe on the
            # write hot path; must not walk the retained window.
            return [], True, head
        if cursor < self._oldest_retained - 1:
            return [], False, head
        out: list[DeltaBatch] = []
        # Seqs are contiguous (appends +1, evictions only from the left),
        # so the first batch past the cursor sits at a known offset.
        start = cursor + 1 - self._oldest_retained
        for batch in itertools.islice(self._batches, start, None):
            affects = (scope is None or batch.scope is None
                       or batch.scope == scope)
            if not affects:
                continue
            if batch.gap:
                return [], False, head
            out.append(batch)
        return out, True, head

    # -- introspection ------------------------------------------------------------------

    def retention_stats(self) -> dict[str, int]:
        """Current log depth, for ``system.describe()`` and gauge scrapes.

        ``lag_window`` is how many sequence numbers a consumer may fall
        behind before it must resync — the retained batch count, which is
        also what a freshly attached replica would have to replay.
        """
        with self._lock:
            return {
                "retained_batches": len(self._batches),
                "retained_rows": self._retained_rows,
                "latest_seq": self._next_seq - 1,
                "oldest_retained_seq": self._oldest_retained,
                "lag_window": len(self._batches),
                "capacity": self.capacity,
                "max_rows": self.max_rows,
            }

    # -- durability ---------------------------------------------------------------------

    def attach_wal(self, sink: Listener) -> None:
        """Install the durability sink (at most one; called under the lock)."""
        with self._lock:
            self._wal_sink = sink

    def detach_wal(self) -> None:
        """Remove the durability sink."""
        with self._lock:
            self._wal_sink = None

    # -- subscriptions ------------------------------------------------------------------

    def subscribe(self, listener: Listener) -> None:
        """Register a synchronous per-batch listener (idempotent)."""
        with self._lock:
            if listener not in self._listeners:
                self._listeners.append(listener)

    def unsubscribe(self, listener: Listener) -> None:
        """Remove a listener registered with :meth:`subscribe`."""
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    # -- introspection ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Retention and position counters."""
        with self._lock:
            return {
                "batches": len(self._batches),
                "capacity": self.capacity,
                "retained_rows": self._retained_rows,
                "max_rows": self.max_rows,
                "latest_seq": self._next_seq - 1,
                "oldest_retained": self._oldest_retained,
                "listeners": len(self._listeners),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._batches)
