"""Common abstractions for the polystore's data-processing engines.

Every substrate engine (relational, key/value, timeseries, graph, array,
text, ML) implements :class:`Engine`.  The middleware only depends on this
interface: engine capabilities drive operator placement, and the metrics each
engine records after executing a native request feed the optimizer's cost
models (paper §III, "adapter ... collects the performance metrics after the
workload execution and sends it to the middleware's optimizer").
"""

from __future__ import annotations

import abc
import enum
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.exceptions import UnsupportedOperationError
from repro.stores.changelog import ChangeLog


class DataModel(enum.Enum):
    """Native data model exposed by an engine."""

    RELATIONAL = "relational"
    KEY_VALUE = "key_value"
    TIMESERIES = "timeseries"
    GRAPH = "graph"
    ARRAY = "array"
    DOCUMENT = "document"
    TENSOR = "tensor"


class Concurrency(enum.Enum):
    """How an engine tolerates concurrent dispatch from the executor.

    The executor's stage scheduler only runs independent operators of one
    stage in parallel when every involved engine declares
    :attr:`THREAD_SAFE`; everything else falls back to serial dispatch.
    """

    #: Requests must be serialized (the engine mutates shared state).
    SERIAL = "serial"
    #: Read-path requests may run concurrently from multiple threads.
    THREAD_SAFE = "thread_safe"


class Capability(enum.Enum):
    """Native operations an engine can execute without middleware help.

    The compiler's placement pass consults these to decide which IR operators
    can be pushed down into which engine.
    """

    SCAN = "scan"
    INDEX_SEEK = "index_seek"
    FILTER = "filter"
    PROJECT = "project"
    JOIN = "join"
    SORT = "sort"
    GROUP_BY = "group_by"
    AGGREGATE = "aggregate"
    POINT_LOOKUP = "point_lookup"
    RANGE_SCAN = "range_scan"
    WINDOW_AGGREGATE = "window_aggregate"
    DOWNSAMPLE = "downsample"
    PATTERN_MATCH = "pattern_match"
    SHORTEST_PATH = "shortest_path"
    NEIGHBORHOOD = "neighborhood"
    MATMUL = "matmul"
    SLICE = "slice"
    TEXT_SEARCH = "text_search"
    TRAIN_MODEL = "train_model"
    PREDICT = "predict"


@dataclass
class OperationMetrics:
    """Metrics recorded for one native engine operation."""

    engine: str
    operation: str
    wall_time_s: float
    rows_in: int = 0
    rows_out: int = 0
    bytes_out: int = 0
    details: dict[str, Any] = field(default_factory=dict)


class MetricsRecorder:
    """Accumulates :class:`OperationMetrics` for an engine instance."""

    def __init__(self) -> None:
        self._records: list[OperationMetrics] = []

    def record(self, metrics: OperationMetrics) -> None:
        """Store one operation's metrics."""
        self._records.append(metrics)

    def timed(self, engine: str, operation: str, **details: Any) -> "_Timer":
        """Context manager that records wall time for ``operation``."""
        return _Timer(self, engine, operation, details)

    @property
    def records(self) -> list[OperationMetrics]:
        """All recorded metrics, oldest first."""
        return list(self._records)

    def total_time(self, operation: str | None = None) -> float:
        """Total wall time across records, optionally filtered by operation."""
        return sum(
            r.wall_time_s for r in self._records
            if operation is None or r.operation == operation
        )

    def clear(self) -> None:
        """Drop all recorded metrics."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)


class _Timer:
    """Implementation detail of :meth:`MetricsRecorder.timed`."""

    def __init__(self, recorder: MetricsRecorder, engine: str, operation: str,
                 details: dict[str, Any]) -> None:
        self._recorder = recorder
        self._engine = engine
        self._operation = operation
        self.details = details
        self.rows_in = 0
        self.rows_out = 0
        self.bytes_out = 0
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        self._recorder.record(OperationMetrics(
            engine=self._engine,
            operation=self._operation,
            wall_time_s=elapsed,
            rows_in=self.rows_in,
            rows_out=self.rows_out,
            bytes_out=self.bytes_out,
            details=dict(self.details),
        ))


class Engine(abc.ABC):
    """Abstract base class for every data-processing engine in the polystore."""

    #: Native data model; subclasses override.
    data_model: DataModel = DataModel.RELATIONAL

    #: Concurrency contract; engines whose read path is safe to call from
    #: multiple threads override with :attr:`Concurrency.THREAD_SAFE`.
    concurrency: Concurrency = Concurrency.SERIAL

    def __init__(self, name: str) -> None:
        self.name = name
        self.metrics = MetricsRecorder()
        self._data_version = 0
        #: Mutations not attributed to any scope (invalidate everything).
        self._unscoped_version = 0
        #: Per-scope mutation counters (table/namespace/series granularity).
        self._scope_versions: dict[str, int] = {}
        #: Typed delta batches describing every mutation (see
        #: :mod:`repro.stores.changelog`); materialized views consume these.
        self.changelog = ChangeLog()
        #: Durability hook for mutations that bypass the changelog (index
        #: DDL): set by the durability manager, called by
        #: :meth:`emit_durability_meta`.
        self._durability_meta: Any = None

    @property
    def data_version(self) -> int:
        """Monotonic counter bumped on every mutation of engine state.

        This is the aggregated, engine-wide counter: any write anywhere in
        the engine changes it, so consumers that cannot name their read
        footprint stay correct.  Scope-aware consumers validate against
        :meth:`data_version_for` instead.
        """
        return self._data_version

    def data_version_for(self, scope: str | None) -> int:
        """Mutation counter for one scope (table/namespace/series).

        Changes when ``scope`` itself is written *or* when an unscoped
        mutation lands (an unscoped write may have touched anything).
        ``scope=None`` is the engine-wide counter.
        """
        if scope is None:
            return self._data_version
        return self._unscoped_version + self._scope_versions.get(scope, 0)

    def known_scopes(self) -> set[str]:
        """Every scope this engine has recorded a mutation for."""
        return set(self._scope_versions)

    def mark_data_changed(self, scope: str | None = None,
                          entries: Sequence[tuple[Any, int]] | None = None,
                          *, notify: bool = True,
                          op: tuple[str, Any] | None = None):
        """Record that engine state changed (called by every mutator).

        ``scope`` names the table/namespace/series the mutation touched
        (``None`` conservatively invalidates every scope).  ``entries`` is
        the mutation as Z-set ``(record, weight)`` pairs; when omitted the
        changelog records a *gap* and delta consumers of the scope resync.
        ``notify=False`` defers listener delivery to the caller (who must
        call ``changelog.notify_batch`` on the returned batch after
        releasing its locks).  ``op`` names the mutator call that produced
        the change, for durable replay.  Returns the appended
        :class:`~repro.stores.changelog.DeltaBatch`.
        """
        self._data_version += 1
        if scope is None:
            self._unscoped_version += 1
        else:
            self._scope_versions[scope] = self._scope_versions.get(scope, 0) + 1
        if entries is None:
            return self.changelog.mark_gap(scope, notify=notify, op=op)
        return self.changelog.append(scope, entries, notify=notify, op=op)

    def emit_durability_meta(self, op: tuple[str, Any]) -> None:
        """Report a mutation that bypasses the changelog (e.g. index DDL).

        A no-op unless a durability manager is attached; the WAL records it
        as a *meta* record so recovery can replay the call.
        """
        if self._durability_meta is not None:
            self._durability_meta(op)

    @abc.abstractmethod
    def capabilities(self) -> frozenset[Capability]:
        """The native operations this engine supports."""

    def supports(self, capability: Capability) -> bool:
        """Whether this engine natively supports ``capability``."""
        return capability in self.capabilities()

    def require(self, capability: Capability) -> None:
        """Raise :class:`UnsupportedOperationError` unless supported."""
        if not self.supports(capability):
            raise UnsupportedOperationError(
                f"engine {self.name!r} ({type(self).__name__}) does not support "
                f"{capability.value}"
            )

    def describe(self) -> dict[str, Any]:
        """A small metadata dictionary used by the catalog and the EIDE config."""
        return {
            "name": self.name,
            "type": type(self).__name__,
            "data_model": self.data_model.value,
            "concurrency": self.concurrency.value,
            "capabilities": sorted(c.value for c in self.capabilities()),
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def iter_batches(rows: list, batch_size: int) -> Iterator[list]:
    """Yield ``rows`` in contiguous batches of at most ``batch_size``."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    for start in range(0, len(rows), batch_size):
        yield rows[start:start + batch_size]
