"""ML/DL engine: counted tensor ops, MLP, logistic regression and k-means."""

from repro.stores.ml.engine import MLEngine
from repro.stores.ml.kmeans import KMeansResult, kmeans
from repro.stores.ml.logistic import LogisticRegression
from repro.stores.ml.nn import MLPClassifier, TrainingHistory
from repro.stores.ml.tensor_ops import OpCounter, TensorOps

__all__ = [
    "MLEngine",
    "MLPClassifier",
    "TrainingHistory",
    "LogisticRegression",
    "KMeansResult",
    "kmeans",
    "TensorOps",
    "OpCounter",
]
