"""Tensor primitives for the ML engine.

The paper notes that deep-learning workloads lower to GEMV/GEMM operations
(§III-A-1).  All linear algebra in the ML engine routes through
:class:`TensorOps` so that a single counter records the floating-point work,
which the GPU/TPU accelerator simulators translate into offloaded time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DataModelError


@dataclass
class OpCounter:
    """Floating-point operation and byte counters for one model run."""

    flops: int = 0
    bytes_moved: int = 0
    gemm_calls: int = 0
    gemv_calls: int = 0
    elementwise_calls: int = 0
    per_op: dict[str, int] = field(default_factory=dict)

    def add(self, op: str, flops: int, bytes_moved: int) -> None:
        """Record one operation."""
        self.flops += flops
        self.bytes_moved += bytes_moved
        self.per_op[op] = self.per_op.get(op, 0) + flops

    def reset(self) -> None:
        """Zero every counter."""
        self.flops = 0
        self.bytes_moved = 0
        self.gemm_calls = 0
        self.gemv_calls = 0
        self.elementwise_calls = 0
        self.per_op.clear()


class TensorOps:
    """Thin numpy wrapper that counts GEMM/GEMV/element-wise work."""

    def __init__(self) -> None:
        self.counter = OpCounter()

    # -- dense linear algebra ----------------------------------------------------

    def gemm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix-matrix product ``a @ b``."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim != 2 or b.ndim != 2:
            raise DataModelError("gemm expects 2-D operands")
        if a.shape[1] != b.shape[0]:
            raise DataModelError(f"gemm shape mismatch: {a.shape} x {b.shape}")
        result = a @ b
        flops = 2 * a.shape[0] * a.shape[1] * b.shape[1]
        self.counter.gemm_calls += 1
        self.counter.add("gemm", flops, a.nbytes + b.nbytes + result.nbytes)
        return result

    def gemv(self, a: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Matrix-vector product ``a @ x``."""
        a = np.asarray(a, dtype=np.float64)
        x = np.asarray(x, dtype=np.float64)
        if a.ndim != 2 or x.ndim != 1:
            raise DataModelError("gemv expects a matrix and a vector")
        if a.shape[1] != x.shape[0]:
            raise DataModelError(f"gemv shape mismatch: {a.shape} x {x.shape}")
        result = a @ x
        flops = 2 * a.shape[0] * a.shape[1]
        self.counter.gemv_calls += 1
        self.counter.add("gemv", flops, a.nbytes + x.nbytes + result.nbytes)
        return result

    # -- element-wise -----------------------------------------------------------------

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise (broadcasting) addition."""
        result = np.asarray(a) + np.asarray(b)
        self.counter.elementwise_calls += 1
        self.counter.add("add", int(result.size), result.nbytes)
        return result

    def relu(self, a: np.ndarray) -> np.ndarray:
        """Rectified linear unit."""
        result = np.maximum(np.asarray(a), 0.0)
        self.counter.elementwise_calls += 1
        self.counter.add("relu", int(result.size), result.nbytes)
        return result

    def relu_grad(self, a: np.ndarray) -> np.ndarray:
        """Derivative of ReLU evaluated at the pre-activation ``a``."""
        result = (np.asarray(a) > 0.0).astype(np.float64)
        self.counter.elementwise_calls += 1
        self.counter.add("relu_grad", int(result.size), result.nbytes)
        return result

    def sigmoid(self, a: np.ndarray) -> np.ndarray:
        """Numerically stable logistic sigmoid."""
        a = np.clip(np.asarray(a, dtype=np.float64), -60.0, 60.0)
        result = np.where(a >= 0, 1.0 / (1.0 + np.exp(-a)), np.exp(a) / (1.0 + np.exp(a)))
        self.counter.elementwise_calls += 1
        self.counter.add("sigmoid", 4 * int(result.size), result.nbytes)
        return result

    def softmax(self, a: np.ndarray) -> np.ndarray:
        """Row-wise softmax."""
        a = np.asarray(a, dtype=np.float64)
        shifted = a - a.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        result = exp / exp.sum(axis=-1, keepdims=True)
        self.counter.elementwise_calls += 1
        self.counter.add("softmax", 5 * int(result.size), result.nbytes)
        return result
