"""The ML/DL data-processing engine.

Trains and serves models (MLP, logistic regression, k-means) on feature
matrices, typically produced by joining data from the other stores.  Work is
counted through a shared :class:`TensorOps` instance so the middleware can
decide whether the GEMM-heavy parts should be offloaded to a GPU/TPU
simulator.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.datamodel.conversion import table_to_matrix
from repro.datamodel.table import Table
from repro.exceptions import StorageError
from repro.stores.base import Capability, DataModel, Engine
from repro.stores.ml.kmeans import KMeansResult, kmeans
from repro.stores.ml.logistic import LogisticRegression
from repro.stores.ml.nn import MLPClassifier, TrainingHistory
from repro.stores.ml.tensor_ops import TensorOps


class MLEngine(Engine):
    """Model training and inference engine built on counted tensor ops."""

    data_model = DataModel.TENSOR

    def __init__(self, name: str = "ml") -> None:
        super().__init__(name)
        self.ops = TensorOps()
        self._models: dict[str, Any] = {}

    def capabilities(self) -> frozenset[Capability]:
        return frozenset({
            Capability.TRAIN_MODEL,
            Capability.PREDICT,
            Capability.MATMUL,
        })

    # -- training -----------------------------------------------------------------

    def train_classifier(self, model_name: str, features: np.ndarray | Table,
                         labels: np.ndarray, *, hidden_dims: tuple[int, ...] = (32,),
                         epochs: int = 5, batch_size: int = 32,
                         learning_rate: float = 0.05, seed: int = 0
                         ) -> TrainingHistory:
        """Train an MLP classifier and register it under ``model_name``."""
        x = self._as_matrix(features)
        model = MLPClassifier(x.shape[1], hidden_dims, learning_rate=learning_rate,
                              seed=seed, ops=self.ops)
        with self.metrics.timed(self.name, "train_classifier", model=model_name) as timer:
            history = model.fit(x, labels, epochs=epochs, batch_size=batch_size, seed=seed)
            timer.rows_in = x.shape[0]
            timer.details["flops"] = self.ops.counter.flops
        self._models[model_name] = model
        self.mark_data_changed()
        return history

    def train_logistic(self, model_name: str, features: np.ndarray | Table,
                       labels: np.ndarray, *, epochs: int = 10, batch_size: int = 64,
                       learning_rate: float = 0.1, seed: int = 0) -> list[float]:
        """Train a logistic-regression model and register it."""
        x = self._as_matrix(features)
        model = LogisticRegression(x.shape[1], learning_rate=learning_rate, ops=self.ops)
        with self.metrics.timed(self.name, "train_logistic", model=model_name) as timer:
            losses = model.fit(x, labels, epochs=epochs, batch_size=batch_size, seed=seed)
            timer.rows_in = x.shape[0]
        self._models[model_name] = model
        self.mark_data_changed()
        return losses

    def cluster(self, features: np.ndarray | Table, n_clusters: int, *,
                max_iterations: int = 50, seed: int = 0) -> KMeansResult:
        """Run k-means over a feature matrix."""
        x = self._as_matrix(features)
        with self.metrics.timed(self.name, "kmeans", clusters=n_clusters) as timer:
            result = kmeans(x, n_clusters, max_iterations=max_iterations, seed=seed,
                            ops=self.ops)
            timer.rows_in = x.shape[0]
        return result

    # -- inference ---------------------------------------------------------------------

    def predict(self, model_name: str, features: np.ndarray | Table) -> np.ndarray:
        """Hard predictions from a registered model."""
        model = self._model(model_name)
        x = self._as_matrix(features)
        with self.metrics.timed(self.name, "predict", model=model_name) as timer:
            predictions = model.predict(x)
            timer.rows_out = len(predictions)
        return predictions

    def predict_proba(self, model_name: str, features: np.ndarray | Table) -> np.ndarray:
        """Probability predictions from a registered model."""
        model = self._model(model_name)
        x = self._as_matrix(features)
        return model.predict_proba(x)

    def evaluate(self, model_name: str, features: np.ndarray | Table,
                 labels: np.ndarray) -> dict[str, float]:
        """Accuracy / precision / recall of a registered model on a labelled set."""
        predictions = self.predict(model_name, features)
        y = np.asarray(labels).reshape(-1).astype(np.int64)
        true_positive = int(np.sum((predictions == 1) & (y == 1)))
        false_positive = int(np.sum((predictions == 1) & (y == 0)))
        false_negative = int(np.sum((predictions == 0) & (y == 1)))
        accuracy = float(np.mean(predictions == y)) if len(y) else 0.0
        precision = true_positive / (true_positive + false_positive) \
            if (true_positive + false_positive) else 0.0
        recall = true_positive / (true_positive + false_negative) \
            if (true_positive + false_negative) else 0.0
        return {"accuracy": accuracy, "precision": precision, "recall": recall}

    # -- model registry -------------------------------------------------------------------

    def has_model(self, model_name: str) -> bool:
        """Whether a model is registered."""
        return model_name in self._models

    def list_models(self) -> list[str]:
        """Names of registered models."""
        return sorted(self._models)

    def model_info(self, model_name: str) -> dict[str, Any]:
        """Metadata about a registered model."""
        model = self._model(model_name)
        info: dict[str, Any] = {"type": type(model).__name__}
        if isinstance(model, MLPClassifier):
            info["parameters"] = model.parameter_count()
            info["hidden_dims"] = list(model.hidden_dims)
        elif isinstance(model, LogisticRegression):
            info["parameters"] = int(model.weights.size + 1)
        return info

    def statistics(self) -> dict[str, Any]:
        """Engine statistics for the catalog."""
        return {
            "models": len(self._models),
            "total_flops": self.ops.counter.flops,
            "gemm_calls": self.ops.counter.gemm_calls,
        }

    # -- helpers -----------------------------------------------------------------------------

    def _model(self, model_name: str) -> Any:
        try:
            return self._models[model_name]
        except KeyError as exc:
            raise StorageError(f"model {model_name!r} is not registered") from exc

    @staticmethod
    def _as_matrix(features: np.ndarray | Table) -> np.ndarray:
        if isinstance(features, Table):
            return table_to_matrix(features)
        x = np.asarray(features, dtype=np.float64)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        return x
