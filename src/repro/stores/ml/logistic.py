"""Logistic regression trained with mini-batch SGD.

Used as the lighter-weight baseline model in the Snorkel-style labeling
workload and as a comparison point against the MLP in the examples.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataModelError
from repro.stores.ml.tensor_ops import TensorOps


class LogisticRegression:
    """Binary logistic regression on dense features."""

    def __init__(self, input_dim: int, *, learning_rate: float = 0.1,
                 l2: float = 0.0, ops: TensorOps | None = None) -> None:
        if input_dim <= 0:
            raise DataModelError("input_dim must be positive")
        self.input_dim = input_dim
        self.learning_rate = learning_rate
        self.l2 = l2
        self.ops = ops if ops is not None else TensorOps()
        self.weights = np.zeros(input_dim, dtype=np.float64)
        self.bias = 0.0

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row."""
        x = self._check_input(x)
        logits = self.ops.gemv(x, self.weights) + self.bias
        return self.ops.sigmoid(logits)

    def predict(self, x: np.ndarray, *, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions."""
        return (self.predict_proba(x) >= threshold).astype(np.int64)

    def fit(self, x: np.ndarray, y: np.ndarray, *, epochs: int = 10,
            batch_size: int = 64, seed: int = 0) -> list[float]:
        """Train with mini-batch SGD; returns the per-epoch log-loss curve."""
        x = self._check_input(x)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if len(y) != x.shape[0]:
            raise DataModelError("x and y have different numbers of rows")
        if epochs <= 0 or batch_size <= 0:
            raise DataModelError("epochs and batch_size must be positive")
        rng = np.random.default_rng(seed)
        losses = []
        n = x.shape[0]
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = order[start:start + batch_size]
                self._step(x[idx], y[idx])
            probabilities = self.predict_proba(x)
            losses.append(_log_loss(y, probabilities))
        return losses

    def _step(self, x_batch: np.ndarray, y_batch: np.ndarray) -> None:
        batch = x_batch.shape[0]
        probabilities = self.ops.sigmoid(self.ops.gemv(x_batch, self.weights) + self.bias)
        error = probabilities - y_batch
        grad_w = self.ops.gemv(x_batch.T, error) / batch + self.l2 * self.weights
        grad_b = float(error.mean())
        self.weights -= self.learning_rate * grad_w
        self.bias -= self.learning_rate * grad_b

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[1] != self.input_dim:
            raise DataModelError(
                f"model expects {self.input_dim} features, got {x.shape[1]}"
            )
        return x


def _log_loss(y: np.ndarray, p: np.ndarray) -> float:
    eps = 1e-12
    p = np.clip(p, eps, 1.0 - eps)
    return float(-np.mean(y * np.log(p) + (1.0 - y) * np.log(1.0 - p)))
