"""A small multilayer perceptron trained with mini-batch SGD.

This is the "deep neural network engine" of the paper's Figure 2 (predicting
long vs short ICU stay) and the model inside the Snorkel-style loop of
Figure 3.  All dense math goes through :class:`~repro.stores.ml.tensor_ops.TensorOps`
so offload-eligible GEMM work is counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DataModelError
from repro.stores.ml.tensor_ops import TensorOps


@dataclass
class TrainingHistory:
    """Per-epoch loss/accuracy curves produced by :meth:`MLPClassifier.fit`."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        """Loss after the last epoch."""
        return self.losses[-1] if self.losses else float("nan")

    @property
    def final_accuracy(self) -> float:
        """Training accuracy after the last epoch."""
        return self.accuracies[-1] if self.accuracies else float("nan")


class MLPClassifier:
    """A binary classifier: input -> ReLU hidden layers -> sigmoid output."""

    def __init__(self, input_dim: int, hidden_dims: tuple[int, ...] = (32,),
                 *, learning_rate: float = 0.05, seed: int = 0,
                 ops: TensorOps | None = None) -> None:
        if input_dim <= 0:
            raise DataModelError("input_dim must be positive")
        if any(h <= 0 for h in hidden_dims):
            raise DataModelError("hidden layer sizes must be positive")
        self.input_dim = input_dim
        self.hidden_dims = tuple(hidden_dims)
        self.learning_rate = learning_rate
        self.ops = ops if ops is not None else TensorOps()
        rng = np.random.default_rng(seed)
        dims = [input_dim, *hidden_dims, 1]
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(dims[:-1], dims[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    # -- inference -----------------------------------------------------------------

    def _forward(self, x: np.ndarray) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Forward pass returning pre-activations and activations per layer."""
        activations = [x]
        pre_activations = []
        current = x
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = self.ops.add(self.ops.gemm(current, w), b)
            pre_activations.append(z)
            if i < len(self.weights) - 1:
                current = self.ops.relu(z)
            else:
                current = self.ops.sigmoid(z)
            activations.append(current)
        return pre_activations, activations

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row of ``x``."""
        x = self._check_input(x)
        _, activations = self._forward(x)
        return activations[-1].reshape(-1)

    def predict(self, x: np.ndarray, *, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions."""
        return (self.predict_proba(x) >= threshold).astype(np.int64)

    # -- training ----------------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray, *, epochs: int = 5,
            batch_size: int = 32, shuffle: bool = True, seed: int = 0
            ) -> TrainingHistory:
        """Train with mini-batch SGD on binary cross-entropy loss."""
        x = self._check_input(x)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if len(y) != x.shape[0]:
            raise DataModelError("x and y have different numbers of rows")
        if epochs <= 0 or batch_size <= 0:
            raise DataModelError("epochs and batch_size must be positive")
        rng = np.random.default_rng(seed)
        history = TrainingHistory()
        n = x.shape[0]
        for _ in range(epochs):
            order = rng.permutation(n) if shuffle else np.arange(n)
            for start in range(0, n, batch_size):
                batch_idx = order[start:start + batch_size]
                self._step(x[batch_idx], y[batch_idx])
            probabilities = self.predict_proba(x)
            history.losses.append(_binary_cross_entropy(y, probabilities))
            history.accuracies.append(float(np.mean((probabilities >= 0.5) == (y >= 0.5))))
        return history

    def _step(self, x_batch: np.ndarray, y_batch: np.ndarray) -> None:
        """One SGD step on a batch."""
        batch = x_batch.shape[0]
        pre_activations, activations = self._forward(x_batch)
        output = activations[-1].reshape(-1)
        # dL/dz for sigmoid + BCE simplifies to (p - y).
        delta = ((output - y_batch) / batch).reshape(-1, 1)
        for layer in reversed(range(len(self.weights))):
            a_prev = activations[layer]
            grad_w = self.ops.gemm(a_prev.T, delta)
            grad_b = delta.sum(axis=0)
            if layer > 0:
                upstream = self.ops.gemm(delta, self.weights[layer].T)
                delta = upstream * self.ops.relu_grad(pre_activations[layer - 1])
            self.weights[layer] -= self.learning_rate * grad_w
            self.biases[layer] -= self.learning_rate * grad_b

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[1] != self.input_dim:
            raise DataModelError(
                f"model expects {self.input_dim} features, got {x.shape[1]}"
            )
        return x

    def parameter_count(self) -> int:
        """Total number of trainable parameters."""
        return int(sum(w.size for w in self.weights) + sum(b.size for b in self.biases))


def _binary_cross_entropy(y: np.ndarray, p: np.ndarray) -> float:
    eps = 1e-12
    p = np.clip(p, eps, 1.0 - eps)
    return float(-np.mean(y * np.log(p) + (1.0 - y) * np.log(1.0 - p)))
