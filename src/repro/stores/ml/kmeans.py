"""K-means clustering.

The paper's Figure 7 uses k-means as the example of an ML kernel translated
from TensorFlow to an accelerator DSL (OptiML); here it is the clustering
primitive the ML engine exposes, again routing its distance computations
through the counted tensor ops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataModelError
from repro.stores.ml.tensor_ops import TensorOps


@dataclass
class KMeansResult:
    """Output of :func:`kmeans`: centroids, assignments and inertia history."""

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    iterations: int
    inertia_history: list[float]


def kmeans(points: np.ndarray, n_clusters: int, *, max_iterations: int = 50,
           tolerance: float = 1e-6, seed: int = 0,
           ops: TensorOps | None = None) -> KMeansResult:
    """Lloyd's algorithm with k-means++-style seeding.

    Args:
        points: ``(n_samples, n_features)`` data matrix.
        n_clusters: Number of clusters; must not exceed the sample count.
        max_iterations: Upper bound on Lloyd iterations.
        tolerance: Stop when inertia improves by less than this fraction.
        seed: RNG seed for centroid initialization.
        ops: Optional shared :class:`TensorOps` counter.
    """
    data = np.asarray(points, dtype=np.float64)
    if data.ndim != 2:
        raise DataModelError("points must be a 2-D matrix")
    n_samples = data.shape[0]
    if n_clusters <= 0 or n_clusters > n_samples:
        raise DataModelError(
            f"n_clusters must be in [1, {n_samples}], got {n_clusters}"
        )
    ops = ops if ops is not None else TensorOps()
    rng = np.random.default_rng(seed)

    centroids = _init_centroids(data, n_clusters, rng)
    previous_inertia = float("inf")
    inertia_history: list[float] = []
    assignments = np.zeros(n_samples, dtype=np.int64)

    iteration = 0
    for iteration in range(1, max_iterations + 1):
        distances = _pairwise_sq_distances(data, centroids, ops)
        assignments = distances.argmin(axis=1)
        inertia = float(distances[np.arange(n_samples), assignments].sum())
        inertia_history.append(inertia)
        for cluster in range(n_clusters):
            members = data[assignments == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the farthest point from its centroid.
                farthest = distances.min(axis=1).argmax()
                centroids[cluster] = data[farthest]
        if previous_inertia - inertia <= tolerance * max(previous_inertia, 1e-12):
            break
        previous_inertia = inertia

    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        inertia=inertia_history[-1],
        iterations=iteration,
        inertia_history=inertia_history,
    )


def _init_centroids(data: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids apart."""
    n_samples = data.shape[0]
    centroids = [data[rng.integers(n_samples)]]
    for _ in range(1, k):
        distances = np.min(
            [((data - c) ** 2).sum(axis=1) for c in centroids], axis=0
        )
        total = distances.sum()
        if total <= 0:
            centroids.append(data[rng.integers(n_samples)])
            continue
        probabilities = distances / total
        centroids.append(data[rng.choice(n_samples, p=probabilities)])
    return np.array(centroids, dtype=np.float64)


def _pairwise_sq_distances(data: np.ndarray, centroids: np.ndarray,
                           ops: TensorOps) -> np.ndarray:
    """Squared Euclidean distances, expanded so the GEMM term is counted."""
    cross = ops.gemm(data, centroids.T)
    data_sq = (data ** 2).sum(axis=1, keepdims=True)
    centroid_sq = (centroids ** 2).sum(axis=1)
    distances = data_sq - 2.0 * cross + centroid_sq
    return np.maximum(distances, 0.0)
