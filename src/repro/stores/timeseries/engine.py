"""The timeseries/stream data-processing engine.

Stores named series of ``(timestamp, value)`` points (ICU vital signs and
clickstreams in the paper's examples) and provides the streaming operators
Polystore++ cares about: range scans, tumbling-window aggregation,
downsampling and per-patient feature extraction.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.exceptions import StorageError
from repro.stores.base import Capability, Concurrency, DataModel, Engine
from repro.stores.changelog import series_scope
from repro.stores.timeseries.series import Point, Series
from repro.stores.timeseries.window import (
    WindowResult,
    downsample,
    moving_average,
    tumbling_window,
)


class TimeseriesEngine(Engine):
    """A timeseries store keyed by series name with tag support."""

    data_model = DataModel.TIMESERIES
    concurrency = Concurrency.THREAD_SAFE

    def __init__(self, name: str = "timeseries") -> None:
        super().__init__(name)
        self._series: dict[str, Series] = {}

    def capabilities(self) -> frozenset[Capability]:
        return frozenset({
            Capability.SCAN,
            Capability.RANGE_SCAN,
            Capability.WINDOW_AGGREGATE,
            Capability.DOWNSAMPLE,
            Capability.FILTER,
        })

    # -- writes ---------------------------------------------------------------------

    def create_series(self, key: str, tags: dict[str, str] | None = None) -> Series:
        """Create (or return an existing) series."""
        if key not in self._series:
            self._series[key] = Series(key, tags)
            # Creation carries no points: an empty (non-gap) batch still
            # bumps the series scope and the engine-wide counter.
            self.mark_data_changed(
                series_scope(key), entries=(),
                op=("create_series", {"key": key, "tags": dict(tags or {})}))
        return self._series[key]

    def append(self, key: str, timestamp: float, value: float) -> None:
        """Append one point to a series, creating it if needed."""
        self.create_series(key).append(timestamp, value)
        self.mark_data_changed(series_scope(key),
                               entries=[((timestamp, value), 1)],
                               op=("append", {"key": key}))

    def append_many(self, key: str, points: Iterable[tuple[float, float]]) -> int:
        """Append many points to one series; returns the count appended."""
        series = self.create_series(key)
        appended: list[tuple[tuple[float, float], int]] = []
        with self.metrics.timed(self.name, "append_many", series=key) as timer:
            for timestamp, value in points:
                series.append(timestamp, value)
                appended.append(((timestamp, value), 1))
            timer.rows_in = len(appended)
        if appended:
            self.mark_data_changed(series_scope(key), entries=appended,
                                   op=("append_many", {"key": key}))
        return len(appended)

    # -- reads --------------------------------------------------------------------------

    def series(self, key: str) -> Series:
        """The series named ``key``."""
        try:
            return self._series[key]
        except KeyError as exc:
            raise StorageError(f"series {key!r} does not exist") from exc

    def has_series(self, key: str) -> bool:
        """Whether a series exists."""
        return key in self._series

    def list_series(self, tag_filter: dict[str, str] | None = None) -> list[str]:
        """Names of all series, optionally filtered by exact tag matches."""
        if not tag_filter:
            return sorted(self._series)
        return sorted(
            key for key, series in self._series.items()
            if all(series.tags.get(k) == v for k, v in tag_filter.items())
        )

    def query_range(self, key: str, start: float | None = None,
                    end: float | None = None) -> list[Point]:
        """Points of a series within ``[start, end)``."""
        series = self.series(key)
        with self.metrics.timed(self.name, "range_scan", series=key) as timer:
            points = list(series.between(start, end))
            timer.rows_out = len(points)
        return points

    def stream(self, key: str, start: float | None = None,
               end: float | None = None, *, batch_size: int = 256
               ) -> Iterator[list[Point]]:
        """Yield a series range in batches, as a streaming scan would."""
        batch: list[Point] = []
        for point in self.series(key).between(start, end):
            batch.append(point)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def latest(self, key: str) -> Point:
        """Most recent point of a series."""
        return self.series(key).latest()

    # -- aggregation -----------------------------------------------------------------------

    def window_aggregate(self, key: str, window_s: float, aggregation: str = "mean",
                         start: float | None = None, end: float | None = None
                         ) -> list[WindowResult]:
        """Tumbling-window aggregation of one series."""
        with self.metrics.timed(self.name, "window_aggregate", series=key,
                                window_s=window_s, aggregation=aggregation) as timer:
            points = self.series(key).between(start, end)
            result = tumbling_window(points, window_s, aggregation)
            timer.rows_out = len(result)
        return result

    def downsample(self, key: str, factor: int) -> list[Point]:
        """Decimate a series by ``factor``."""
        return downsample(self.series(key), factor)

    def moving_average(self, key: str, window: int) -> list[Point]:
        """Moving average over a series."""
        return moving_average(list(self.series(key)), window)

    def summarize(self, key: str, start: float | None = None,
                  end: float | None = None) -> dict[str, float]:
        """Summary statistics (count/mean/min/max/last) for a series range.

        This is the per-patient vital-sign feature extraction used when the
        MIMIC workload builds its feature vector.
        """
        with self.metrics.timed(self.name, "summarize", series=key) as timer:
            points = list(self.series(key).between(start, end))
            timer.rows_out = len(points)
        if not points:
            return {"count": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0, "last": 0.0}
        values = [p.value for p in points]
        return {
            "count": float(len(values)),
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
            "last": values[-1],
        }

    def statistics(self) -> dict[str, Any]:
        """Engine statistics for the catalog."""
        return {
            "series": len(self._series),
            "points": sum(len(s) for s in self._series.values()),
        }
