"""Storage structures for the timeseries engine."""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import StorageError


@dataclass(frozen=True)
class Point:
    """One observation: a timestamp and a value, with optional tags."""

    timestamp: float
    value: float


class Series:
    """An append-mostly, time-ordered sequence of points.

    Out-of-order appends are accepted and inserted at the right position
    (bedside monitors occasionally deliver late samples); lookups and range
    scans rely on the maintained ordering.
    """

    def __init__(self, key: str, tags: dict[str, str] | None = None) -> None:
        self.key = key
        self.tags = dict(tags or {})
        self._timestamps: list[float] = []
        self._values: list[float] = []

    def append(self, timestamp: float, value: float) -> None:
        """Add one point, keeping the series sorted by time."""
        timestamp = float(timestamp)
        value = float(value)
        if not self._timestamps or timestamp >= self._timestamps[-1]:
            self._timestamps.append(timestamp)
            self._values.append(value)
            return
        pos = bisect.bisect_right(self._timestamps, timestamp)
        self._timestamps.insert(pos, timestamp)
        self._values.insert(pos, value)

    def extend(self, points: list[tuple[float, float]]) -> None:
        """Add many ``(timestamp, value)`` points."""
        for timestamp, value in points:
            self.append(timestamp, value)

    def between(self, start: float | None = None, end: float | None = None
                ) -> Iterator[Point]:
        """Points with ``start <= timestamp < end`` (open ends allowed)."""
        lo = 0 if start is None else bisect.bisect_left(self._timestamps, start)
        hi = len(self._timestamps) if end is None else bisect.bisect_left(self._timestamps, end)
        for i in range(lo, hi):
            yield Point(self._timestamps[i], self._values[i])

    def latest(self) -> Point:
        """The most recent point."""
        if not self._timestamps:
            raise StorageError(f"series {self.key!r} is empty")
        return Point(self._timestamps[-1], self._values[-1])

    def values(self) -> list[float]:
        """All values in time order."""
        return list(self._values)

    def timestamps(self) -> list[float]:
        """All timestamps in order."""
        return list(self._timestamps)

    @property
    def start(self) -> float | None:
        """Earliest timestamp, or ``None`` when empty."""
        return self._timestamps[0] if self._timestamps else None

    @property
    def end(self) -> float | None:
        """Latest timestamp, or ``None`` when empty."""
        return self._timestamps[-1] if self._timestamps else None

    def __len__(self) -> int:
        return len(self._timestamps)

    def __iter__(self) -> Iterator[Point]:
        for timestamp, value in zip(self._timestamps, self._values):
            yield Point(timestamp, value)
