"""Timeseries/stream store with window aggregation and streaming scans."""

from repro.stores.timeseries.engine import TimeseriesEngine
from repro.stores.timeseries.series import Point, Series
from repro.stores.timeseries.window import (
    WindowResult,
    downsample,
    moving_average,
    supported_aggregations,
    tumbling_window,
)

__all__ = [
    "TimeseriesEngine",
    "Point",
    "Series",
    "WindowResult",
    "tumbling_window",
    "downsample",
    "moving_average",
    "supported_aggregations",
]
