"""Window aggregation for the timeseries engine.

Tumbling-window aggregation is the streaming-operator shape the paper's
Polystore++ offloads to bump-in-the-wire accelerators (Saber-style stream
processing); the same function is reused by the accelerator kernel registry
to cost that offload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.exceptions import QueryError
from repro.stores.timeseries.series import Point

_AGGREGATORS: dict[str, Callable[[Sequence[float]], float]] = {
    "mean": lambda xs: sum(xs) / len(xs),
    "sum": sum,
    "min": min,
    "max": max,
    "count": lambda xs: float(len(xs)),
    "last": lambda xs: xs[-1],
    "first": lambda xs: xs[0],
    "stddev": lambda xs: math.sqrt(
        sum((x - sum(xs) / len(xs)) ** 2 for x in xs) / len(xs)
    ),
}


@dataclass(frozen=True)
class WindowResult:
    """One aggregated window: its start time and the aggregate value."""

    window_start: float
    value: float
    count: int


def supported_aggregations() -> tuple[str, ...]:
    """Names of supported window aggregation functions."""
    return tuple(sorted(_AGGREGATORS))


def tumbling_window(points: Iterable[Point], window_s: float,
                    aggregation: str = "mean") -> list[WindowResult]:
    """Aggregate points into fixed, non-overlapping windows of ``window_s`` seconds.

    Windows are aligned to multiples of ``window_s``; empty windows are not
    emitted.
    """
    if window_s <= 0:
        raise QueryError("window size must be positive")
    if aggregation not in _AGGREGATORS:
        raise QueryError(
            f"unknown aggregation {aggregation!r}; supported: {supported_aggregations()}"
        )
    buckets: dict[float, list[float]] = {}
    for point in points:
        start = math.floor(point.timestamp / window_s) * window_s
        buckets.setdefault(start, []).append(point.value)
    fn = _AGGREGATORS[aggregation]
    return [
        WindowResult(window_start=start, value=float(fn(values)), count=len(values))
        for start, values in sorted(buckets.items())
    ]


def downsample(points: Iterable[Point], factor: int) -> list[Point]:
    """Keep every ``factor``-th point (simple decimation)."""
    if factor <= 0:
        raise QueryError("downsample factor must be positive")
    return [point for i, point in enumerate(points) if i % factor == 0]


def moving_average(points: Sequence[Point], window: int) -> list[Point]:
    """Simple moving average over the previous ``window`` points."""
    if window <= 0:
        raise QueryError("moving-average window must be positive")
    out: list[Point] = []
    running: list[float] = []
    for point in points:
        running.append(point.value)
        if len(running) > window:
            running.pop(0)
        out.append(Point(point.timestamp, sum(running) / len(running)))
    return out
