"""Inverted index with TF-IDF ranking for the text store."""

from __future__ import annotations

import math
from collections import Counter

from repro.stores.text.tokenizer import tokenize


class InvertedIndex:
    """Maps each term to the documents containing it, with term frequencies."""

    def __init__(self) -> None:
        self._postings: dict[str, dict[str, int]] = {}
        self._doc_lengths: dict[str, int] = {}

    def add(self, doc_id: str, text: str) -> None:
        """Index one document (re-adding replaces its previous postings)."""
        if doc_id in self._doc_lengths:
            self.remove(doc_id)
        counts = Counter(tokenize(text))
        for term, count in counts.items():
            self._postings.setdefault(term, {})[doc_id] = count
        self._doc_lengths[doc_id] = sum(counts.values())

    def remove(self, doc_id: str) -> None:
        """Remove a document from the index."""
        for postings in self._postings.values():
            postings.pop(doc_id, None)
        self._doc_lengths.pop(doc_id, None)

    def documents_with(self, term: str) -> set[str]:
        """Documents containing ``term``."""
        return set(self._postings.get(term.lower(), {}))

    def term_frequency(self, term: str, doc_id: str) -> int:
        """Occurrences of ``term`` in ``doc_id``."""
        return self._postings.get(term.lower(), {}).get(doc_id, 0)

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term.lower(), {}))

    @property
    def num_documents(self) -> int:
        """Number of indexed documents."""
        return len(self._doc_lengths)

    @property
    def num_terms(self) -> int:
        """Number of distinct terms."""
        return len(self._postings)

    def boolean_search(self, terms: list[str], *, mode: str = "and") -> set[str]:
        """Documents containing all (``and``) or any (``or``) of ``terms``."""
        if not terms:
            return set()
        sets = [self.documents_with(term) for term in terms]
        if mode == "and":
            result = sets[0]
            for s in sets[1:]:
                result &= s
            return result
        if mode == "or":
            result = set()
            for s in sets:
                result |= s
            return result
        raise ValueError(f"unknown boolean mode {mode!r}")

    def tfidf_search(self, query: str, *, top_k: int = 10) -> list[tuple[str, float]]:
        """Documents ranked by TF-IDF similarity to ``query``."""
        query_terms = tokenize(query)
        if not query_terms or not self._doc_lengths:
            return []
        n_docs = self.num_documents
        scores: dict[str, float] = {}
        for term in query_terms:
            postings = self._postings.get(term)
            if not postings:
                continue
            idf = math.log((1 + n_docs) / (1 + len(postings))) + 1.0
            for doc_id, tf in postings.items():
                length = max(1, self._doc_lengths[doc_id])
                scores[doc_id] = scores.get(doc_id, 0.0) + (tf / length) * idf
        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
        return ranked[:top_k]
