"""The text/document data-processing engine.

Stores free-text documents (clinical notes in the MIMIC workload) with
metadata, indexes them in an inverted index, and answers boolean and ranked
searches.  It also extracts simple keyword features, which the heterogeneous
MIMIC program joins into its per-patient feature vector.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import StorageError
from repro.stores.base import Capability, Concurrency, DataModel, Engine
from repro.stores.changelog import docs_scope
from repro.stores.text.inverted_index import InvertedIndex
from repro.stores.text.tokenizer import term_frequencies, tokenize


class TextEngine(Engine):
    """A document store with an inverted index and TF-IDF search."""

    data_model = DataModel.DOCUMENT
    concurrency = Concurrency.THREAD_SAFE

    def __init__(self, name: str = "text") -> None:
        super().__init__(name)
        self._documents: dict[str, dict[str, Any]] = {}
        self._index = InvertedIndex()

    def capabilities(self) -> frozenset[Capability]:
        return frozenset({
            Capability.TEXT_SEARCH,
            Capability.SCAN,
            Capability.FILTER,
        })

    # -- writes -----------------------------------------------------------------

    def add_document(self, doc_id: str, text: str,
                     metadata: dict[str, Any] | None = None) -> None:
        """Add or replace a document."""
        previous = self._documents.get(doc_id)
        self._documents[doc_id] = {"text": text, "metadata": dict(metadata or {})}
        self._index.add(doc_id, text)
        entries: list[tuple[Any, int]] = []
        if previous is not None:
            entries.append(((doc_id, previous["text"]), -1))
        entries.append(((doc_id, text), 1))
        self.mark_data_changed(
            docs_scope(), entries=entries,
            op=("add_document", {"doc_id": doc_id, "text": text,
                                 "metadata": dict(metadata or {})}))

    def add_documents(self, documents: list[dict[str, Any]]) -> int:
        """Bulk-add documents of the form ``{"doc_id", "text", "metadata"?}``."""
        with self.metrics.timed(self.name, "add_documents") as timer:
            for doc in documents:
                self.add_document(str(doc["doc_id"]), str(doc.get("text", "")),
                                  doc.get("metadata"))
            timer.rows_in = len(documents)
        return len(documents)

    def remove_document(self, doc_id: str) -> None:
        """Remove a document."""
        if doc_id not in self._documents:
            raise StorageError(f"document {doc_id!r} does not exist")
        removed = self._documents.pop(doc_id)
        self._index.remove(doc_id)
        self.mark_data_changed(docs_scope(),
                               entries=[((doc_id, removed["text"]), -1)],
                               op=("remove_document", {"doc_id": doc_id}))

    # -- reads --------------------------------------------------------------------

    def get(self, doc_id: str) -> dict[str, Any]:
        """Text and metadata for one document."""
        try:
            return dict(self._documents[doc_id])
        except KeyError as exc:
            raise StorageError(f"document {doc_id!r} does not exist") from exc

    def has_document(self, doc_id: str) -> bool:
        """Whether a document exists."""
        return doc_id in self._documents

    def search(self, query: str, *, top_k: int = 10) -> list[tuple[str, float]]:
        """TF-IDF ranked search over all documents."""
        with self.metrics.timed(self.name, "tfidf_search", query=query) as timer:
            results = self._index.tfidf_search(query, top_k=top_k)
            timer.rows_out = len(results)
        return results

    def boolean_search(self, terms: list[str], *, mode: str = "and") -> set[str]:
        """Boolean AND/OR search over all documents."""
        with self.metrics.timed(self.name, "boolean_search") as timer:
            results = self._index.boolean_search(terms, mode=mode)
            timer.rows_out = len(results)
        return results

    def keyword_features(self, doc_id: str, keywords: list[str]) -> dict[str, float]:
        """Per-keyword term frequencies for one document.

        The MIMIC workload uses this to turn a clinical note into numeric
        features (e.g. counts of "sepsis", "ventilator", "stable").
        """
        with self.metrics.timed(self.name, "keyword_features", doc=doc_id):
            counts = term_frequencies(self.get(doc_id)["text"])
        return {keyword: float(counts.get(keyword.lower(), 0)) for keyword in keywords}

    def documents_matching(self, metadata_filter: dict[str, Any]) -> list[str]:
        """Doc ids whose metadata matches every ``key == value`` pair."""
        return sorted(
            doc_id for doc_id, doc in self._documents.items()
            if all(doc["metadata"].get(k) == v for k, v in metadata_filter.items())
        )

    def vocabulary_size(self) -> int:
        """Number of distinct indexed terms."""
        return self._index.num_terms

    def statistics(self) -> dict[str, Any]:
        """Engine statistics for the catalog."""
        total_tokens = sum(len(tokenize(d["text"])) for d in self._documents.values())
        return {
            "documents": len(self._documents),
            "terms": self._index.num_terms,
            "tokens": total_tokens,
        }

    def __len__(self) -> int:
        return len(self._documents)
