"""Text store: documents, inverted index and TF-IDF search."""

from repro.stores.text.engine import TextEngine
from repro.stores.text.inverted_index import InvertedIndex
from repro.stores.text.tokenizer import ngrams, term_frequencies, tokenize

__all__ = ["TextEngine", "InvertedIndex", "tokenize", "term_frequencies", "ngrams"]
