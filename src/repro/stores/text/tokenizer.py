"""Tokenization for the text store.

Clinical notes (the paper's MIMIC example) are free text; the tokenizer
lower-cases, strips punctuation, drops stopwords and optionally emits
n-grams so the inverted index can answer phrase-ish queries.
"""

from __future__ import annotations

import re
from collections import Counter

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: A minimal English stopword list; enough to keep the index compact without
#: a external dependency.
STOPWORDS = frozenset({
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has",
    "he", "in", "is", "it", "its", "of", "on", "or", "she", "that", "the",
    "to", "was", "were", "will", "with", "this", "they", "their", "not",
    "but", "had", "have", "his", "her",
})


def tokenize(text: str, *, remove_stopwords: bool = True) -> list[str]:
    """Split text into normalized tokens."""
    tokens = _TOKEN_RE.findall(text.lower())
    if remove_stopwords:
        tokens = [t for t in tokens if t not in STOPWORDS]
    return tokens


def term_frequencies(text: str, *, remove_stopwords: bool = True) -> Counter:
    """Token counts for one document."""
    return Counter(tokenize(text, remove_stopwords=remove_stopwords))


def ngrams(tokens: list[str], n: int) -> list[str]:
    """Adjacent ``n``-token shingles joined by underscores."""
    if n <= 0:
        raise ValueError("n must be positive")
    if n == 1:
        return list(tokens)
    return ["_".join(tokens[i:i + n]) for i in range(len(tokens) - n + 1)]
