"""The relational data-processing engine.

A from-scratch, single-node relational store: tables live in heap pages
(:mod:`repro.stores.relational.storage`), optional secondary indexes provide
point/range access paths, a small SQL dialect is parsed and planned, and
volcano-style operators execute the plan.  The engine records per-operation
metrics that the Polystore++ middleware's optimizer consumes.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping, Sequence

from repro.datamodel.schema import Schema
from repro.datamodel.table import Table
from repro.exceptions import QueryError, StorageError
from repro.stores.base import Capability, Concurrency, DataModel, Engine
from repro.stores.changelog import table_scope
from repro.stores.relational.expressions import Expression
from repro.stores.relational.index import HashIndex, SortedIndex
from repro.stores.relational.operators import (
    AggregateSpec,
    Filter,
    GroupByAggregate,
    HashJoin,
    Limit,
    PhysicalOperator,
    Project,
    Sort,
    SortMergeJoin,
    TableScan,
    TopK,
)
from repro.stores.relational.planner import (
    AggregatePlan,
    FilterPlan,
    IndexSeekPlan,
    JoinPlan,
    LimitPlan,
    LogicalPlan,
    ProjectPlan,
    ScanPlan,
    SortPlan,
    build_plan,
)
from repro.stores.relational.sql import parse_select
from repro.stores.relational.storage import HeapStorage


class StoredTable:
    """A table registered in the engine: heap storage plus its indexes."""

    def __init__(self, name: str, schema: Schema, page_capacity: int = 256) -> None:
        self.name = name
        self.schema = schema
        self.heap = HeapStorage(schema, page_capacity)
        self.hash_indexes: dict[str, HashIndex] = {}
        self.sorted_indexes: dict[str, SortedIndex] = {}

    def insert(self, row: Sequence[Any], *, validate: bool = False) -> None:
        """Insert one positional row, maintaining all indexes."""
        rid = self.heap.insert(row, validate=validate)
        row_t = tuple(row)
        for column, index in self.hash_indexes.items():
            index.insert(row_t[self.schema.index_of(column)], rid)
        for column, index in self.sorted_indexes.items():
            index.insert(row_t[self.schema.index_of(column)], rid)

    def statistics(self) -> dict[str, Any]:
        """Table statistics for the catalog and cost models."""
        stats = self.heap.statistics()
        stats["hash_indexes"] = sorted(self.hash_indexes)
        stats["sorted_indexes"] = sorted(self.sorted_indexes)
        return stats


class RelationalEngine(Engine):
    """A single-node relational engine with SQL, indexes and join algorithms."""

    data_model = DataModel.RELATIONAL
    concurrency = Concurrency.THREAD_SAFE

    def __init__(self, name: str = "relational") -> None:
        super().__init__(name)
        self._tables: dict[str, StoredTable] = {}
        #: Serializes mutations against each other and against
        #: :meth:`snapshot_scan`; plain reads stay lock-free.
        self._write_lock = threading.RLock()

    def capabilities(self) -> frozenset[Capability]:
        return frozenset({
            Capability.SCAN,
            Capability.INDEX_SEEK,
            Capability.FILTER,
            Capability.PROJECT,
            Capability.JOIN,
            Capability.SORT,
            Capability.GROUP_BY,
            Capability.AGGREGATE,
        })

    # -- DDL ---------------------------------------------------------------------

    def create_table(self, name: str, schema: Schema, *, page_capacity: int = 256) -> None:
        """Create an empty table."""
        with self._write_lock:
            if name in self._tables:
                raise StorageError(f"table {name!r} already exists")
            self._tables[name] = StoredTable(name, schema, page_capacity)
            batch = self.mark_data_changed(
                table_scope(name), entries=(), notify=False,
                op=("create_table", {"table": name, "schema": schema,
                                     "page_capacity": page_capacity}))
        # Listeners run outside the write lock (an eager view refresh may
        # take its own lock and read back through snapshot_scan).
        self.changelog.notify_batch(batch)

    def drop_table(self, name: str) -> None:
        """Drop a table and its indexes."""
        with self._write_lock:
            if name not in self._tables:
                raise StorageError(f"table {name!r} does not exist")
            del self._tables[name]
            # A drop cannot be described row-by-row: log a gap so delta
            # consumers of the table resync instead of silently diverging.
            batch = self.mark_data_changed(table_scope(name), notify=False,
                                           op=("drop_table", {"table": name}))
        self.changelog.notify_batch(batch)

    def create_index(self, table: str, column: str, *, kind: str = "hash") -> None:
        """Create a secondary index on an existing table column."""
        stored = self._stored(table)
        if column not in stored.schema:
            raise StorageError(f"table {table!r} has no column {column!r}")
        column_pos = stored.schema.index_of(column)
        entries = [(row[column_pos], rid) for rid, row in stored.heap.scan_with_rids()]
        if kind == "hash":
            index = HashIndex(column)
            index.bulk_load(entries)
            stored.hash_indexes[column] = index
        elif kind == "sorted":
            sorted_index = SortedIndex(column)
            sorted_index.bulk_load(entries)
            stored.sorted_indexes[column] = sorted_index
        else:
            raise StorageError(f"unknown index kind {kind!r}")
        # Index DDL changes no data version, so it never reaches the
        # changelog — report it on the durability side channel instead.
        self.emit_durability_meta(("create_index", {"table": table,
                                                    "column": column,
                                                    "kind": kind}))

    def list_tables(self) -> list[str]:
        """Names of all registered tables."""
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        """Whether ``name`` is a registered table."""
        return name in self._tables

    def table_schema(self, name: str) -> Schema:
        """Schema of a registered table."""
        return self._stored(name).schema

    def table_statistics(self, name: str) -> dict[str, Any]:
        """Statistics of a registered table."""
        return self._stored(name).statistics()

    # -- DML ---------------------------------------------------------------------

    def insert(self, table: str, rows: Iterable[Sequence[Any]], *,
               validate: bool = False) -> int:
        """Insert positional rows into a table; returns the count inserted."""
        batch = None
        try:
            with self._write_lock:
                stored = self._stored(table)
                inserted: list[tuple] = []
                try:
                    with self.metrics.timed(self.name, "insert",
                                            table=table) as timer:
                        for row in rows:
                            stored.insert(row, validate=validate)
                            inserted.append(tuple(row))
                        timer.rows_in = len(inserted)
                except BaseException:
                    if inserted:
                        # Rows landed in the heap before the failure: the
                        # mutation must not go unrecorded (pinned snapshots
                        # would replay pre-insert data, views would diverge
                        # undetectably).  A gap makes consumers resync.  The
                        # op carries the landed rows so durable replay can
                        # reproduce the exact torn heap state.
                        batch = self.mark_data_changed(
                            table_scope(table), notify=False,
                            op=("insert_torn", {"table": table,
                                                "rows": list(inserted)}))
                    raise
                if inserted:
                    batch = self.mark_data_changed(
                        table_scope(table),
                        entries=[(row, 1) for row in inserted], notify=False,
                        op=("insert", {"table": table}))
        finally:
            if batch is not None:
                self.changelog.notify_batch(batch)
        return len(inserted)

    def delete_rows(self, table: str, predicate: Expression) -> list[tuple]:
        """Delete every row satisfying ``predicate``; returns the deleted rows.

        The heap and all indexes are rebuilt from the surviving rows; the
        deletions land in the changelog as weight ``-1`` entries.
        """
        batch = None
        with self._write_lock:
            deleted, _ = self._rewrite_rows(table, predicate, None)
            if deleted:
                batch = self.mark_data_changed(
                    table_scope(table),
                    entries=[(row, -1) for row in deleted], notify=False,
                    op=("delete", {"table": table}))
        if batch is not None:
            self.changelog.notify_batch(batch)
        return deleted

    def update_rows(self, table: str, predicate: Expression,
                    updates: Mapping[str, Any]) -> list[tuple[tuple, tuple]]:
        """Set columns on every row satisfying ``predicate``.

        Returns ``(old_row, new_row)`` pairs; each update is logged as a
        ``-1``/``+1`` entry pair (the Z-set form of an upsert).
        """
        batch = None
        with self._write_lock:
            stored = self._stored(table)
            for column in updates:
                if column not in stored.schema:
                    raise StorageError(f"table {table!r} has no column {column!r}")
            _, updated = self._rewrite_rows(table, predicate, dict(updates))
            if updated:
                entries: list[tuple[tuple, int]] = []
                for old, new in updated:
                    entries.append((old, -1))
                    entries.append((new, 1))
                batch = self.mark_data_changed(table_scope(table),
                                               entries=entries, notify=False,
                                               op=("update", {"table": table}))
        if batch is not None:
            self.changelog.notify_batch(batch)
        return updated

    def snapshot_scan(self, table: str, columns: Sequence[str] | None = None
                      ) -> tuple[Table, int, int]:
        """An atomic ``(scan, changelog head, scoped version)`` triple.

        Taken under the write lock, so every row in the snapshot is covered
        by a batch at or before the returned head — the consistency anchor
        materialized-view resyncs need (a plain scan racing a writer could
        contain a row whose batch lands after the scan, which a delta
        consumer would then double-apply).
        """
        with self._write_lock:
            return (self.scan(table, columns), self.changelog.latest_seq,
                    self.data_version_for(table_scope(table)))

    def _rewrite_rows(self, table: str, predicate: Expression,
                      updates: dict[str, Any] | None
                      ) -> tuple[list[tuple], list[tuple[tuple, tuple]]]:
        """Rebuild a table's heap applying a delete or update in one pass."""
        stored = self._stored(table)
        names = stored.schema.names
        kept: list[tuple] = []
        deleted: list[tuple] = []
        updated: list[tuple[tuple, tuple]] = []
        operation = "update" if updates is not None else "delete"
        with self.metrics.timed(self.name, operation, table=table) as timer:
            for row in stored.heap.scan():
                row_t = tuple(row)
                if not predicate.evaluate(dict(zip(names, row_t))):
                    kept.append(row_t)
                    continue
                if updates is None:
                    deleted.append(row_t)
                else:
                    new_row = tuple(updates.get(name, value)
                                    for name, value in zip(names, row_t))
                    updated.append((row_t, new_row))
                    kept.append(new_row)
            timer.rows_in = len(deleted) + len(updated)
        if deleted or updated:
            rebuilt = StoredTable(table, stored.schema, stored.heap.page_capacity)
            rebuilt.hash_indexes = {c: type(i)(c)
                                    for c, i in stored.hash_indexes.items()}
            rebuilt.sorted_indexes = {c: type(i)(c)
                                      for c, i in stored.sorted_indexes.items()}
            for row_t in kept:
                rebuilt.insert(row_t)
            self._tables[table] = rebuilt
        return deleted, updated

    def insert_dicts(self, table: str, rows: Iterable[Mapping[str, Any]]) -> int:
        """Insert dictionary rows into a table."""
        stored = self._stored(table)
        names = stored.schema.names
        return self.insert(table, (tuple(row.get(n) for n in names) for row in rows))

    def load_table(self, name: str, table: Table, *, page_capacity: int = 256) -> None:
        """Create ``name`` from an in-memory :class:`Table` and load its rows."""
        self.create_table(name, table.schema, page_capacity=page_capacity)
        self.insert(name, table.rows)

    # -- query execution ------------------------------------------------------------

    def execute_sql(self, sql: str) -> Table:
        """Parse, plan and execute a SELECT statement."""
        statement = parse_select(sql)
        plan = build_plan(statement)
        return self.execute_plan(plan)

    def plan_sql(self, sql: str) -> LogicalPlan:
        """Parse and plan a SELECT statement without executing it."""
        return build_plan(parse_select(sql))

    def execute_plan(self, plan: LogicalPlan) -> Table:
        """Execute a logical plan and return the result table."""
        with self.metrics.timed(self.name, "execute_plan", plan=plan.describe()) as timer:
            operator = self._lower(plan)
            rows = operator.execute()
            timer.rows_out = len(rows)
        if rows:
            result = Table.from_dicts(rows)
        else:
            result = Table(self._plan_schema(plan), [])
        return result

    # -- direct native operations (used by the adapter) ---------------------------------

    def scan(self, table: str, columns: Sequence[str] | None = None) -> Table:
        """Full scan of a table, optionally projecting columns."""
        stored = self._stored(table)
        with self.metrics.timed(self.name, "scan", table=table) as timer:
            result = stored.heap.to_table()
            timer.rows_out = len(result)
            timer.bytes_out = result.estimated_bytes()
        if columns is not None:
            result = result.project(columns)
        return result

    def has_index(self, table: str, column: str) -> bool:
        """Whether an equality-capable index exists on ``table.column``.

        The compiler's pushdown pass consults this to turn a scan with an
        absorbed equality predicate into an ``index_seek``.
        """
        try:
            stored = self._stored(table)
        except StorageError:
            return False
        return column in stored.hash_indexes or column in stored.sorted_indexes

    def index_lookup(self, table: str, column: str, value: Any) -> Table:
        """Equality lookup through an index (hash preferred, sorted fallback)."""
        stored = self._stored(table)
        with self.metrics.timed(self.name, "index_seek", table=table, column=column) as timer:
            if column in stored.hash_indexes:
                rids = stored.hash_indexes[column].lookup(value)
            elif column in stored.sorted_indexes:
                rids = stored.sorted_indexes[column].lookup(value)
            else:
                raise StorageError(f"no index on {table}.{column}")
            rows = [stored.heap.fetch(*rid) for rid in rids]
            timer.rows_out = len(rows)
        return Table(stored.schema, rows)

    def range_lookup(self, table: str, column: str, low: Any = None,
                     high: Any = None) -> Table:
        """Range lookup through a sorted index."""
        stored = self._stored(table)
        if column not in stored.sorted_indexes:
            raise StorageError(f"no sorted index on {table}.{column}")
        with self.metrics.timed(self.name, "range_seek", table=table, column=column) as timer:
            rids = list(stored.sorted_indexes[column].range(low, high))
            rows = [stored.heap.fetch(*rid) for rid in rids]
            timer.rows_out = len(rows)
        return Table(stored.schema, rows)

    def top_k(self, table: str, by: str, k: int, *, descending: bool = True) -> Table:
        """Top-k rows of a table by one column."""
        stored = self._stored(table)
        scan = TableScan(stored.heap.to_table().to_dicts())
        rows = TopK(scan, by, k, descending=descending).execute()
        return Table.from_dicts(rows) if rows else Table(stored.schema, [])

    # -- plan lowering -------------------------------------------------------------------

    def _lower(self, plan: LogicalPlan) -> PhysicalOperator:
        if isinstance(plan, ScanPlan):
            stored = self._stored(plan.table)
            dicts = stored.heap.to_table().to_dicts()
            operator: PhysicalOperator = TableScan(dicts)
            if plan.columns is not None:
                operator = Project(operator, plan.columns)
            return operator
        if isinstance(plan, IndexSeekPlan):
            result = self.index_lookup(plan.table, plan.column, plan.value)
            return TableScan(result.to_dicts())
        if isinstance(plan, FilterPlan):
            return Filter(self._lower(plan.child), plan.predicate)
        if isinstance(plan, ProjectPlan):
            return Project(self._lower(plan.child), plan.columns)
        if isinstance(plan, JoinPlan):
            left = self._lower(plan.left)
            right = self._lower(plan.right)
            if plan.algorithm == "sort_merge":
                return SortMergeJoin(left, right, plan.left_key, plan.right_key)
            return HashJoin(left, right, plan.left_key, plan.right_key, how=plan.how)
        if isinstance(plan, AggregatePlan):
            return GroupByAggregate(self._lower(plan.child), plan.group_by, plan.aggregates)
        if isinstance(plan, SortPlan):
            return Sort(self._lower(plan.child), [plan.by], descending=plan.descending)
        if isinstance(plan, LimitPlan):
            return Limit(self._lower(plan.child), plan.n)
        raise QueryError(f"cannot lower plan node {type(plan).__name__}")

    def _plan_schema(self, plan: LogicalPlan) -> Schema:
        """Best-effort output schema for a plan (used for empty results)."""
        if isinstance(plan, (ScanPlan, IndexSeekPlan)):
            return self._stored(plan.table).schema
        if isinstance(plan, ProjectPlan):
            return self._plan_schema(plan.child).project(list(plan.columns))
        if isinstance(plan, (FilterPlan, SortPlan, LimitPlan)):
            return self._plan_schema(plan.child)
        if isinstance(plan, JoinPlan):
            left = self._plan_schema(plan.left)
            right = self._plan_schema(plan.right)
            extra = [c for c in right if c.name not in left.names]
            return Schema(list(left) + extra)
        if isinstance(plan, AggregatePlan):
            child = self._plan_schema(plan.child)
            from repro.datamodel.schema import Column, DataType
            columns = [child[name] for name in plan.group_by]
            columns += [Column(a.alias, DataType.FLOAT) for a in plan.aggregates]
            return Schema(columns)
        raise QueryError(f"cannot infer schema for plan node {type(plan).__name__}")

    def _stored(self, name: str) -> StoredTable:
        try:
            return self._tables[name]
        except KeyError as exc:
            raise StorageError(f"table {name!r} does not exist") from exc
