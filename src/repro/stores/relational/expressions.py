"""Scalar expressions evaluated by the relational engine.

Expressions appear in WHERE predicates, projections and join conditions.
They form a small tree of :class:`Expression` nodes which can be evaluated
against a row dictionary, inspected for referenced columns (used by the
compiler's predicate-pushdown pass) and estimated for selectivity (used by
the cost model).
"""

from __future__ import annotations

import abc
import operator
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.exceptions import QueryError

_COMPARISONS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
}


class Expression(abc.ABC):
    """Base class for scalar expressions.

    Expressions double as the *builder* vocabulary of the dataflow API
    (:mod:`repro.eide.expressions`): ordering comparisons, arithmetic and the
    boolean connectives ``&``/``|``/``~`` construct new expression nodes
    instead of evaluating, so ``col("age") > 60`` is itself first-class IR.
    Equality stays structural (dataclass semantics); use :meth:`eq`/:meth:`ne`
    (or the :func:`repro.eide.expressions.col` sugar) to build equality
    predicates.
    """

    @abc.abstractmethod
    def evaluate(self, row: Mapping[str, Any]) -> Any:
        """Evaluate against a row given as ``{column: value}``."""

    @abc.abstractmethod
    def referenced_columns(self) -> frozenset[str]:
        """Names of columns this expression reads."""

    def estimated_selectivity(self) -> float:
        """Fraction of rows expected to satisfy this expression as a predicate."""
        return 0.5

    # -- builder operators (the dataflow API's predicate sugar) ---------------------

    def __bool__(self) -> bool:
        # Guard against Python's `and`/`or`/`not` and chained comparisons
        # (`1 < col < 5`), which would silently evaluate one operand's
        # truthiness and drop the rest of the predicate.
        raise QueryError(
            "an Expression has no truth value; combine predicates with "
            "&, | and ~ (not `and`/`or`/`not`), and avoid chained comparisons"
        )

    def __gt__(self, other: Any) -> "Comparison":
        return Comparison(">", self, _as_operand(other))

    def __ge__(self, other: Any) -> "Comparison":
        return Comparison(">=", self, _as_operand(other))

    def __lt__(self, other: Any) -> "Comparison":
        return Comparison("<", self, _as_operand(other))

    def __le__(self, other: Any) -> "Comparison":
        return Comparison("<=", self, _as_operand(other))

    def eq(self, other: Any) -> "Comparison":
        """An equality predicate (``==`` keeps dataclass equality)."""
        return Comparison("=", self, _as_operand(other))

    def ne(self, other: Any) -> "Comparison":
        """An inequality predicate."""
        return Comparison("!=", self, _as_operand(other))

    def isin(self, *values: Any) -> "InList":
        """An ``IN (...)`` membership predicate."""
        if len(values) == 1 and isinstance(values[0], (list, tuple, set, frozenset)):
            values = tuple(values[0])
        return InList(self, tuple(values))

    def is_null(self) -> "IsNull":
        """An ``IS NULL`` predicate."""
        return IsNull(self)

    def is_not_null(self) -> "IsNull":
        """An ``IS NOT NULL`` predicate."""
        return IsNull(self, negated=True)

    def __and__(self, other: "Expression") -> "BooleanOp":
        return BooleanOp("and", (self, _as_operand(other)))

    def __or__(self, other: "Expression") -> "BooleanOp":
        return BooleanOp("or", (self, _as_operand(other)))

    def __invert__(self) -> "BooleanOp":
        return BooleanOp("not", (self,))

    def __add__(self, other: Any) -> "Arithmetic":
        return Arithmetic("+", self, _as_operand(other))

    def __sub__(self, other: Any) -> "Arithmetic":
        return Arithmetic("-", self, _as_operand(other))

    def __mul__(self, other: Any) -> "Arithmetic":
        return Arithmetic("*", self, _as_operand(other))

    def __truediv__(self, other: Any) -> "Arithmetic":
        return Arithmetic("/", self, _as_operand(other))

    def __mod__(self, other: Any) -> "Arithmetic":
        return Arithmetic("%", self, _as_operand(other))


def _as_operand(value: Any) -> "Expression":
    """Wrap a bare Python value as a :class:`Literal` operand."""
    return value if isinstance(value, Expression) else Literal(value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a column by name."""

    name: str

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        try:
            return row[self.name]
        except KeyError as exc:
            raise QueryError(f"unknown column {self.name!r} in expression") from exc

    def referenced_columns(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return self.value

    def referenced_columns(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class Comparison(Expression):
    """A binary comparison such as ``age >= 65``."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARISONS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return False
        return bool(_COMPARISONS[self.op](left, right))

    def referenced_columns(self) -> frozenset[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def estimated_selectivity(self) -> float:
        if self.op in ("=", "=="):
            return 0.1
        if self.op in ("!=", "<>"):
            return 0.9
        return 0.33

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class BooleanOp(Expression):
    """AND / OR / NOT combination of predicates."""

    op: str
    operands: tuple[Expression, ...]

    def __post_init__(self) -> None:
        if self.op not in ("and", "or", "not"):
            raise QueryError(f"unknown boolean operator {self.op!r}")
        if self.op == "not" and len(self.operands) != 1:
            raise QueryError("NOT takes exactly one operand")
        if self.op in ("and", "or") and len(self.operands) < 2:
            raise QueryError(f"{self.op.upper()} needs at least two operands")

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        if self.op == "and":
            return all(op.evaluate(row) for op in self.operands)
        if self.op == "or":
            return any(op.evaluate(row) for op in self.operands)
        return not self.operands[0].evaluate(row)

    def referenced_columns(self) -> frozenset[str]:
        columns: frozenset[str] = frozenset()
        for operand in self.operands:
            columns |= operand.referenced_columns()
        return columns

    def estimated_selectivity(self) -> float:
        child = [op.estimated_selectivity() for op in self.operands]
        if self.op == "and":
            product = 1.0
            for s in child:
                product *= s
            return product
        if self.op == "or":
            miss = 1.0
            for s in child:
                miss *= (1.0 - s)
            return 1.0 - miss
        return 1.0 - child[0]

    def __str__(self) -> str:
        if self.op == "not":
            return f"(NOT {self.operands[0]})"
        joiner = f" {self.op.upper()} "
        return "(" + joiner.join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Arithmetic(Expression):
    """A binary arithmetic expression such as ``price * quantity``."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise QueryError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None
        try:
            return _ARITHMETIC[self.op](left, right)
        except ZeroDivisionError:
            return None

    def referenced_columns(self) -> frozenset[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class InList(Expression):
    """``column IN (v1, v2, ...)``."""

    operand: Expression
    values: tuple[Any, ...]

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        value = self.operand.evaluate(row)
        return value in self.values

    def referenced_columns(self) -> frozenset[str]:
        return self.operand.referenced_columns()

    def estimated_selectivity(self) -> float:
        return min(1.0, 0.1 * max(1, len(self.values)))

    def __str__(self) -> str:
        values = ", ".join(repr(v) for v in self.values)
        return f"({self.operand} IN ({values}))"


@dataclass(frozen=True)
class IsNull(Expression):
    """``column IS NULL`` / ``IS NOT NULL``."""

    operand: Expression
    negated: bool = False

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        is_null = self.operand.evaluate(row) is None
        return not is_null if self.negated else is_null

    def referenced_columns(self) -> frozenset[str]:
        return self.operand.referenced_columns()

    def estimated_selectivity(self) -> float:
        return 0.9 if self.negated else 0.1

    def __str__(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand} {suffix})"


def column(name: str) -> ColumnRef:
    """Shorthand for :class:`ColumnRef`."""
    return ColumnRef(name)


def literal(value: Any) -> Literal:
    """Shorthand for :class:`Literal`."""
    return Literal(value)


def compare(left: Expression | str, op: str, right: Any) -> Comparison:
    """Build a comparison, wrapping bare names/values for convenience."""
    left_expr = ColumnRef(left) if isinstance(left, str) else left
    right_expr = right if isinstance(right, Expression) else Literal(right)
    return Comparison(op, left_expr, right_expr)


def and_(*operands: Expression) -> Expression:
    """AND of one or more predicates (a single predicate passes through)."""
    if not operands:
        raise QueryError("and_ needs at least one operand")
    if len(operands) == 1:
        return operands[0]
    return BooleanOp("and", tuple(operands))


def or_(*operands: Expression) -> Expression:
    """OR of one or more predicates (a single predicate passes through)."""
    if not operands:
        raise QueryError("or_ needs at least one operand")
    if len(operands) == 1:
        return operands[0]
    return BooleanOp("or", tuple(operands))


def not_(operand: Expression) -> BooleanOp:
    """Negation of a predicate."""
    return BooleanOp("not", (operand,))


def split_conjunction(expression: Expression) -> list[Expression]:
    """Split a predicate into its top-level AND conjuncts.

    Used by the predicate-pushdown pass: each conjunct can be pushed to the
    engine that owns all of its referenced columns independently.
    """
    if isinstance(expression, BooleanOp) and expression.op == "and":
        parts: list[Expression] = []
        for operand in expression.operands:
            parts.extend(split_conjunction(operand))
        return parts
    return [expression]
