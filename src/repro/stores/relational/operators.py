"""Volcano-style physical operators for the relational engine.

Each operator is an iterator over row dictionaries.  The set matches the
operators the paper lists as what SQL queries are lowered to (§III-A-1):
projection, hash, sort, group-by and join, plus scans, filters and limits.

The sort operator has two implementations: the engine's native CPU sort
(Timsort) and a software model of a *bitonic sorting network*, the algorithm
the paper calls out as inherently pipeline-parallel and therefore a natural
FPGA offload target.  The bitonic implementation counts its compare-exchange
stages so the FPGA simulator can map them onto pipeline cycles.
"""

from __future__ import annotations

import abc
import heapq
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import QueryError
from repro.stores.relational.expressions import Expression

RowDict = dict[str, Any]


class PhysicalOperator(abc.ABC):
    """Base class for iterator-model physical operators."""

    @abc.abstractmethod
    def __iter__(self) -> Iterator[RowDict]:
        """Yield output rows."""

    def execute(self) -> list[RowDict]:
        """Materialize all output rows."""
        return list(self)


class TableScan(PhysicalOperator):
    """Full sequential scan over an iterable of row dictionaries."""

    def __init__(self, rows: Iterable[RowDict]) -> None:
        self._rows = rows

    def __iter__(self) -> Iterator[RowDict]:
        for row in self._rows:
            yield dict(row)


class Filter(PhysicalOperator):
    """Emit only rows satisfying a predicate expression."""

    def __init__(self, child: PhysicalOperator, predicate: Expression) -> None:
        self._child = child
        self._predicate = predicate

    def __iter__(self) -> Iterator[RowDict]:
        for row in self._child:
            if self._predicate.evaluate(row):
                yield row


class Project(PhysicalOperator):
    """Keep only named columns, or compute derived columns from expressions."""

    def __init__(self, child: PhysicalOperator, columns: Sequence[str],
                 computed: Mapping[str, Expression] | None = None) -> None:
        self._child = child
        self._columns = list(columns)
        self._computed = dict(computed or {})

    def __iter__(self) -> Iterator[RowDict]:
        for row in self._child:
            out: RowDict = {}
            for name in self._columns:
                if name not in row:
                    raise QueryError(f"projection references unknown column {name!r}")
                out[name] = row[name]
            for name, expr in self._computed.items():
                out[name] = expr.evaluate(row)
            yield out


class Limit(PhysicalOperator):
    """Emit at most ``n`` rows."""

    def __init__(self, child: PhysicalOperator, n: int) -> None:
        if n < 0:
            raise QueryError("LIMIT must be non-negative")
        self._child = child
        self._n = n

    def __iter__(self) -> Iterator[RowDict]:
        count = 0
        for row in self._child:
            if count >= self._n:
                return
            yield row
            count += 1


class Sort(PhysicalOperator):
    """In-memory sort by one or more columns (CPU Timsort path)."""

    def __init__(self, child: PhysicalOperator, by: Sequence[str], *,
                 descending: bool = False) -> None:
        self._child = child
        self._by = list(by)
        self._descending = descending

    def __iter__(self) -> Iterator[RowDict]:
        rows = list(self._child)
        rows.sort(key=_sort_key(self._by), reverse=self._descending)
        yield from rows


class HashJoin(PhysicalOperator):
    """Equi-join using an in-memory hash table built on the right input."""

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 left_key: str, right_key: str, *, how: str = "inner") -> None:
        if how not in ("inner", "left"):
            raise QueryError(f"unsupported join type {how!r}")
        self._left = left
        self._right = right
        self._left_key = left_key
        self._right_key = right_key
        self._how = how

    def __iter__(self) -> Iterator[RowDict]:
        buckets: dict[Any, list[RowDict]] = {}
        right_columns: set[str] = set()
        for row in self._right:
            right_columns.update(row.keys())
            key = row.get(self._right_key)
            if key is None:
                continue
            buckets.setdefault(key, []).append(row)
        null_right = {name: None for name in right_columns}
        for left_row in self._left:
            key = left_row.get(self._left_key)
            matches = buckets.get(key, []) if key is not None else []
            if matches:
                for right_row in matches:
                    merged = dict(left_row)
                    for name, value in right_row.items():
                        if name not in merged:
                            merged[name] = value
                    yield merged
            elif self._how == "left":
                merged = dict(left_row)
                for name, value in null_right.items():
                    if name not in merged:
                        merged[name] = value
                yield merged


class SortMergeJoin(PhysicalOperator):
    """Equi-join by sorting both inputs on the key and merging.

    This is the join used in the paper's §III walk-through (Admission ⋈
    Patients sorted on admission date), where the sort phase is the offload
    candidate.
    """

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 left_key: str, right_key: str) -> None:
        self._left = left
        self._right = right
        self._left_key = left_key
        self._right_key = right_key

    def __iter__(self) -> Iterator[RowDict]:
        left_rows = sorted(
            (r for r in self._left if r.get(self._left_key) is not None),
            key=lambda r: r[self._left_key],
        )
        right_rows = sorted(
            (r for r in self._right if r.get(self._right_key) is not None),
            key=lambda r: r[self._right_key],
        )
        i = j = 0
        while i < len(left_rows) and j < len(right_rows):
            lkey = left_rows[i][self._left_key]
            rkey = right_rows[j][self._right_key]
            if lkey < rkey:
                i += 1
            elif lkey > rkey:
                j += 1
            else:
                j_end = j
                while j_end < len(right_rows) and right_rows[j_end][self._right_key] == lkey:
                    j_end += 1
                i_end = i
                while i_end < len(left_rows) and left_rows[i_end][self._left_key] == lkey:
                    i_end += 1
                for li in range(i, i_end):
                    for rj in range(j, j_end):
                        merged = dict(left_rows[li])
                        for name, value in right_rows[rj].items():
                            if name not in merged:
                                merged[name] = value
                        yield merged
                i, j = i_end, j_end


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate to compute: ``function(column) AS alias``."""

    function: str
    column: str | None
    alias: str

    _SUPPORTED = ("count", "sum", "avg", "min", "max")

    def __post_init__(self) -> None:
        if self.function not in self._SUPPORTED:
            raise QueryError(f"unsupported aggregate function {self.function!r}")
        if self.function != "count" and self.column is None:
            raise QueryError(f"aggregate {self.function!r} requires a column")


class GroupByAggregate(PhysicalOperator):
    """Hash group-by with the standard SQL aggregates."""

    def __init__(self, child: PhysicalOperator, group_by: Sequence[str],
                 aggregates: Sequence[AggregateSpec]) -> None:
        self._child = child
        self._group_by = list(group_by)
        self._aggregates = list(aggregates)

    def __iter__(self) -> Iterator[RowDict]:
        groups: dict[tuple, list[RowDict]] = {}
        order: list[tuple] = []
        for row in self._child:
            key = tuple(row.get(name) for name in self._group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        if not self._group_by and not groups:
            # Aggregates over an empty input still produce a single row.
            groups[()] = []
            order.append(())
        for key in order:
            rows = groups[key]
            out: RowDict = dict(zip(self._group_by, key))
            for spec in self._aggregates:
                out[spec.alias] = _aggregate(spec, rows)
            yield out


class TopK(PhysicalOperator):
    """Heap-based top-k by a column, equivalent to ORDER BY ... LIMIT k."""

    def __init__(self, child: PhysicalOperator, by: str, k: int, *,
                 descending: bool = True) -> None:
        if k < 0:
            raise QueryError("k must be non-negative")
        self._child = child
        self._by = by
        self._k = k
        self._descending = descending

    def __iter__(self) -> Iterator[RowDict]:
        rows = [r for r in self._child if r.get(self._by) is not None]
        if self._k == 0:
            return
        if self._descending:
            top = heapq.nlargest(self._k, rows, key=lambda r: r[self._by])
        else:
            top = heapq.nsmallest(self._k, rows, key=lambda r: r[self._by])
        yield from top


def _aggregate(spec: AggregateSpec, rows: list[RowDict]) -> Any:
    if spec.function == "count":
        if spec.column is None:
            return len(rows)
        return sum(1 for r in rows if r.get(spec.column) is not None)
    values = [r[spec.column] for r in rows if r.get(spec.column) is not None]
    if not values:
        return None
    if spec.function == "sum":
        return sum(values)
    if spec.function == "avg":
        return sum(values) / len(values)
    if spec.function == "min":
        return min(values)
    return max(values)


def _sort_key(by: Sequence[str]) -> Callable[[RowDict], tuple]:
    def key(row: RowDict) -> tuple:
        parts = []
        for name in by:
            value = row.get(name)
            parts.append((value is not None, value))
        return tuple(parts)
    return key


# -- bitonic sorting network ----------------------------------------------------------------


@dataclass
class BitonicSortStats:
    """Work counters produced by :func:`bitonic_sort`.

    Attributes:
        n_padded: Input size after padding to the next power of two.
        stages: Number of compare-exchange stages (the pipeline depth an FPGA
            implementation would instantiate).
        comparisons: Total compare-exchange operations performed.
    """

    n_padded: int
    stages: int
    comparisons: int


def bitonic_sort(values: Sequence[Any], *, key: Callable[[Any], Any] | None = None,
                 descending: bool = False) -> tuple[list[Any], BitonicSortStats]:
    """Sort ``values`` with a bitonic sorting network.

    The network's structure (log^2 n stages of n/2 independent compare-exchange
    operations) is what makes it attractive for FPGA pipelining; the returned
    statistics let the accelerator simulator translate the same work into
    pipeline cycles.
    """
    items = list(values)
    n = len(items)
    if n <= 1:
        return items, BitonicSortStats(n_padded=n, stages=0, comparisons=0)
    key_fn = key if key is not None else (lambda x: x)

    size = 1
    while size < n:
        size *= 2
    sentinel = object()
    padded: list[Any] = items + [sentinel] * (size - n)

    def rank(item: Any) -> tuple[int, Any]:
        # Sentinels sort after every real value so padding never interleaves.
        if item is sentinel:
            return (1, 0)
        return (0, key_fn(item))

    comparisons = 0
    stages = 0
    k = 2
    while k <= size:
        j = k // 2
        while j >= 1:
            stages += 1
            for i in range(size):
                partner = i ^ j
                if partner > i:
                    ascending = (i & k) == 0
                    comparisons += 1
                    a, b = padded[i], padded[partner]
                    swap = rank(a) > rank(b) if ascending else rank(a) < rank(b)
                    if swap:
                        padded[i], padded[partner] = b, a
            j //= 2
        k *= 2

    result = [item for item in padded if item is not sentinel]
    if descending:
        result.reverse()
    return result, BitonicSortStats(n_padded=size, stages=stages, comparisons=comparisons)
