"""Relational store: SQL parsing, planning, indexes and volcano operators."""

from repro.stores.relational.engine import RelationalEngine, StoredTable
from repro.stores.relational.expressions import (
    and_,
    column,
    compare,
    literal,
    not_,
    or_,
)
from repro.stores.relational.operators import AggregateSpec, bitonic_sort
from repro.stores.relational.planner import LogicalPlan, build_plan
from repro.stores.relational.sql import parse_select

__all__ = [
    "RelationalEngine",
    "StoredTable",
    "AggregateSpec",
    "bitonic_sort",
    "LogicalPlan",
    "build_plan",
    "parse_select",
    "column",
    "literal",
    "compare",
    "and_",
    "or_",
    "not_",
]
