"""A small SQL dialect for the relational engine.

The parser covers the subset used by the paper's example workloads:

.. code-block:: sql

    SELECT col [, col ...] | * | agg(col) AS alias
    FROM table [JOIN table ON t1.col = t2.col ...]
    [WHERE predicate [AND|OR predicate ...]]
    [GROUP BY col [, col ...]]
    [ORDER BY col [ASC|DESC]]
    [LIMIT n]

The output is a :class:`SelectStatement` describing the query; the planner
turns it into a logical plan.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import QueryError
from repro.stores.relational.expressions import (
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Literal,
)

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<string>'(?:[^']|'')*')"
    r"|(?P<number>-?\d+\.\d+|-?\d+)"
    r"|(?P<op><=|>=|!=|<>|=|<|>|\(|\)|,|\*|\.)"
    r"|(?P<word>[A-Za-z_][A-Za-z_0-9]*)"
    r")"
)

_KEYWORDS = {
    "select", "from", "where", "group", "order", "by", "limit", "join", "on",
    "and", "or", "not", "as", "asc", "desc", "in", "is", "null", "inner", "left",
}

_AGGREGATES = {"count", "sum", "avg", "min", "max"}


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str
    value: str


def tokenize(text: str) -> list[Token]:
    """Split SQL text into tokens, raising :class:`QueryError` on junk."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise QueryError(f"cannot tokenize SQL near {remainder[:20]!r}")
        pos = match.end()
        if match.lastgroup == "string":
            raw = match.group("string")[1:-1].replace("''", "'")
            tokens.append(Token("string", raw))
        elif match.lastgroup == "number":
            tokens.append(Token("number", match.group("number")))
        elif match.lastgroup == "op":
            tokens.append(Token("op", match.group("op")))
        else:
            word = match.group("word")
            kind = "keyword" if word.lower() in _KEYWORDS else "identifier"
            tokens.append(Token(kind, word))
    return tokens


@dataclass(frozen=True)
class SelectItem:
    """One item of the SELECT list."""

    column: str | None = None          # plain column (possibly table-qualified)
    aggregate: str | None = None       # aggregate function name
    argument: str | None = None        # aggregate argument column ('*' for count)
    alias: str | None = None

    @property
    def output_name(self) -> str:
        """The column name this item produces."""
        if self.alias:
            return self.alias
        if self.aggregate:
            arg = self.argument or "*"
            return f"{self.aggregate}_{arg}".replace("*", "all")
        assert self.column is not None
        return self.column.split(".")[-1]


@dataclass(frozen=True)
class JoinClause:
    """``JOIN table ON left = right``."""

    table: str
    left_key: str
    right_key: str
    how: str = "inner"


@dataclass
class SelectStatement:
    """Parsed representation of a SELECT query."""

    table: str
    items: list[SelectItem] = field(default_factory=list)
    joins: list[JoinClause] = field(default_factory=list)
    where: Expression | None = None
    group_by: list[str] = field(default_factory=list)
    order_by: str | None = None
    order_descending: bool = False
    limit: int | None = None
    select_star: bool = False

    @property
    def tables(self) -> list[str]:
        """All referenced table names, FROM table first."""
        return [self.table] + [j.table for j in self.joins]


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ---------------------------------------------------------

    def _peek(self) -> Token | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self._pos += 1
        return token

    def _accept_keyword(self, *words: str) -> bool:
        token = self._peek()
        if token and token.kind == "keyword" and token.value.lower() in words:
            self._pos += 1
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            token = self._peek()
            raise QueryError(f"expected {word.upper()}, found {token.value if token else 'EOF'!r}")

    def _accept_op(self, op: str) -> bool:
        token = self._peek()
        if token and token.kind == "op" and token.value == op:
            self._pos += 1
            return True
        return False

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            token = self._peek()
            raise QueryError(f"expected {op!r}, found {token.value if token else 'EOF'!r}")

    def _identifier(self) -> str:
        token = self._next()
        if token.kind not in ("identifier", "keyword"):
            raise QueryError(f"expected identifier, found {token.value!r}")
        name = token.value
        if self._accept_op("."):
            suffix = self._next()
            name = f"{name}.{suffix.value}"
        return name

    # -- grammar ------------------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        self._expect_keyword("select")
        items, star = self._select_list()
        self._expect_keyword("from")
        table = self._identifier()
        statement = SelectStatement(table=table, items=items, select_star=star)
        while True:
            how = "inner"
            if self._accept_keyword("left"):
                how = "left"
                self._expect_keyword("join")
            elif self._accept_keyword("inner"):
                self._expect_keyword("join")
            elif self._accept_keyword("join"):
                pass
            else:
                break
            join_table = self._identifier()
            self._expect_keyword("on")
            left = self._identifier()
            self._expect_op("=")
            right = self._identifier()
            statement.joins.append(JoinClause(join_table, left, right, how))
        if self._accept_keyword("where"):
            statement.where = self._expression()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            statement.group_by.append(self._identifier())
            while self._accept_op(","):
                statement.group_by.append(self._identifier())
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            statement.order_by = self._identifier()
            if self._accept_keyword("desc"):
                statement.order_descending = True
            else:
                self._accept_keyword("asc")
        if self._accept_keyword("limit"):
            token = self._next()
            if token.kind != "number":
                raise QueryError(f"LIMIT expects a number, found {token.value!r}")
            statement.limit = int(float(token.value))
        trailing = self._peek()
        if trailing is not None:
            raise QueryError(f"unexpected trailing token {trailing.value!r}")
        return statement

    def _select_list(self) -> tuple[list[SelectItem], bool]:
        if self._accept_op("*"):
            return [], True
        items = [self._select_item()]
        while self._accept_op(","):
            items.append(self._select_item())
        return items, False

    def _select_item(self) -> SelectItem:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of SELECT list")
        if (token.kind in ("identifier", "keyword")
                and token.value.lower() in _AGGREGATES
                and self._pos + 1 < len(self._tokens)
                and self._tokens[self._pos + 1].value == "("):
            func = self._next().value.lower()
            self._expect_op("(")
            if self._accept_op("*"):
                argument = None
            else:
                argument = self._identifier()
            self._expect_op(")")
            alias = None
            if self._accept_keyword("as"):
                alias = self._identifier()
            return SelectItem(aggregate=func, argument=argument, alias=alias)
        name = self._identifier()
        alias = None
        if self._accept_keyword("as"):
            alias = self._identifier()
        return SelectItem(column=name, alias=alias)

    # -- predicate grammar (OR -> AND -> NOT -> comparison) -------------------------

    def _expression(self) -> Expression:
        return self._or_expression()

    def _or_expression(self) -> Expression:
        operands = [self._and_expression()]
        while self._accept_keyword("or"):
            operands.append(self._and_expression())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("or", tuple(operands))

    def _and_expression(self) -> Expression:
        operands = [self._not_expression()]
        while self._accept_keyword("and"):
            operands.append(self._not_expression())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("and", tuple(operands))

    def _not_expression(self) -> Expression:
        if self._accept_keyword("not"):
            return BooleanOp("not", (self._not_expression(),))
        return self._comparison()

    def _comparison(self) -> Expression:
        if self._accept_op("("):
            inner = self._expression()
            self._expect_op(")")
            return inner
        left = self._operand()
        token = self._peek()
        if token and token.kind == "keyword" and token.value.lower() == "is":
            self._next()
            negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return IsNull(left, negated=negated)
        if token and token.kind == "keyword" and token.value.lower() == "in":
            self._next()
            self._expect_op("(")
            values = [self._literal_value()]
            while self._accept_op(","):
                values.append(self._literal_value())
            self._expect_op(")")
            return InList(left, tuple(values))
        op_token = self._next()
        if op_token.kind != "op" or op_token.value not in ("=", "!=", "<>", "<", "<=", ">", ">="):
            raise QueryError(f"expected comparison operator, found {op_token.value!r}")
        right = self._operand()
        return Comparison(op_token.value, left, right)

    def _operand(self) -> Expression:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of expression")
        if token.kind == "number":
            self._next()
            return Literal(_to_number(token.value))
        if token.kind == "string":
            self._next()
            return Literal(token.value)
        name = self._identifier()
        return ColumnRef(name)

    def _literal_value(self) -> Any:
        token = self._next()
        if token.kind == "number":
            return _to_number(token.value)
        if token.kind == "string":
            return token.value
        raise QueryError(f"expected literal in IN list, found {token.value!r}")


def _to_number(text: str) -> int | float:
    return float(text) if "." in text else int(text)


def parse_select(sql: str) -> SelectStatement:
    """Parse a SELECT statement, raising :class:`QueryError` on syntax errors."""
    tokens = tokenize(sql)
    if not tokens:
        raise QueryError("empty query")
    return _Parser(tokens).parse_select()
