"""Secondary indexes for the relational engine.

Two index types are provided, matching the access paths the paper discusses
in §III-A-2 (sequential scan vs index seek):

* :class:`HashIndex` — equality lookups in O(1).
* :class:`SortedIndex` — equality and range lookups via binary search over a
  sorted key array (a flat stand-in for a B-tree).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator

from repro.exceptions import StorageError

RowId = tuple[int, int]


class HashIndex:
    """Equality index mapping a key value to row identifiers."""

    def __init__(self, column: str) -> None:
        self.column = column
        self._buckets: dict[Any, list[RowId]] = {}
        self._num_entries = 0

    def insert(self, key: Any, rid: RowId) -> None:
        """Add an entry for ``key`` pointing at ``rid``."""
        self._buckets.setdefault(key, []).append(rid)
        self._num_entries += 1

    def lookup(self, key: Any) -> list[RowId]:
        """Row ids whose indexed column equals ``key``."""
        return list(self._buckets.get(key, []))

    def bulk_load(self, entries: Iterable[tuple[Any, RowId]]) -> None:
        """Insert many ``(key, rid)`` entries."""
        for key, rid in entries:
            self.insert(key, rid)

    def __len__(self) -> int:
        return self._num_entries

    def __contains__(self, key: object) -> bool:
        return key in self._buckets

    @property
    def num_keys(self) -> int:
        """Number of distinct keys."""
        return len(self._buckets)


class SortedIndex:
    """Ordered index supporting equality and range lookups.

    Keys are kept in a sorted array rebuilt lazily after inserts; lookups use
    binary search.  ``None`` keys are not indexed (SQL semantics: NULL never
    matches a range predicate).
    """

    def __init__(self, column: str) -> None:
        self.column = column
        self._keys: list[Any] = []
        self._rids: list[RowId] = []
        self._pending: list[tuple[Any, RowId]] = []

    def insert(self, key: Any, rid: RowId) -> None:
        """Add an entry; the sorted array is rebuilt on next lookup."""
        if key is None:
            return
        self._pending.append((key, rid))

    def bulk_load(self, entries: Iterable[tuple[Any, RowId]]) -> None:
        """Insert many ``(key, rid)`` entries."""
        for key, rid in entries:
            self.insert(key, rid)

    def _flush(self) -> None:
        if not self._pending:
            return
        merged = list(zip(self._keys, self._rids)) + self._pending
        try:
            merged.sort(key=lambda pair: pair[0])
        except TypeError as exc:
            raise StorageError(
                f"index on {self.column!r} received keys of incomparable types"
            ) from exc
        self._keys = [key for key, _ in merged]
        self._rids = [rid for _, rid in merged]
        self._pending = []

    def lookup(self, key: Any) -> list[RowId]:
        """Row ids whose indexed column equals ``key``."""
        self._flush()
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        return self._rids[lo:hi]

    def range(self, low: Any = None, high: Any = None, *,
              include_low: bool = True, include_high: bool = True) -> Iterator[RowId]:
        """Row ids whose key falls within ``[low, high]`` (open ends allowed)."""
        self._flush()
        if low is None:
            lo = 0
        else:
            lo = bisect.bisect_left(self._keys, low) if include_low \
                else bisect.bisect_right(self._keys, low)
        if high is None:
            hi = len(self._keys)
        else:
            hi = bisect.bisect_right(self._keys, high) if include_high \
                else bisect.bisect_left(self._keys, high)
        yield from self._rids[lo:hi]

    def min_key(self) -> Any:
        """Smallest indexed key (``None`` when empty)."""
        self._flush()
        return self._keys[0] if self._keys else None

    def max_key(self) -> Any:
        """Largest indexed key (``None`` when empty)."""
        self._flush()
        return self._keys[-1] if self._keys else None

    def __len__(self) -> int:
        return len(self._keys) + len(self._pending)
