"""Heap storage for the relational engine.

Tables are stored as a list of fixed-capacity pages of rows.  The page
structure exists so that the cost model can reason about page reads (the
sequential-scan vs index-seek distinction in paper §III-A-2) and so the
engine reports "pages read" metrics to the middleware optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.datamodel.schema import Schema
from repro.datamodel.table import Row, Table
from repro.exceptions import StorageError

DEFAULT_PAGE_CAPACITY = 256


@dataclass
class Page:
    """A fixed-capacity container of rows."""

    page_id: int
    capacity: int
    rows: list[Row] = field(default_factory=list)

    @property
    def is_full(self) -> bool:
        """Whether the page has reached capacity."""
        return len(self.rows) >= self.capacity

    def append(self, row: Row) -> None:
        """Append a row; raises :class:`StorageError` if the page is full."""
        if self.is_full:
            raise StorageError(f"page {self.page_id} is full")
        self.rows.append(row)


class HeapStorage:
    """Append-only heap of pages for one table."""

    def __init__(self, schema: Schema, page_capacity: int = DEFAULT_PAGE_CAPACITY) -> None:
        if page_capacity <= 0:
            raise StorageError("page_capacity must be positive")
        self.schema = schema
        self.page_capacity = page_capacity
        self._pages: list[Page] = []
        self._num_rows = 0

    # -- writes ---------------------------------------------------------------

    def insert(self, row: Sequence[Any], *, validate: bool = False) -> tuple[int, int]:
        """Insert a row; returns its ``(page_id, slot)`` row identifier."""
        row_t = tuple(row)
        if validate:
            self.schema.validate_row(row_t)
        if not self._pages or self._pages[-1].is_full:
            self._pages.append(Page(page_id=len(self._pages), capacity=self.page_capacity))
        page = self._pages[-1]
        page.append(row_t)
        self._num_rows += 1
        return page.page_id, len(page.rows) - 1

    def insert_many(self, rows: Sequence[Sequence[Any]], *, validate: bool = False) -> int:
        """Insert many rows; returns the number inserted."""
        for row in rows:
            self.insert(row, validate=validate)
        return len(rows)

    # -- reads ----------------------------------------------------------------

    def fetch(self, page_id: int, slot: int) -> Row:
        """Fetch one row by its row identifier."""
        try:
            return self._pages[page_id].rows[slot]
        except IndexError as exc:
            raise StorageError(f"invalid row id ({page_id}, {slot})") from exc

    def scan(self) -> Iterator[Row]:
        """Yield every row in insertion order (a full sequential scan)."""
        for page in self._pages:
            yield from page.rows

    def scan_with_rids(self) -> Iterator[tuple[tuple[int, int], Row]]:
        """Yield ``((page_id, slot), row)`` pairs in insertion order."""
        for page in self._pages:
            for slot, row in enumerate(page.rows):
                yield (page.page_id, slot), row

    def to_table(self) -> Table:
        """Materialize the heap as a :class:`Table`."""
        return Table(self.schema, list(self.scan()))

    # -- statistics -------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Number of stored rows."""
        return self._num_rows

    @property
    def num_pages(self) -> int:
        """Number of allocated pages."""
        return len(self._pages)

    def estimated_bytes(self) -> int:
        """Approximate stored size in bytes."""
        return self.schema.row_width() * self._num_rows

    def statistics(self) -> dict[str, Any]:
        """Summary statistics used by the catalog and the cost model."""
        return {
            "rows": self._num_rows,
            "pages": self.num_pages,
            "page_capacity": self.page_capacity,
            "bytes": self.estimated_bytes(),
        }
