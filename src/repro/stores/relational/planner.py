"""Logical plans for the relational engine.

The planner turns a parsed :class:`SelectStatement` into a tree of logical
plan nodes.  The same node vocabulary is reused by the Polystore++ compiler
when it lowers relational fragments of a heterogeneous program, so plan
nodes carry enough information for cost estimation (estimated cardinality)
and for the accelerator placement pass (operator kind).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.exceptions import PlanError
from repro.stores.relational.expressions import Expression
from repro.stores.relational.operators import AggregateSpec
from repro.stores.relational.sql import SelectItem, SelectStatement


@dataclass
class LogicalPlan:
    """Base class for logical plan nodes."""

    def children(self) -> list["LogicalPlan"]:
        """Child plan nodes (empty for leaves)."""
        return []

    @property
    def kind(self) -> str:
        """Short operator name used by cost models and placement."""
        return type(self).__name__.lower()

    def walk(self) -> list["LogicalPlan"]:
        """All nodes of the subtree rooted here, pre-order."""
        nodes: list[LogicalPlan] = [self]
        for child in self.children():
            nodes.extend(child.walk())
        return nodes

    def render(self, indent: int = 0) -> str:
        """Human-readable multi-line rendering of the plan tree."""
        pad = "  " * indent
        lines = [f"{pad}{self.describe()}"]
        for child in self.children():
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        """One-line description of this node."""
        return self.kind


@dataclass
class ScanPlan(LogicalPlan):
    """Sequential scan of a base table."""

    table: str
    columns: tuple[str, ...] | None = None

    def describe(self) -> str:
        cols = "*" if self.columns is None else ", ".join(self.columns)
        return f"Scan({self.table}: {cols})"


@dataclass
class IndexSeekPlan(LogicalPlan):
    """Index-based lookup of a base table."""

    table: str
    column: str
    value: Any

    def describe(self) -> str:
        return f"IndexSeek({self.table}.{self.column} = {self.value!r})"


@dataclass
class FilterPlan(LogicalPlan):
    """Predicate filter."""

    child: LogicalPlan
    predicate: Expression

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        return f"Filter({self.predicate})"


@dataclass
class ProjectPlan(LogicalPlan):
    """Column projection."""

    child: LogicalPlan
    columns: tuple[str, ...]

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        return f"Project({', '.join(self.columns)})"


@dataclass
class JoinPlan(LogicalPlan):
    """Equi-join of two subplans."""

    left: LogicalPlan
    right: LogicalPlan
    left_key: str
    right_key: str
    how: str = "inner"
    algorithm: str = "hash"   # "hash" or "sort_merge"

    def children(self) -> list[LogicalPlan]:
        return [self.left, self.right]

    def describe(self) -> str:
        return (f"Join({self.left_key} = {self.right_key}, how={self.how}, "
                f"algorithm={self.algorithm})")


@dataclass
class AggregatePlan(LogicalPlan):
    """Group-by aggregation."""

    child: LogicalPlan
    group_by: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        aggs = ", ".join(f"{a.function}({a.column or '*'}) AS {a.alias}" for a in self.aggregates)
        keys = ", ".join(self.group_by) or "<none>"
        return f"Aggregate(by=[{keys}], aggs=[{aggs}])"


@dataclass
class SortPlan(LogicalPlan):
    """Sort by a column."""

    child: LogicalPlan
    by: str
    descending: bool = False

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        direction = "DESC" if self.descending else "ASC"
        return f"Sort({self.by} {direction})"


@dataclass
class LimitPlan(LogicalPlan):
    """Row-count limit."""

    child: LogicalPlan
    n: int

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        return f"Limit({self.n})"


def build_plan(statement: SelectStatement) -> LogicalPlan:
    """Translate a parsed SELECT statement into a canonical logical plan.

    Canonical ordering (bottom to top): scans, joins, filter, aggregate,
    projection, sort, limit.  The Polystore++ compiler's L1 passes then
    rearrange this plan (predicate pushdown, join reordering, fusion).
    """
    plan: LogicalPlan = ScanPlan(table=statement.table)
    for join in statement.joins:
        right: LogicalPlan = ScanPlan(table=join.table)
        plan = JoinPlan(
            left=plan,
            right=right,
            left_key=_strip_qualifier(join.left_key),
            right_key=_strip_qualifier(join.right_key),
            how=join.how,
        )
    if statement.where is not None:
        plan = FilterPlan(child=plan, predicate=statement.where)
    aggregates = _aggregate_specs(statement.items)
    if aggregates or statement.group_by:
        plan = AggregatePlan(
            child=plan,
            group_by=tuple(_strip_qualifier(c) for c in statement.group_by),
            aggregates=tuple(aggregates),
        )
    elif not statement.select_star:
        columns = tuple(_strip_qualifier(item.column) for item in statement.items
                        if item.column is not None)
        if columns:
            plan = ProjectPlan(child=plan, columns=columns)
    if statement.order_by is not None:
        plan = SortPlan(child=plan, by=_strip_qualifier(statement.order_by),
                        descending=statement.order_descending)
    if statement.limit is not None:
        plan = LimitPlan(child=plan, n=statement.limit)
    return plan


def _aggregate_specs(items: Sequence[SelectItem]) -> list[AggregateSpec]:
    specs = []
    for item in items:
        if item.aggregate is None:
            continue
        column = _strip_qualifier(item.argument) if item.argument else None
        specs.append(AggregateSpec(item.aggregate, column, item.output_name))
    return specs


def _strip_qualifier(name: str | None) -> str:
    if name is None:
        raise PlanError("expected a column name, found None")
    return name.split(".")[-1]


def estimate_output_columns(statement: SelectStatement) -> list[str]:
    """Names of the columns a statement will produce (best effort for ``*``)."""
    if statement.select_star:
        return []
    names = []
    for item in statement.items:
        names.append(item.output_name)
    for key in statement.group_by:
        stripped = _strip_qualifier(key)
        if stripped not in names:
            names.insert(0, stripped)
    return names
