"""Array store: chunked dense arrays with matrix operators."""

from repro.stores.array.chunks import ChunkedArray
from repro.stores.array.engine import ArrayEngine

__all__ = ["ArrayEngine", "ChunkedArray"]
