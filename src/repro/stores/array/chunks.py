"""Chunked storage for the array engine.

SciDB-style array stores split large dense arrays into fixed-size chunks so
that operators touch only the chunks they need.  This module implements a
2-D chunked array over numpy with chunk-level access counting, which is how
the cost model estimates the bytes an array operator reads.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.exceptions import StorageError


class ChunkedArray:
    """A dense 2-D float64 array stored as a grid of chunks."""

    def __init__(self, shape: tuple[int, int], chunk_shape: tuple[int, int] = (256, 256)) -> None:
        if len(shape) != 2 or len(chunk_shape) != 2:
            raise StorageError("ChunkedArray is 2-D only")
        if min(shape) < 0 or min(chunk_shape) <= 0:
            raise StorageError("invalid shape or chunk shape")
        self.shape = shape
        self.chunk_shape = chunk_shape
        self._grid_shape = (
            max(1, math.ceil(shape[0] / chunk_shape[0])),
            max(1, math.ceil(shape[1] / chunk_shape[1])),
        )
        self._chunks: dict[tuple[int, int], np.ndarray] = {}
        self.chunk_reads = 0
        self.chunk_writes = 0

    @classmethod
    def from_numpy(cls, array: np.ndarray,
                   chunk_shape: tuple[int, int] = (256, 256)) -> "ChunkedArray":
        """Build a chunked array by splitting ``array``."""
        array = np.atleast_2d(np.asarray(array, dtype=np.float64))
        chunked = cls(array.shape, chunk_shape)
        rows, cols = chunk_shape
        for ci in range(chunked._grid_shape[0]):
            for cj in range(chunked._grid_shape[1]):
                block = array[ci * rows:(ci + 1) * rows, cj * cols:(cj + 1) * cols]
                if block.size:
                    chunked._chunks[(ci, cj)] = np.array(block, dtype=np.float64)
                    chunked.chunk_writes += 1
        return chunked

    def to_numpy(self) -> np.ndarray:
        """Materialize the full dense array."""
        out = np.zeros(self.shape, dtype=np.float64)
        rows, cols = self.chunk_shape
        for (ci, cj), block in self._chunks.items():
            self.chunk_reads += 1
            out[ci * rows:ci * rows + block.shape[0],
                cj * cols:cj * cols + block.shape[1]] = block
        return out

    def slice(self, row_start: int, row_stop: int, col_start: int, col_stop: int) -> np.ndarray:
        """A dense copy of ``[row_start:row_stop, col_start:col_stop]``.

        Only chunks overlapping the requested window are read.
        """
        row_start, row_stop = max(0, row_start), min(self.shape[0], row_stop)
        col_start, col_stop = max(0, col_start), min(self.shape[1], col_stop)
        if row_stop <= row_start or col_stop <= col_start:
            return np.zeros((max(0, row_stop - row_start), max(0, col_stop - col_start)))
        out = np.zeros((row_stop - row_start, col_stop - col_start), dtype=np.float64)
        rows, cols = self.chunk_shape
        first_ci, last_ci = row_start // rows, (row_stop - 1) // rows
        first_cj, last_cj = col_start // cols, (col_stop - 1) // cols
        for ci in range(first_ci, last_ci + 1):
            for cj in range(first_cj, last_cj + 1):
                block = self._chunks.get((ci, cj))
                if block is None:
                    continue
                self.chunk_reads += 1
                block_r0, block_c0 = ci * rows, cj * cols
                r0 = max(row_start, block_r0)
                r1 = min(row_stop, block_r0 + block.shape[0])
                c0 = max(col_start, block_c0)
                c1 = min(col_stop, block_c0 + block.shape[1])
                out[r0 - row_start:r1 - row_start, c0 - col_start:c1 - col_start] = \
                    block[r0 - block_r0:r1 - block_r0, c0 - block_c0:c1 - block_c0]
        return out

    def chunks(self) -> Iterator[tuple[tuple[int, int], np.ndarray]]:
        """All stored chunks keyed by grid position."""
        yield from self._chunks.items()

    @property
    def num_chunks(self) -> int:
        """Number of stored (non-empty) chunks."""
        return len(self._chunks)

    @property
    def nbytes(self) -> int:
        """Total stored bytes."""
        return sum(block.nbytes for block in self._chunks.values())
