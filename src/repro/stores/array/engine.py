"""The array data-processing engine (SciDB stand-in).

Stores named chunked 2-D arrays and exposes the matrix operators the paper
cites as SciDB's strength (§I: "matrix operations in SciDB") — slicing,
element-wise maps, matrix multiplication and reductions.  GEMM work counts
are reported so the GPU/TPU simulators can cost the offload.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.exceptions import StorageError
from repro.stores.array.chunks import ChunkedArray
from repro.stores.base import Capability, Concurrency, DataModel, Engine


class ArrayEngine(Engine):
    """A chunked dense-array store with matrix operators."""

    data_model = DataModel.ARRAY
    concurrency = Concurrency.THREAD_SAFE

    def __init__(self, name: str = "array", *, chunk_shape: tuple[int, int] = (256, 256)) -> None:
        super().__init__(name)
        self._arrays: dict[str, ChunkedArray] = {}
        self._chunk_shape = chunk_shape

    def capabilities(self) -> frozenset[Capability]:
        return frozenset({
            Capability.MATMUL,
            Capability.SLICE,
            Capability.AGGREGATE,
            Capability.SCAN,
        })

    # -- storage -----------------------------------------------------------------

    def store(self, name: str, array: np.ndarray, *, replace: bool = False) -> None:
        """Store a dense array under ``name``."""
        if name in self._arrays and not replace:
            raise StorageError(f"array {name!r} already exists")
        with self.metrics.timed(self.name, "store", array=name) as timer:
            chunked = ChunkedArray.from_numpy(array, self._chunk_shape)
            timer.bytes_out = chunked.nbytes
        self._arrays[name] = chunked
        self.mark_data_changed()

    def load(self, name: str) -> np.ndarray:
        """Materialize the named array."""
        return self._chunked(name).to_numpy()

    def exists(self, name: str) -> bool:
        """Whether an array is stored under ``name``."""
        return name in self._arrays

    def list_arrays(self) -> list[str]:
        """Names of stored arrays."""
        return sorted(self._arrays)

    def shape(self, name: str) -> tuple[int, int]:
        """Shape of the named array."""
        return self._chunked(name).shape

    # -- operators ---------------------------------------------------------------------

    def slice(self, name: str, row_start: int, row_stop: int,
              col_start: int, col_stop: int) -> np.ndarray:
        """Window slice of a stored array (chunk-pruned)."""
        chunked = self._chunked(name)
        with self.metrics.timed(self.name, "slice", array=name) as timer:
            result = chunked.slice(row_start, row_stop, col_start, col_stop)
            timer.bytes_out = result.nbytes
        return result

    def matmul(self, left: str | np.ndarray, right: str | np.ndarray,
               *, store_as: str | None = None) -> np.ndarray:
        """Matrix product of two arrays (stored names or dense arrays).

        Records the floating-point operation count so accelerator simulators
        can translate the same GEMM into offloaded cycles.
        """
        a = self._resolve(left)
        b = self._resolve(right)
        if a.shape[1] != b.shape[0]:
            raise StorageError(f"matmul shape mismatch: {a.shape} x {b.shape}")
        with self.metrics.timed(self.name, "matmul") as timer:
            result = a @ b
            timer.bytes_out = result.nbytes
            timer.details["flops"] = 2 * a.shape[0] * a.shape[1] * b.shape[1]
        if store_as is not None:
            self.store(store_as, result, replace=True)
        return result

    def elementwise(self, name: str, fn: Callable[[np.ndarray], np.ndarray],
                    *, store_as: str | None = None) -> np.ndarray:
        """Apply an element-wise function to a stored array."""
        array = self.load(name)
        with self.metrics.timed(self.name, "elementwise", array=name) as timer:
            result = fn(array)
            timer.bytes_out = result.nbytes
        if store_as is not None:
            self.store(store_as, result, replace=True)
        return result

    def reduce(self, name: str, *, axis: int | None = None,
               reduction: str = "sum") -> np.ndarray | float:
        """Reduce a stored array (sum/mean/min/max) along an axis or fully."""
        array = self.load(name)
        reducers = {"sum": np.sum, "mean": np.mean, "min": np.min, "max": np.max}
        if reduction not in reducers:
            raise StorageError(f"unknown reduction {reduction!r}")
        with self.metrics.timed(self.name, "reduce", array=name, reduction=reduction):
            result = reducers[reduction](array, axis=axis)
        if np.isscalar(result) or result.ndim == 0:
            return float(result)
        return result

    def statistics(self) -> dict[str, Any]:
        """Engine statistics for the catalog."""
        return {
            "arrays": len(self._arrays),
            "total_bytes": sum(a.nbytes for a in self._arrays.values()),
            "total_chunks": sum(a.num_chunks for a in self._arrays.values()),
        }

    # -- helpers --------------------------------------------------------------------------

    def _chunked(self, name: str) -> ChunkedArray:
        try:
            return self._arrays[name]
        except KeyError as exc:
            raise StorageError(f"array {name!r} does not exist") from exc

    def _resolve(self, ref: str | np.ndarray) -> np.ndarray:
        if isinstance(ref, str):
            return self.load(ref)
        return np.atleast_2d(np.asarray(ref, dtype=np.float64))
