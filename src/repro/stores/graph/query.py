"""Graph query operations: pattern matching, path finding and traversal.

These are the "match, subtree, path and join" operators the paper says
Cipher programs are lowered to (§III-A-1).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import QueryError
from repro.stores.graph.graph import Edge, Node, PropertyGraph


@dataclass(frozen=True)
class PatternStep:
    """One hop of a path pattern: an edge label and target-node constraints."""

    edge_label: str | None = None
    node_label: str | None = None
    node_filter: Callable[[Node], bool] | None = None


@dataclass
class Match:
    """One match of a pattern: the node chain and the edges between them."""

    nodes: list[Node] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)


def match_pattern(graph: PropertyGraph, start_label: str,
                  steps: list[PatternStep],
                  start_filter: Callable[[Node], bool] | None = None) -> list[Match]:
    """Find all node chains matching ``(start_label) -...-> step1 -> step2 ...``.

    The matcher expands outgoing edges only, step by step; each step may
    constrain the edge label, target-node label and target-node properties.
    """
    matches: list[Match] = []
    for start in graph.nodes(start_label):
        if start_filter is not None and not start_filter(start):
            continue
        matches.extend(_expand(graph, Match(nodes=[start]), steps))
    return matches


def _expand(graph: PropertyGraph, partial: Match, steps: list[PatternStep]) -> list[Match]:
    if not steps:
        return [partial]
    step, rest = steps[0], steps[1:]
    results: list[Match] = []
    current = partial.nodes[-1]
    for edge in graph.outgoing(current.node_id, step.edge_label):
        target = graph.node(edge.target)
        if step.node_label is not None and target.label != step.node_label:
            continue
        if step.node_filter is not None and not step.node_filter(target):
            continue
        extended = Match(nodes=partial.nodes + [target], edges=partial.edges + [edge])
        results.extend(_expand(graph, extended, rest))
    return results


def bfs_reachable(graph: PropertyGraph, start: str, *, max_depth: int | None = None,
                  edge_label: str | None = None) -> dict[str, int]:
    """Nodes reachable from ``start`` with their BFS depth."""
    if not graph.has_node(start):
        raise QueryError(f"start node {start!r} does not exist")
    depths = {start: 0}
    queue: deque[str] = deque([start])
    while queue:
        current = queue.popleft()
        depth = depths[current]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in graph.neighbors(current, edge_label):
            if neighbor not in depths:
                depths[neighbor] = depth + 1
                queue.append(neighbor)
    return depths


def shortest_path(graph: PropertyGraph, start: str, end: str, *,
                  weighted: bool = False, edge_label: str | None = None
                  ) -> tuple[list[str], float]:
    """Shortest path from ``start`` to ``end``.

    Unweighted paths use BFS (hop count); weighted paths use Dijkstra over
    the ``weight`` edge property.  Raises :class:`QueryError` when no path
    exists.
    """
    for endpoint in (start, end):
        if not graph.has_node(endpoint):
            raise QueryError(f"node {endpoint!r} does not exist")
    if start == end:
        return [start], 0.0

    # Dijkstra covers both cases; unweighted paths use unit edge costs.
    distances: dict[str, float] = {start: 0.0}
    previous: dict[str, str] = {}
    heap: list[tuple[float, str]] = [(0.0, start)]
    visited: set[str] = set()
    while heap:
        distance, current = heapq.heappop(heap)
        if current in visited:
            continue
        visited.add(current)
        if current == end:
            break
        for edge in graph.outgoing(current, edge_label):
            cost = edge.weight if weighted else 1.0
            candidate = distance + cost
            if candidate < distances.get(edge.target, float("inf")):
                distances[edge.target] = candidate
                previous[edge.target] = current
                heapq.heappush(heap, (candidate, edge.target))
    if end not in distances:
        raise QueryError(f"no path from {start!r} to {end!r}")
    path = [end]
    while path[-1] != start:
        path.append(previous[path[-1]])
    path.reverse()
    return path, distances[end]


def subtree(graph: PropertyGraph, root: str, *, edge_label: str | None = None,
            max_depth: int | None = None) -> list[str]:
    """All node ids in the subtree (DAG fan-out) rooted at ``root``."""
    return sorted(bfs_reachable(graph, root, max_depth=max_depth, edge_label=edge_label))


def neighborhood_aggregate(graph: PropertyGraph, node_id: str, property_name: str,
                           *, edge_label: str | None = None,
                           aggregation: str = "mean") -> float | None:
    """Aggregate a numeric property over a node's out-neighbours."""
    values = []
    for neighbor_id in graph.neighbors(node_id, edge_label):
        value = graph.node(neighbor_id).properties.get(property_name)
        if value is not None:
            values.append(float(value))
    if not values:
        return None
    if aggregation == "mean":
        return sum(values) / len(values)
    if aggregation == "sum":
        return float(sum(values))
    if aggregation == "min":
        return min(values)
    if aggregation == "max":
        return max(values)
    if aggregation == "count":
        return float(len(values))
    raise QueryError(f"unknown aggregation {aggregation!r}")


def degree_centrality(graph: PropertyGraph, *, top_k: int | None = None
                      ) -> list[tuple[str, int]]:
    """Nodes ranked by total degree, optionally truncated to the top ``k``."""
    ranked = sorted(
        ((node.node_id, graph.degree(node.node_id)) for node in graph.nodes()),
        key=lambda pair: (-pair[1], pair[0]),
    )
    return ranked[:top_k] if top_k is not None else ranked
