"""Property-graph storage for the graph engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.exceptions import StorageError


@dataclass
class Node:
    """A labelled vertex with arbitrary properties."""

    node_id: str
    label: str
    properties: dict[str, Any] = field(default_factory=dict)


@dataclass
class Edge:
    """A directed, labelled edge with arbitrary properties."""

    source: str
    target: str
    label: str
    properties: dict[str, Any] = field(default_factory=dict)

    @property
    def weight(self) -> float:
        """Edge weight used by weighted path finding (defaults to 1.0)."""
        return float(self.properties.get("weight", 1.0))


class PropertyGraph:
    """Adjacency-indexed property graph.

    Nodes are indexed by id and by label; edges are indexed by source and by
    target so that neighbourhood expansion in either direction is O(degree).
    """

    def __init__(self) -> None:
        self._nodes: dict[str, Node] = {}
        self._nodes_by_label: dict[str, set[str]] = {}
        self._outgoing: dict[str, list[Edge]] = {}
        self._incoming: dict[str, list[Edge]] = {}
        self._num_edges = 0

    # -- mutation ---------------------------------------------------------------

    def add_node(self, node_id: str, label: str, properties: dict[str, Any] | None = None,
                 *, replace: bool = False) -> Node:
        """Add a node; re-adding an existing id requires ``replace=True``."""
        if node_id in self._nodes and not replace:
            raise StorageError(f"node {node_id!r} already exists")
        node = Node(node_id, label, dict(properties or {}))
        if node_id in self._nodes:
            old_label = self._nodes[node_id].label
            self._nodes_by_label[old_label].discard(node_id)
        self._nodes[node_id] = node
        self._nodes_by_label.setdefault(label, set()).add(node_id)
        self._outgoing.setdefault(node_id, [])
        self._incoming.setdefault(node_id, [])
        return node

    def add_edge(self, source: str, target: str, label: str,
                 properties: dict[str, Any] | None = None) -> Edge:
        """Add a directed edge; both endpoints must exist."""
        for endpoint in (source, target):
            if endpoint not in self._nodes:
                raise StorageError(f"node {endpoint!r} does not exist")
        edge = Edge(source, target, label, dict(properties or {}))
        self._outgoing[source].append(edge)
        self._incoming[target].append(edge)
        self._num_edges += 1
        return edge

    # -- access ------------------------------------------------------------------

    def node(self, node_id: str) -> Node:
        """The node with the given id."""
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise StorageError(f"node {node_id!r} does not exist") from exc

    def has_node(self, node_id: str) -> bool:
        """Whether a node exists."""
        return node_id in self._nodes

    def nodes(self, label: str | None = None) -> Iterator[Node]:
        """All nodes, optionally restricted to one label."""
        if label is None:
            yield from self._nodes.values()
            return
        for node_id in sorted(self._nodes_by_label.get(label, ())):
            yield self._nodes[node_id]

    def edges(self, label: str | None = None) -> Iterator[Edge]:
        """All edges, optionally restricted to one label."""
        for adjacency in self._outgoing.values():
            for edge in adjacency:
                if label is None or edge.label == label:
                    yield edge

    def outgoing(self, node_id: str, label: str | None = None) -> list[Edge]:
        """Outgoing edges of a node, optionally filtered by label."""
        edges = self._outgoing.get(node_id, [])
        if label is None:
            return list(edges)
        return [e for e in edges if e.label == label]

    def incoming(self, node_id: str, label: str | None = None) -> list[Edge]:
        """Incoming edges of a node, optionally filtered by label."""
        edges = self._incoming.get(node_id, [])
        if label is None:
            return list(edges)
        return [e for e in edges if e.label == label]

    def neighbors(self, node_id: str, label: str | None = None) -> list[str]:
        """Targets of outgoing edges from a node."""
        return [edge.target for edge in self.outgoing(node_id, label)]

    def degree(self, node_id: str) -> int:
        """Out-degree plus in-degree of a node."""
        return len(self._outgoing.get(node_id, [])) + len(self._incoming.get(node_id, []))

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return self._num_edges

    def labels(self) -> list[str]:
        """All node labels present in the graph."""
        return sorted(label for label, ids in self._nodes_by_label.items() if ids)
