"""The graph data-processing engine.

Wraps :class:`~repro.stores.graph.graph.PropertyGraph` with the engine
interface: pattern matching, shortest paths, neighbourhood expansion and
subtree extraction, all with metrics recording for the middleware optimizer.
The MIMIC workload stores patient ward transfers here; the recommendation
workload stores the customer/product interaction graph here.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.stores.base import Capability, Concurrency, DataModel, Engine
from repro.stores.graph.graph import Edge, Node, PropertyGraph
from repro.stores.graph.query import (
    Match,
    PatternStep,
    bfs_reachable,
    degree_centrality,
    match_pattern,
    neighborhood_aggregate,
    shortest_path,
    subtree,
)


class GraphEngine(Engine):
    """A property-graph store with pattern and path queries."""

    data_model = DataModel.GRAPH
    concurrency = Concurrency.THREAD_SAFE

    def __init__(self, name: str = "graph") -> None:
        super().__init__(name)
        self.graph = PropertyGraph()

    def capabilities(self) -> frozenset[Capability]:
        return frozenset({
            Capability.PATTERN_MATCH,
            Capability.SHORTEST_PATH,
            Capability.NEIGHBORHOOD,
            Capability.SCAN,
            Capability.FILTER,
        })

    # -- writes -----------------------------------------------------------------

    def add_node(self, node_id: str, label: str,
                 properties: dict[str, Any] | None = None) -> Node:
        """Add one node."""
        node = self.graph.add_node(node_id, label, properties)
        self.mark_data_changed()
        return node

    def add_edge(self, source: str, target: str, label: str,
                 properties: dict[str, Any] | None = None) -> Edge:
        """Add one directed edge."""
        edge = self.graph.add_edge(source, target, label, properties)
        self.mark_data_changed()
        return edge

    def load_nodes(self, nodes: list[dict[str, Any]], *, label_key: str = "label",
                   id_key: str = "node_id") -> int:
        """Bulk-load nodes from dictionaries; returns the count loaded."""
        with self.metrics.timed(self.name, "load_nodes") as timer:
            for record in nodes:
                properties = {k: v for k, v in record.items() if k not in (label_key, id_key)}
                self.graph.add_node(str(record[id_key]), str(record[label_key]), properties)
            timer.rows_in = len(nodes)
        if nodes:
            self.mark_data_changed()
        return len(nodes)

    def load_edges(self, edges: list[dict[str, Any]]) -> int:
        """Bulk-load edges from ``{"source", "target", "label", ...}`` dictionaries."""
        with self.metrics.timed(self.name, "load_edges") as timer:
            for record in edges:
                properties = record.get("properties") or {
                    k: v for k, v in record.items()
                    if k not in ("source", "target", "label", "properties")
                }
                self.graph.add_edge(str(record["source"]), str(record["target"]),
                                    str(record.get("label", "related")), properties)
            timer.rows_in = len(edges)
        if edges:
            self.mark_data_changed()
        return len(edges)

    # -- queries ----------------------------------------------------------------------

    def match(self, start_label: str, steps: list[PatternStep],
              start_filter: Callable[[Node], bool] | None = None) -> list[Match]:
        """Pattern matching starting from nodes with ``start_label``."""
        with self.metrics.timed(self.name, "pattern_match", label=start_label) as timer:
            matches = match_pattern(self.graph, start_label, steps, start_filter)
            timer.rows_out = len(matches)
        return matches

    def shortest_path(self, start: str, end: str, *, weighted: bool = False,
                      edge_label: str | None = None) -> tuple[list[str], float]:
        """Shortest path between two nodes."""
        with self.metrics.timed(self.name, "shortest_path") as timer:
            path, cost = shortest_path(self.graph, start, end, weighted=weighted,
                                       edge_label=edge_label)
            timer.rows_out = len(path)
        return path, cost

    def reachable(self, start: str, *, max_depth: int | None = None,
                  edge_label: str | None = None) -> dict[str, int]:
        """BFS reachability with depths."""
        return bfs_reachable(self.graph, start, max_depth=max_depth, edge_label=edge_label)

    def subtree(self, root: str, *, edge_label: str | None = None,
                max_depth: int | None = None) -> list[str]:
        """Node ids reachable from ``root``."""
        return subtree(self.graph, root, edge_label=edge_label, max_depth=max_depth)

    def neighborhood_aggregate(self, node_id: str, property_name: str, *,
                               edge_label: str | None = None,
                               aggregation: str = "mean") -> float | None:
        """Aggregate a property over a node's neighbours."""
        return neighborhood_aggregate(self.graph, node_id, property_name,
                                      edge_label=edge_label, aggregation=aggregation)

    def central_nodes(self, top_k: int = 10) -> list[tuple[str, int]]:
        """The ``top_k`` highest-degree nodes."""
        with self.metrics.timed(self.name, "degree_centrality") as timer:
            ranked = degree_centrality(self.graph, top_k=top_k)
            timer.rows_out = len(ranked)
        return ranked

    def node_properties(self, label: str) -> list[dict[str, Any]]:
        """All nodes of a label as flat property dictionaries (for migration)."""
        return [
            {"node_id": node.node_id, "label": node.label, **node.properties}
            for node in self.graph.nodes(label)
        ]

    def statistics(self) -> dict[str, Any]:
        """Engine statistics for the catalog."""
        return {
            "nodes": self.graph.num_nodes,
            "edges": self.graph.num_edges,
            "labels": self.graph.labels(),
        }
