"""Graph store: property graph with pattern matching and path queries."""

from repro.stores.graph.engine import GraphEngine
from repro.stores.graph.graph import Edge, Node, PropertyGraph
from repro.stores.graph.query import (
    Match,
    PatternStep,
    bfs_reachable,
    degree_centrality,
    match_pattern,
    neighborhood_aggregate,
    shortest_path,
    subtree,
)

__all__ = [
    "GraphEngine",
    "PropertyGraph",
    "Node",
    "Edge",
    "Match",
    "PatternStep",
    "match_pattern",
    "shortest_path",
    "bfs_reachable",
    "subtree",
    "neighborhood_aggregate",
    "degree_centrality",
]
