"""The key/value data-processing engine.

A small LSM-style store: writes land in a write-ahead log and a memtable;
full memtables are frozen into immutable SSTables; reads check the memtable
first and then SSTables newest-to-oldest; an explicit :meth:`compact`
size-tiers adjacent SSTables (``full=True`` merges everything into one).
The recommendation workload of the paper's Figure 1 uses it for user
profiles and external events.

When a durability manager is attached (:meth:`attach_spill`), frozen
SSTables spill to disk and flush/compact trigger checkpoints — the
previously in-memory-only SSTable path becomes the persistent level of the
store.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.exceptions import StorageError
from repro.stores.base import Capability, Concurrency, DataModel, Engine
from repro.stores.changelog import kv_scope
from repro.stores.keyvalue.memtable import TOMBSTONE, MemTable
from repro.stores.keyvalue.sstable import SSTable, merge_sstables


class KeyValueEngine(Engine):
    """An LSM-style key/value store with point and range reads."""

    data_model = DataModel.KEY_VALUE
    concurrency = Concurrency.THREAD_SAFE

    def __init__(self, name: str = "keyvalue", *, memtable_capacity: int = 1024) -> None:
        super().__init__(name)
        self._memtable = MemTable(memtable_capacity)
        self._sstables: list[SSTable] = []
        self._wal: list[tuple[str, str, Any]] = []
        #: Durability spill sink (``flushed``/``compacted``/``spill_sstable``);
        #: ``None`` keeps the engine fully in-memory.
        self._spill: Any = None

    def attach_spill(self, sink: Any) -> None:
        """Install (or with ``None`` remove) the durability spill sink."""
        self._spill = sink

    def capabilities(self) -> frozenset[Capability]:
        return frozenset({
            Capability.POINT_LOOKUP,
            Capability.RANGE_SCAN,
            Capability.SCAN,
        })

    # -- writes -----------------------------------------------------------------

    def _live_value(self, key: str, default: Any = None) -> Any:
        """Current live value without recording read metrics (write path)."""
        found, value = self._memtable.get(key)
        if not found:
            for sstable in reversed(self._sstables):
                found, value = sstable.get(key)
                if found:
                    break
        if not found or value is TOMBSTONE:
            return default
        return value

    def put(self, key: str, value: Any) -> None:
        """Insert or overwrite ``key``."""
        sentinel = object()
        previous = self._live_value(key, sentinel)
        self._wal.append(("put", key, value))
        self._memtable.put(key, value)
        entries: list[tuple[Any, int]] = []
        if previous is not sentinel:
            entries.append(((key, previous), -1))
        entries.append(((key, value), 1))
        self.mark_data_changed(kv_scope(), entries=entries,
                               op=("put", {"key": key, "value": value}))
        if self._memtable.is_full:
            self.flush()

    def put_many(self, items: dict[str, Any]) -> None:
        """Insert or overwrite many keys."""
        with self.metrics.timed(self.name, "put_many") as timer:
            for key, value in items.items():
                self.put(key, value)
            timer.rows_in = len(items)

    def delete(self, key: str) -> None:
        """Delete ``key`` (tombstoned until the next compaction)."""
        sentinel = object()
        previous = self._live_value(key, sentinel)
        self._wal.append(("delete", key, None))
        self._memtable.delete(key)
        entries = [((key, previous), -1)] if previous is not sentinel else []
        self.mark_data_changed(kv_scope(), entries=entries,
                               op=("delete", {"key": key}))
        if self._memtable.is_full:
            self.flush()

    # repro: allow(changelog-contract): structural reorganization; logical content unchanged
    def flush(self) -> None:
        """Freeze the memtable into a new SSTable (spilled when durable)."""
        if len(self._memtable) == 0:
            return
        self._sstables.append(SSTable.from_memtable(self._memtable))
        self._memtable.clear()
        if self._spill is not None:
            self._spill.flushed(self)

    # repro: allow(changelog-contract): merges SSTables in place; logical content unchanged
    def compact(self, *, full: bool = False) -> None:
        """Merge SSTables, discarding shadowed entries.

        The default is an incremental, size-tiered pass: the newest pair of
        adjacent SSTables merges only when the newer one has reached at
        least half the older one's size, cascading downward — a small fresh
        flush never forces a rewrite of a large old run.  Tombstones
        survive a partial merge while an older level still holds their key
        (see :func:`merge_sstables`).  ``full=True`` rewrites everything
        into a single tombstone-free SSTable.
        """
        self.flush()
        if len(self._sstables) <= 1:
            return
        with self.metrics.timed(self.name, "compact", full=full) as timer:
            if full:
                merged = merge_sstables(self._sstables)
                self._sstables = [merged]
                timer.rows_out = len(merged)
            else:
                i = len(self._sstables) - 1
                while i >= 1:
                    older, newer = self._sstables[i - 1], self._sstables[i]
                    if len(newer) * 2 >= len(older):
                        combined = merge_sstables(
                            [older, newer], older=self._sstables[:i - 1])
                        self._sstables[i - 1:i + 1] = [combined]
                        timer.rows_out += len(combined)
                    i -= 1
        if self._spill is not None:
            self._spill.compacted(self)

    # -- reads -------------------------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        """Value for ``key``, or ``default`` when missing or deleted."""
        sentinel = object()
        with self.metrics.timed(self.name, "get", key=key) as timer:
            value = self._live_value(key, sentinel)
            timer.rows_out = 0 if value is sentinel else 1
        return default if value is sentinel else value

    def multi_get(self, keys: list[str]) -> dict[str, Any]:
        """Values for several keys; missing keys are omitted."""
        out: dict[str, Any] = {}
        for key in keys:
            sentinel = object()
            value = self.get(key, sentinel)
            if value is not sentinel:
                out[key] = value
        return out

    def contains(self, key: str) -> bool:
        """Whether ``key`` currently has a live value."""
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def range(self, start: str | None = None, end: str | None = None) -> Iterator[tuple[str, Any]]:
        """Live entries with ``start <= key < end`` in key order."""
        with self.metrics.timed(self.name, "range", start=start, end=end) as timer:
            merged: dict[str, Any] = {}
            for sstable in self._sstables:
                for key, value in sstable.range(start, end):
                    merged[key] = value
            for key, value in self._memtable.items():
                if (start is None or key >= start) and (end is None or key < end):
                    merged[key] = value
            live = [(k, v) for k, v in sorted(merged.items()) if v is not TOMBSTONE]
            timer.rows_out = len(live)
        yield from live

    def scan(self) -> Iterator[tuple[str, Any]]:
        """Every live entry in key order."""
        yield from self.range(None, None)

    def keys(self) -> list[str]:
        """All live keys in order."""
        return [key for key, _ in self.scan()]

    # -- recovery and statistics -----------------------------------------------------

    def recover_from_wal(self) -> "KeyValueEngine":
        """Rebuild a fresh engine by replaying this engine's write-ahead log."""
        replayed = KeyValueEngine(f"{self.name}-recovered",
                                  memtable_capacity=self._memtable.capacity)
        for op, key, value in self._wal:
            if op == "put":
                replayed.put(key, value)
            elif op == "delete":
                replayed.delete(key)
            else:
                raise StorageError(f"unknown WAL record {op!r}")
        return replayed

    def statistics(self) -> dict[str, Any]:
        """Engine statistics for the catalog."""
        return {
            "memtable_entries": len(self._memtable),
            "sstables": len(self._sstables),
            "sstable_entries": sum(len(t) for t in self._sstables),
            "wal_records": len(self._wal),
            "live_keys": len(self.keys()),
        }

    def __len__(self) -> int:
        return len(self.keys())
