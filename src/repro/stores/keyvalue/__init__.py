"""Key/value store: LSM-style engine with memtable, SSTables and WAL."""

from repro.stores.keyvalue.engine import KeyValueEngine
from repro.stores.keyvalue.memtable import MemTable
from repro.stores.keyvalue.sstable import SSTable, merge_sstables

__all__ = ["KeyValueEngine", "MemTable", "SSTable", "merge_sstables"]
