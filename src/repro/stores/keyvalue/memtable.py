"""In-memory write buffer for the key/value engine.

The memtable absorbs writes until it reaches a size threshold, at which
point the engine flushes it into an immutable :class:`~repro.stores.keyvalue.sstable.SSTable`.
Deletions are recorded as tombstones so that a later flush can shadow older
SSTable entries, as in any LSM-style store.
"""

from __future__ import annotations

from typing import Any, Iterator

#: Sentinel stored for deleted keys.
TOMBSTONE = object()


class MemTable:
    """A sorted-on-demand in-memory map of key to value (or tombstone)."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: dict[str, Any] = {}

    def put(self, key: str, value: Any) -> None:
        """Insert or overwrite ``key``."""
        self._entries[key] = value

    def delete(self, key: str) -> None:
        """Record a tombstone for ``key``."""
        self._entries[key] = TOMBSTONE

    def get(self, key: str) -> tuple[bool, Any]:
        """Return ``(found, value)``; ``value`` may be the tombstone sentinel."""
        if key in self._entries:
            return True, self._entries[key]
        return False, None

    def items(self) -> Iterator[tuple[str, Any]]:
        """All entries sorted by key (tombstones included)."""
        for key in sorted(self._entries):
            yield key, self._entries[key]

    @property
    def is_full(self) -> bool:
        """Whether the memtable has reached its flush threshold."""
        return len(self._entries) >= self.capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop every entry (after a flush)."""
        self._entries.clear()
