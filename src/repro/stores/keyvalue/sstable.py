"""Immutable sorted runs for the key/value engine."""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from repro.stores.keyvalue.memtable import TOMBSTONE, MemTable


class SSTable:
    """A sorted, immutable array of ``(key, value)`` entries.

    Values may be the tombstone sentinel, meaning "deleted at this level".
    Lookups use binary search; range scans slice the sorted key array.
    """

    def __init__(self, entries: list[tuple[str, Any]]) -> None:
        self._keys = [key for key, _ in entries]
        self._values = [value for _, value in entries]
        if self._keys != sorted(self._keys):
            raise ValueError("SSTable entries must be sorted by key")

    @classmethod
    def from_memtable(cls, memtable: MemTable) -> "SSTable":
        """Freeze a memtable into an SSTable."""
        return cls(list(memtable.items()))

    def get(self, key: str) -> tuple[bool, Any]:
        """Return ``(found, value)`` for ``key``."""
        pos = bisect.bisect_left(self._keys, key)
        if pos < len(self._keys) and self._keys[pos] == key:
            return True, self._values[pos]
        return False, None

    def range(self, start: str | None = None, end: str | None = None) -> Iterator[tuple[str, Any]]:
        """Entries with ``start <= key < end`` (open ends allowed)."""
        lo = 0 if start is None else bisect.bisect_left(self._keys, start)
        hi = len(self._keys) if end is None else bisect.bisect_left(self._keys, end)
        for i in range(lo, hi):
            yield self._keys[i], self._values[i]

    def items(self) -> Iterator[tuple[str, Any]]:
        """All entries in key order."""
        yield from zip(self._keys, self._values)

    @property
    def min_key(self) -> str | None:
        """Smallest key, or ``None`` when empty."""
        return self._keys[0] if self._keys else None

    @property
    def max_key(self) -> str | None:
        """Largest key, or ``None`` when empty."""
        return self._keys[-1] if self._keys else None

    def __len__(self) -> int:
        return len(self._keys)


def merge_sstables(tables: list[SSTable],
                   older: list[SSTable] | None = None) -> SSTable:
    """Compact several SSTables into one, newest table winning per key.

    Tombstone handling follows Z-set annihilation: a tombstone (weight
    ``-1``) cancels the entry it shadows.  With ``older=None`` (a full
    compaction — nothing exists below the merged tables) every tombstone
    has annihilated its target and is dropped.  When ``older`` names the
    SSTables *below* the merge inputs, a tombstone whose key still exists
    at one of those levels must be kept — dropping it would resurrect the
    shadowed value; only tombstones for keys absent from every older level
    are dropped.
    """
    merged: dict[str, Any] = {}
    # Oldest first so that newer tables overwrite older entries.
    for table in tables:
        for key, value in table.items():
            merged[key] = value

    def keep(key: str, value: Any) -> bool:
        if value is not TOMBSTONE:
            return True
        if older is None:
            return False
        return any(table.get(key)[0] for table in older)

    return SSTable([(key, value) for key, value in sorted(merged.items())
                    if keep(key, value)])
