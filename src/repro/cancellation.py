"""Cooperative cancellation tokens shared by the client and serving layers.

A :class:`CancellationToken` carries two abort signals for one request — an
explicit *cancel* (set by a caller, a server-side ``cancel`` command, or a
client disconnect) and an optional *deadline* — and is checked cooperatively
at the executor's checkpoints: before every stage, at every operator start,
and before each shard subtask is dispatched by scatter-gather.  Work between
checkpoints runs to completion; everything after the first failing check is
never started, so a cancelled scatter fan-out stops dispatching the
remaining shard subtasks instead of finishing the whole read.

Tokens are cheap (a few attribute reads per :meth:`check`) and thread-safe:
the flag is written by whichever thread cancels and read by executor worker
threads without locking — a single boolean store is atomic under the GIL,
and the consumers tolerate the benign race of one extra subtask slipping
through a just-set flag.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.exceptions import CancelledError, DeadlineExceededError


class CancellationToken:
    """One request's abort state: an explicit cancel flag plus a deadline."""

    __slots__ = ("_cancelled", "_reason", "_deadline", "_clock")

    def __init__(self, *, deadline_s: float | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if deadline_s is not None and deadline_s < 0:
            raise ValueError("deadline_s must be non-negative")
        self._clock = clock
        self._cancelled = False
        self._reason: str | None = None
        self._deadline = None if deadline_s is None else clock() + deadline_s

    # -- signalling ----------------------------------------------------------------------

    def cancel(self, reason: str = "cancelled") -> None:
        """Set the explicit cancel flag (idempotent; first reason wins)."""
        if not self._cancelled:
            self._reason = reason
            self._cancelled = True

    def add_deadline(self, deadline_s: float) -> "CancellationToken":
        """Tighten the deadline to at most ``deadline_s`` from now.

        A token can only become more urgent: an existing earlier deadline is
        kept.  Returns ``self`` for chaining.
        """
        if deadline_s < 0:
            raise ValueError("deadline_s must be non-negative")
        candidate = self._clock() + deadline_s
        if self._deadline is None or candidate < self._deadline:
            self._deadline = candidate
        return self

    # -- inspection ----------------------------------------------------------------------

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called (deadline expiry not included)."""
        return self._cancelled

    @property
    def reason(self) -> str | None:
        """The reason passed to the first :meth:`cancel` call, if any."""
        return self._reason

    @property
    def deadline_s(self) -> float | None:
        """Absolute deadline on the token's clock, or ``None``."""
        return self._deadline

    def remaining_s(self) -> float | None:
        """Seconds until the deadline (``None`` without one, floored at 0)."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - self._clock())

    def expired(self) -> bool:
        """Whether the deadline has passed."""
        return self._deadline is not None and self._clock() >= self._deadline

    def aborted(self) -> bool:
        """Whether :meth:`check` would raise (cancelled or expired)."""
        return self._cancelled or self.expired()

    # -- the checkpoint ------------------------------------------------------------------

    def check(self) -> None:
        """Raise if the request should stop; the executor's checkpoint call.

        Raises :class:`~repro.exceptions.CancelledError` on an explicit
        cancel and :class:`~repro.exceptions.DeadlineExceededError` (a
        subclass) on an expired deadline.  Explicit cancels win when both
        hold — the caller already knows it gave up.
        """
        if self._cancelled:
            raise CancelledError(self._reason or "cancelled")
        if self.expired():
            raise DeadlineExceededError("deadline exceeded")

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else (
            "expired" if self.expired() else "live")
        return f"CancellationToken({state}, remaining={self.remaining_s()})"
