"""changelog-contract: every public engine mutator must emit its delta.

The incremental-view machinery (and the durability WAL riding on the same
stream) is only correct if **every** mutation of engine state is described
to the changelog: a mutator that forgets ``mark_data_changed`` (or, for
changelog-bypassing DDL, ``emit_durability_meta``) silently diverges every
materialized view and breaks crash recovery — the worst kind of bug,
because nothing fails at the write site.

The rule applies to engine classes in ``src/repro/stores/*/engine.py`` and
``src/repro/cluster/sharded.py``.  A *public* method counts as a mutator
when it writes ``self`` state (attribute/subscript assignment, or a
mutating call like ``self._wal.append(...)``) or writes through a local
that was derived from ``self`` state (``owner = self._shards[i];
owner.put(...)``).  It satisfies the contract when it reaches
``mark_data_changed`` / ``emit_durability_meta`` — directly, or through a
same-class helper it calls (e.g. routed writes through the
``_routed_write`` context manager).

Maintenance operations that reorganize storage without changing logical
content (flush, compact) are expected to carry an explicit
``# repro: allow(changelog-contract): <why>`` pragma — the exemption
should be visible at the definition, not buried in the checker.  Only
attach/detach/recover lifecycle hooks are exempt by name.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.core import (
    AnalysisContext,
    Finding,
    Rule,
    SourceFile,
    attr_chain,
    register,
    walk_scope,
)

#: Method names that mutate their receiver in-place.
MUTATING_CALLS = frozenset({
    "append", "appendleft", "add", "insert", "extend", "remove", "discard",
    "pop", "popitem", "popleft", "clear", "update", "setdefault", "put",
    "delete", "write", "push",
})

#: ``self.<attr>`` chains that are bookkeeping, not engine data state.
_BOOKKEEPING_ATTRS = frozenset({"metrics", "changelog", "name"})

#: Calls that satisfy the contract directly.
_MARKING_CALLS = frozenset({"mark_data_changed", "emit_durability_meta"})

#: Lifecycle hooks exempt by name: they wire sinks or rebuild state through
#: the public (marking) API rather than mutating logical data.
_EXEMPT_NAME_RE = re.compile(r"^(attach_|detach_|recover_)")

#: Files the contract applies to.
_ENGINE_FILE_RE = re.compile(
    r"(stores/[^/]+/engine\.py|cluster/sharded\.py)$")


def _is_engine_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        chain = attr_chain(base)
        if chain and chain[-1].endswith("Engine"):
            return True
    return False


def _self_data_chain(node: ast.AST) -> list[str] | None:
    """Attr chain rooted at ``self`` that names data state (else ``None``)."""
    chain = attr_chain(node)
    if (chain and len(chain) >= 2 and chain[0] == "self"
            and chain[1] not in _BOOKKEEPING_ATTRS):
        return chain
    return None


class _MethodScan:
    """Classify one method: does it mutate, does it mark, whom does it call."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.mutates: int | None = None  # line of the first mutation
        self.marks = False
        self.callees: set[str] = set()
        #: Locals holding values derived from self data state.  Collected
        #: in a first pass (the walk is not in source order, and taint is
        #: flow-insensitive anyway).
        self._tainted: set[str] = set()
        nodes = list(walk_scope(func))
        for node in nodes:
            self._collect_taint(node)
        for node in nodes:
            self._scan(node)

    def _collect_taint(self, node: ast.AST) -> None:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            if node.value is not None and self._derives_from_self(node.value):
                for target in targets:
                    for name in self._target_names(target):
                        self._tainted.add(name)
        elif isinstance(node, ast.withitem):
            # ``with self._routed_write() as relay:`` taints ``relay``.
            if (node.optional_vars is not None
                    and isinstance(node.optional_vars, ast.Name)
                    and isinstance(node.context_expr, ast.Call)
                    and self._derives_from_self(node.context_expr)):
                self._tainted.add(node.optional_vars.id)

    def _scan(self, node: ast.AST) -> None:
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                self._scan_target(target, node)
        elif isinstance(node, ast.Call):
            self._scan_call(node)

    def _scan_target(self, target: ast.AST, stmt: ast.stmt) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._scan_target(element, stmt)
            return
        if _self_data_chain(target) is not None:
            if self.mutates is None:
                self.mutates = stmt.lineno

    def _target_names(self, target: ast.AST) -> list[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            names: list[str] = []
            for element in target.elts:
                names.extend(self._target_names(element))
            return names
        return []

    def _derives_from_self(self, expr: ast.AST) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, (ast.Attribute, ast.Name)):
                if _self_data_chain(node) is not None:
                    return True
        return False

    def _scan_call(self, call: ast.Call) -> None:
        chain = attr_chain(call.func)
        if chain is None:
            return
        terminal = chain[-1]
        if chain[0] == "self":
            if len(chain) == 2:
                self.callees.add(terminal)
                if terminal in _MARKING_CALLS:
                    self.marks = True
                return
            if chain[1] == "changelog" and terminal in ("append", "mark_gap"):
                self.marks = True
                return
            if (terminal in MUTATING_CALLS
                    and chain[1] not in _BOOKKEEPING_ATTRS):
                if self.mutates is None:
                    self.mutates = call.lineno
            return
        # A mutating call through a local derived from self data state
        # (``owner = self._shards[i]; owner.put(...)``).
        if (chain[0] in self._tainted and len(chain) >= 2
                and terminal in MUTATING_CALLS):
            if self.mutates is None:
                self.mutates = call.lineno


class ChangelogContractRule(Rule):
    id = "changelog-contract"
    description = (
        "public engine mutators must reach mark_data_changed / "
        "emit_durability_meta (directly or via a same-class helper)")

    def check(self, source: SourceFile,
              context: AnalysisContext) -> Iterable[Finding]:
        if source.tree is None or not _ENGINE_FILE_RE.search(source.rel_path):
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and _is_engine_class(node):
                yield from self._check_class(source, node)

    def _check_class(self, source: SourceFile,
                     cls: ast.ClassDef) -> Iterable[Finding]:
        funcs = [child for child in cls.body
                 if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))]
        scans = {func.name: _MethodScan(func) for func in funcs}
        # Propagate "marks" through the same-class call graph.
        marking = {name for name, scan in scans.items() if scan.marks}
        changed = True
        while changed:
            changed = False
            for name, scan in scans.items():
                if name in marking:
                    continue
                if scan.callees & marking:
                    marking.add(name)
                    changed = True
        for func in funcs:
            name = func.name
            if name.startswith("_"):
                continue
            if _EXEMPT_NAME_RE.match(name):
                continue
            if any(isinstance(dec, ast.Name) and dec.id == "property"
                   for dec in func.decorator_list):
                continue
            scan = scans[name]
            if scan.mutates is not None and name not in marking:
                yield self.finding(source, func, (
                    f"{cls.name}.{name} mutates engine state (line "
                    f"{scan.mutates}) but never reaches mark_data_changed/"
                    f"emit_durability_meta — views and durable replay will "
                    f"silently diverge; emit the delta batch, or pragma "
                    f"with a reason if the mutation does not change "
                    f"logical content"))


register(ChangelogContractRule())
