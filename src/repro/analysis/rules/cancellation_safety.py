"""cancellation-safety: dispatch code must not swallow cancellation.

Cooperative cancellation only works if ``CancelledError`` /
``DeadlineExceededError`` propagate from the cancellation checkpoints back
to the caller that owns the request.  A broad ``except Exception`` in the
dispatch path (the serving tier, the executor's stage scheduler, the
scatter-gather fan-out) quietly converts "this request was cancelled" into
"this request failed (or worse, succeeded with partial work)" — the serve
tier then reports INTERNAL instead of CANCELLED, retries fire, and
execution slots leak.

The rule flags ``except Exception``, ``except BaseException`` and bare
``except:`` handlers in dispatch code (``serve/``,
``middleware/executor/``, ``cluster/scatter.py``) and in any ``async
def`` anywhere, unless:

* an earlier handler of the same ``try`` catches ``CancelledError`` or
  ``DeadlineExceededError`` explicitly (the PR-8 pattern in
  ``_run_on_slot``), or
* the handler body contains a ``raise`` (re-raise or translate-and-raise
  both keep control flowing).

``except BaseException`` / bare ``except`` are held to the stricter bar:
only a ``raise`` excuses them, because ``asyncio.CancelledError`` derives
from ``BaseException`` and sails past any earlier ``Exception``-level
handler.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.core import (
    AnalysisContext,
    Finding,
    Rule,
    SourceFile,
    attr_chain,
    register,
)

_DISPATCH_PATH_RE = re.compile(
    r"(^|/)(serve/|middleware/executor/)|cluster/scatter\.py$")

_CANCEL_NAMES = frozenset({"CancelledError", "DeadlineExceededError"})


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    """Terminal names of the exception types one handler catches."""
    if handler.type is None:
        return {"<bare>"}
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    names: set[str] = set()
    for node in types:
        chain = attr_chain(node)
        if chain:
            names.add(chain[-1])
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise)
               for stmt in handler.body for node in ast.walk(stmt))


class CancellationSafetyRule(Rule):
    id = "cancellation-safety"
    description = (
        "broad except handlers in async/dispatch code must not swallow "
        "CancelledError/DeadlineExceededError")

    def check(self, source: SourceFile,
              context: AnalysisContext) -> Iterable[Finding]:
        if source.tree is None:
            return
        whole_file = bool(_DISPATCH_PATH_RE.search(source.rel_path))
        # Collect the line spans of async defs so a try in one is in scope
        # even outside dispatch files.
        async_spans: list[tuple[int, int]] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                async_spans.append((node.lineno, node.end_lineno or node.lineno))
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Try):
                continue
            if not whole_file and not any(
                    lo <= node.lineno <= hi for lo, hi in async_spans):
                continue
            yield from self._check_try(source, node)

    def _check_try(self, source: SourceFile,
                   node: ast.Try) -> Iterable[Finding]:
        cancel_handled = False
        for handler in node.handlers:
            names = _handler_names(handler)
            if names & _CANCEL_NAMES:
                cancel_handled = True
                continue
            broad_base = bool(names & {"BaseException", "<bare>"})
            broad = broad_base or "Exception" in names
            if not broad:
                continue
            if _reraises(handler):
                continue
            if cancel_handled and not broad_base:
                continue
            caught = ("bare except" if "<bare>" in names
                      else f"except {'BaseException' if broad_base else 'Exception'}")
            hint = ("re-raise inside the handler"
                    if broad_base else
                    "add 'except (CancelledError, DeadlineExceededError): "
                    "raise' before it (or re-raise inside the handler)")
            yield self.finding(source, handler, (
                f"{caught} in dispatch code swallows cancellation — a "
                f"cancelled request would be reported as an ordinary "
                f"failure and leak its slot; {hint}"))


register(CancellationSafetyRule())
