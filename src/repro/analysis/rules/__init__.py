"""The project rules; importing this package registers all of them.

Adding a rule: create a module here that subclasses
:class:`repro.analysis.core.Rule`, calls
:func:`repro.analysis.core.register` at import time, and import it below.
Document it in DESIGN.md ("Concurrency invariants & static checks") and
give it positive/negative fixture tests in ``tests/analysis/``.
"""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    async_hygiene,
    cancellation_safety,
    changelog_contract,
    lock_discipline,
    obs_taxonomy,
)

__all__ = [
    "async_hygiene",
    "cancellation_safety",
    "changelog_contract",
    "lock_discipline",
    "obs_taxonomy",
]
