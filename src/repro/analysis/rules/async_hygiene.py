"""async-hygiene: the serving tier's event loop must never block.

Every coroutine in ``src/repro/serve/`` runs on the server's single event
loop thread, which owns all admission/coalescing state — one blocking call
inside an ``async def`` stalls every connected client at once.  The rule
flags, inside ``async def`` bodies in serve code:

* ``time.sleep(...)`` — use ``await asyncio.sleep(...)``;
* synchronous file or socket I/O (``open``/``os.open``, ``socket.*``
  constructors, ``recv``/``sendall``/``accept``/``connect`` calls) — use
  asyncio streams or hand the work to the session-pool workers;
* holding or acquiring a thread lock (``with self._lock:`` or an
  ``.acquire()`` without a timeout) — loop-thread state must be owned by
  the loop thread, not locked (see ``serve/server.py``'s design), and an
  unbounded acquire can freeze the loop behind a worker thread.

Nested synchronous ``def``s inside a coroutine are skipped: they execute
when called, typically from a worker thread (e.g. response-delivery
closures), not on the loop.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.core import (
    AnalysisContext,
    Finding,
    Rule,
    SourceFile,
    attr_chain,
    register,
    walk_scope,
)

_SERVE_PATH_RE = re.compile(r"(^|/)serve/")
_LOCKISH_RE = re.compile(r"lock|mutex|sem", re.IGNORECASE)

#: Socket methods that block the calling thread.
_BLOCKING_SOCKET_CALLS = frozenset({
    "recv", "recv_into", "recvfrom", "sendall", "accept", "connect",
    "connect_ex",
})


def _is_lockish(expr: ast.AST) -> bool:
    chain = attr_chain(expr)
    return bool(chain and _LOCKISH_RE.search(chain[-1]))


class AsyncHygieneRule(Rule):
    id = "async-hygiene"
    description = (
        "no blocking sleep, sync I/O, or thread-lock waits inside "
        "async def in the serving tier")

    def check(self, source: SourceFile,
              context: AnalysisContext) -> Iterable[Finding]:
        if source.tree is None or not _SERVE_PATH_RE.search(source.rel_path):
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(source, node)

    def _check_coroutine(self, source: SourceFile,
                         func: ast.AsyncFunctionDef) -> Iterable[Finding]:
        where = f"async {func.name}"
        for node in walk_scope(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if _is_lockish(item.context_expr):
                        chain = attr_chain(item.context_expr)
                        yield self.finding(source, item.context_expr, (
                            f"{where} holds thread lock "
                            f"{'.'.join(chain or ['?'])!r} on the event "
                            f"loop; loop-thread state must be loop-owned, "
                            f"not locked"))
                continue
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            dotted = ".".join(chain)
            if dotted == "time.sleep":
                yield self.finding(source, node, (
                    f"{where} calls time.sleep(), blocking the event "
                    f"loop; use 'await asyncio.sleep(...)'"))
            elif dotted in ("open", "os.open", "io.open"):
                yield self.finding(source, node, (
                    f"{where} performs synchronous file I/O ({dotted}); "
                    f"run it in a worker via run_in_executor"))
            elif chain[0] == "socket" and len(chain) == 2:
                yield self.finding(source, node, (
                    f"{where} creates a blocking socket ({dotted}); use "
                    f"asyncio streams"))
            elif (len(chain) >= 2 and chain[-1] in _BLOCKING_SOCKET_CALLS
                  and not isinstance(node.func, ast.Name)):
                yield self.finding(source, node, (
                    f"{where} calls blocking socket method "
                    f".{chain[-1]}(); use asyncio streams"))
            elif (chain[-1] == "acquire" and len(chain) >= 2
                  and _LOCKISH_RE.search(chain[-2])):
                if not self._bounded_acquire(node):
                    yield self.finding(source, node, (
                        f"{where} may block the event loop on an "
                        f"unbounded {'.'.join(chain[:-1])}.acquire(); "
                        f"pass a timeout or keep lock waits off the loop"))

    @staticmethod
    def _bounded_acquire(call: ast.Call) -> bool:
        for keyword in call.keywords:
            if keyword.arg == "timeout":
                return True
        if call.args:
            first = call.args[0]
            # ``acquire(False)`` / ``acquire(blocking=False)`` never block.
            if isinstance(first, ast.Constant) and first.value is False:
                return True
        return any(keyword.arg == "blocking"
                   and isinstance(keyword.value, ast.Constant)
                   and keyword.value.value is False
                   for keyword in call.keywords)


register(AsyncHygieneRule())
