"""obs-taxonomy: call sites must use registered metric families and spans.

The observability contract has two halves:

* **Metric families** are pre-registered once, as attributes of
  ``Observability`` in ``src/repro/obs/__init__.py``; instrumented hot
  paths do one attribute access per event.  A typo at a call site
  (``obs.serve_reject_total`` for ``serve_rejects_total``) raises
  ``AttributeError`` only on the first event that executes that line —
  typically in production, under load.  The rule parses the registry and
  checks every ``obs.<family>.inc/observe/set/labels`` chain against it.
  It also keeps registration honest: families must be registered in the
  hub (not ad hoc), counters end in ``_total``, histograms in
  ``_seconds``/``_rows``, and everything carries the ``polystore_``
  prefix (see DESIGN.md "Metric naming").

* **Span names** follow the DESIGN.md taxonomy (``request:<p>``,
  ``stage:<i>``, ``op:<id>``, ...).  Exporters, tests and dashboards key
  on those prefixes; a free-hand span name silently falls out of every
  span-tree assertion.  ``tracer.span(name, category)`` call sites with a
  statically known prefix must use a taxonomy prefix, paired with its
  declared category.  (``tracer.request`` names are user-extensible and
  not checked.)
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable

from repro.analysis.core import (
    AnalysisContext,
    Finding,
    Rule,
    SourceFile,
    attr_chain,
    fstring_prefix,
    register,
)

#: Span-name prefix -> category, mirroring the DESIGN.md span taxonomy
#: table ("Span taxonomy").  Update both together.
SPAN_TAXONOMY: dict[str, str] = {
    "request": "session",
    "serve": "session",
    "compile": "compile",
    "execute": "executor",
    "stage": "executor",
    "op": "operator",
    "shard": "scatter",
    "view_refresh": "view",
    "wal_fsync": "durability",
    "snapshot": "durability",
    "health": "session",
}

_REGISTRY_SUFFIX = "repro/obs/__init__.py"
_CACHE_KEY = "obs-registry"
_KINDS = frozenset({"counter", "gauge", "histogram"})
_RECORD_CALLS = frozenset({"inc", "observe", "set", "labels"})
_OBS_MARKERS = frozenset({"obs", "_obs"})
#: Attributes of the hub that are not metric families.
_NON_FAMILY_ATTRS = frozenset({
    "registry", "tracer", "slow_log", "enabled",
    "events", "profiler", "slos",
})
_FAMILY_NAME_RE = re.compile(r"^polystore_[a-z0-9_]+$")
_REGISTRY_RECEIVER_RE = re.compile(r"^(reg|registry|_registry)$")


def parse_registry(tree: ast.Module) -> dict[str, str]:
    """``{family attribute: kind}`` from the Observability hub's source."""
    families: dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        chain = attr_chain(node.targets[0])
        if chain is None or len(chain) != 2 or chain[0] != "self":
            continue
        value = node.value
        if isinstance(value, ast.Call):
            name = value.func.attr if isinstance(value.func, ast.Attribute) \
                else None
            if name in _KINDS:
                families[chain[1]] = name
    return families


def _load_registry(source: SourceFile,
                   context: AnalysisContext) -> dict[str, str] | None:
    """The hub's families, from the analyzed file set or from disk."""
    if _CACHE_KEY in context.cache:
        return context.cache[_CACHE_KEY]
    families: dict[str, str] | None = None
    registry_file = context.find_file(_REGISTRY_SUFFIX)
    if registry_file is not None and registry_file.tree is not None:
        families = parse_registry(registry_file.tree)
    else:
        # Analyzing a subset that excludes the hub: find it next to the
        # analyzed file's ``repro`` package.
        parts = Path(source.rel_path).parts
        if "repro" in parts:
            index = parts.index("repro")
            candidate = Path(*parts[:index + 1]) / "obs" / "__init__.py"
            if candidate.exists():
                families = parse_registry(
                    ast.parse(candidate.read_text(encoding="utf-8")))
    context.cache[_CACHE_KEY] = families
    return families


class ObsTaxonomyRule(Rule):
    id = "obs-taxonomy"
    description = (
        "metric families and span-name prefixes at call sites must match "
        "the Observability registry and the DESIGN.md span taxonomy")

    def check(self, source: SourceFile,
              context: AnalysisContext) -> Iterable[Finding]:
        if source.tree is None:
            return
        families = _load_registry(source, context)
        is_registry_file = source.rel_path.endswith(_REGISTRY_SUFFIX)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            terminal = chain[-1]
            if terminal == "span" and "tracer" in chain[:-1]:
                yield from self._check_span(source, node)
            elif terminal in _RECORD_CALLS and families is not None:
                yield from self._check_family_use(source, node, chain,
                                                 families)
            elif terminal in _KINDS:
                yield from self._check_registration(source, node, chain,
                                                    families,
                                                    is_registry_file)

    def _check_span(self, source: SourceFile,
                    call: ast.Call) -> Iterable[Finding]:
        if not call.args:
            return
        static = fstring_prefix(call.args[0])
        if static is None:
            return  # dynamic name; nothing to check statically
        prefix = static.split(":", 1)[0]
        category = SPAN_TAXONOMY.get(prefix)
        if category is None:
            yield self.finding(source, call, (
                f"span name prefix {prefix!r} is not in the DESIGN.md span "
                f"taxonomy ({', '.join(sorted(SPAN_TAXONOMY))}); exporters "
                f"and span-tree assertions key on these prefixes"))
            return
        if len(call.args) >= 2:
            declared = call.args[1]
            if (isinstance(declared, ast.Constant)
                    and isinstance(declared.value, str)
                    and declared.value != category):
                yield self.finding(source, call, (
                    f"span {prefix!r} declares category "
                    f"{declared.value!r} but the taxonomy pairs it with "
                    f"{category!r}"))

    def _check_family_use(self, source: SourceFile, call: ast.Call,
                          chain: list[str],
                          families: dict[str, str]) -> Iterable[Finding]:
        for index, part in enumerate(chain[:-2]):
            if part not in _OBS_MARKERS:
                continue
            family = chain[index + 1]
            if family in _NON_FAMILY_ATTRS or family in _OBS_MARKERS:
                continue
            if family not in families:
                yield self.finding(source, call, (
                    f"metric family attribute {family!r} is not "
                    f"pre-registered on Observability "
                    f"(src/repro/obs/__init__.py); this line raises "
                    f"AttributeError on its first event"))
            return

    def _check_registration(self, source: SourceFile, call: ast.Call,
                            chain: list[str],
                            families: dict[str, str] | None,
                            is_registry_file: bool) -> Iterable[Finding]:
        if not call.args:
            return
        first = call.args[0]
        if not (isinstance(first, ast.Constant)
                and isinstance(first.value, str)):
            return
        name = first.value
        receiver_is_registry = (len(chain) >= 2 and bool(
            _REGISTRY_RECEIVER_RE.match(chain[-2])))
        if not receiver_is_registry and not name.startswith("polystore_"):
            return  # not a metric registration at all
        kind = chain[-1]
        if not _FAMILY_NAME_RE.match(name):
            yield self.finding(source, call, (
                f"metric family {name!r} must match "
                f"'polystore_<subsystem>_<what>' (lowercase, underscores)"))
        elif kind == "counter" and not name.endswith("_total"):
            yield self.finding(source, call, (
                f"counter {name!r} must end in '_total' (DESIGN.md metric "
                f"naming)"))
        elif kind == "histogram" and not name.endswith(("_seconds", "_rows")):
            yield self.finding(source, call, (
                f"histogram {name!r} must end in '_seconds' or '_rows' "
                f"(DESIGN.md metric naming)"))
        if not is_registry_file:
            yield self.finding(source, call, (
                f"metric family {name!r} registered outside the "
                f"Observability hub; pre-register it in "
                f"src/repro/obs/__init__.py so call sites share one "
                f"source of truth"))


register(ObsTaxonomyRule())
