"""lock-discipline: per-class lock ordering and notify-under-lock checks.

Two invariant families, both learned the hard way in review:

* **Inconsistent pairwise lock order** — within one class, if some code
  path acquires lock A and then (directly, or through a same-class method
  it calls) lock B, no other path may acquire B then A: two threads taking
  the two paths concurrently deadlock (ABBA).  The rule builds the
  per-class acquisition-order graph from ``with self._lock:`` nesting plus
  one-class-deep call propagation and flags contradictory pairs.

* **Listener invocation under a held lock** — calling back into arbitrary
  code (changelog listeners, subscribers, callbacks) while holding a lock
  invites deadlock: the listener may re-enter the locking object (an eager
  view refresh reads the engine that just notified it).  Notification must
  be deferred until after the lock is released (the
  ``mark_data_changed(notify=False)`` / ``notify_batch`` split exists for
  exactly this).

Lock identity is the dotted expression (``self._lock``,
``self._prepare_lock``); any name whose last component contains ``lock``
or ``mutex`` counts.  Nested function bodies are analyzed as independent
contexts — they run at call time, not while the enclosing block's locks
are held.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.core import (
    AnalysisContext,
    Finding,
    Rule,
    SourceFile,
    attr_chain,
    register,
)

_LOCKISH_RE = re.compile(r"lock|mutex", re.IGNORECASE)
_NOTIFY_RE = re.compile(r"notify|callback", re.IGNORECASE)
#: Bare callables whose very name says "I am someone else's code".
_NOTIFY_BARE_RE = re.compile(
    r"^(listener|callback|subscriber|hook)s?$", re.IGNORECASE)


def _lock_name(expr: ast.AST) -> str | None:
    """The lock identity of a ``with`` item (or ``None`` if not a lock)."""
    chain = attr_chain(expr)
    if chain and _LOCKISH_RE.search(chain[-1]):
        return ".".join(chain)
    return None


def _notify_name(call: ast.Call) -> str | None:
    """The display name of a notify-like call (or ``None``)."""
    func = call.func
    if isinstance(func, ast.Attribute) and _NOTIFY_RE.search(func.attr):
        chain = attr_chain(func)
        return ".".join(chain) if chain else func.attr
    if isinstance(func, ast.Name) and _NOTIFY_BARE_RE.match(func.id):
        return func.id
    return None


@dataclass
class _MethodFacts:
    """What one method does with locks, before call propagation."""

    name: str
    #: Locks acquired anywhere in the body: lock -> first line.
    acquires: dict[str, int] = field(default_factory=dict)
    #: Directly nested acquisitions: (outer, inner) -> line of the inner.
    pairs: dict[tuple[str, str], int] = field(default_factory=dict)
    #: Same-class calls: (held locks at the call, callee, line).
    calls: list[tuple[tuple[str, ...], str, int]] = field(default_factory=list)
    #: Notify-like calls: (held locks at the call, display name, line).
    notifies: list[tuple[tuple[str, ...], str, int]] = field(
        default_factory=list)


class _MethodVisitor:
    """Collects :class:`_MethodFacts` from one function body."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef,
                 nested_sink: list["_MethodFacts"] | None = None) -> None:
        self.facts = _MethodFacts(func.name)
        self._nested = nested_sink
        for stmt in func.body:
            self._visit(stmt, ())

    def _visit(self, node: ast.AST, held: tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Deferred body: analyze as an independent context.
            if self._nested is not None:
                visitor = _MethodVisitor(node, self._nested)
                self._nested.append(visitor.facts)
            return
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node, held)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, held)
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _visit_with(self, node: ast.With | ast.AsyncWith,
                    held: tuple[str, ...]) -> None:
        for item in node.items:
            lock = _lock_name(item.context_expr)
            if lock is not None:
                self.facts.acquires.setdefault(lock, item.context_expr.lineno)
                for outer in held:
                    if outer != lock:
                        self.facts.pairs.setdefault(
                            (outer, lock), item.context_expr.lineno)
                held = held + (lock,)
            else:
                self._visit(item.context_expr, held)
        for stmt in node.body:
            self._visit(stmt, held)

    def _visit_call(self, node: ast.Call, held: tuple[str, ...]) -> None:
        chain = attr_chain(node.func)
        if chain is not None and len(chain) == 2 and chain[0] == "self":
            self.facts.calls.append((held, chain[1], node.lineno))
        notify = _notify_name(node)
        if notify is not None:
            self.facts.notifies.append((held, notify, node.lineno))


def _transitive_acquires(methods: dict[str, _MethodFacts]
                         ) -> dict[str, set[str]]:
    """Locks each method may end up holding, via same-class calls."""
    closure = {name: set(facts.acquires) for name, facts in methods.items()}
    changed = True
    while changed:
        changed = False
        for name, facts in methods.items():
            for _, callee, _ in facts.calls:
                extra = closure.get(callee)
                if extra and not extra <= closure[name]:
                    closure[name] |= extra
                    changed = True
    return closure


def _transitive_notifies(methods: dict[str, _MethodFacts]) -> set[str]:
    """Methods that (transitively) invoke a notify-like callable."""
    notifying = {name for name, facts in methods.items() if facts.notifies}
    changed = True
    while changed:
        changed = False
        for name, facts in methods.items():
            if name in notifying:
                continue
            if any(callee in notifying for _, callee, _ in facts.calls):
                notifying.add(name)
                changed = True
    return notifying


class LockDisciplineRule(Rule):
    id = "lock-discipline"
    description = (
        "per-class lock acquisition order must be consistent, and "
        "listeners/callbacks must not be invoked while a lock is held")

    def check(self, source: SourceFile,
              context: AnalysisContext) -> Iterable[Finding]:
        if source.tree is None:
            return
        scopes: list[tuple[str, list[ast.FunctionDef | ast.AsyncFunctionDef]]]
        scopes = []
        module_funcs = [node for node in source.tree.body
                        if isinstance(node,
                                      (ast.FunctionDef, ast.AsyncFunctionDef))]
        if module_funcs:
            scopes.append(("<module>", module_funcs))
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                scopes.append((node.name, [
                    child for child in node.body
                    if isinstance(child,
                                  (ast.FunctionDef, ast.AsyncFunctionDef))
                ]))
        for scope_name, funcs in scopes:
            yield from self._check_scope(source, scope_name, funcs)

    def _check_scope(self, source: SourceFile, scope_name: str,
                     funcs: list[ast.FunctionDef | ast.AsyncFunctionDef]
                     ) -> Iterable[Finding]:
        nested: list[_MethodFacts] = []
        methods: dict[str, _MethodFacts] = {}
        for func in funcs:
            methods[func.name] = _MethodVisitor(func, nested).facts
        acquires = _transitive_acquires(methods)
        notifying = _transitive_notifies(methods)

        # -- notify under a held lock --------------------------------------------------
        for facts in list(methods.values()) + nested:
            for held, name, line in facts.notifies:
                if held:
                    yield self.finding(source, line, (
                        f"{scope_name}.{facts.name} invokes {name!r} while "
                        f"holding {held[-1]!r}; deliver notifications after "
                        f"releasing the lock (mark_data_changed(notify="
                        f"False) + notify_batch)"))
            for held, callee, line in facts.calls:
                if held and callee in notifying:
                    yield self.finding(source, line, (
                        f"{scope_name}.{facts.name} calls self.{callee}() "
                        f"while holding {held[-1]!r}, and {callee!r} "
                        f"(transitively) notifies listeners; deliver "
                        f"notifications after releasing the lock"))

        # -- pairwise acquisition order ------------------------------------------------
        edges: dict[tuple[str, str], int] = {}
        for facts in list(methods.values()) + nested:
            for pair, line in facts.pairs.items():
                edges.setdefault(pair, line)
            for held, callee, line in facts.calls:
                for inner in acquires.get(callee, ()):
                    for outer in held:
                        if outer != inner:
                            edges.setdefault((outer, inner), line)
        reported: set[frozenset[str]] = set()
        for (a, b), line in sorted(edges.items(), key=lambda kv: kv[1]):
            if (b, a) not in edges:
                continue
            key = frozenset((a, b))
            if key in reported:
                continue
            reported.add(key)
            other = edges[(b, a)]
            if other > line:  # anchor the finding at the later site
                a, b, line, other = b, a, other, line
            yield self.finding(source, line, (
                f"{scope_name}: inconsistent lock order — {a!r} is taken "
                f"before {b!r} here, but {b!r} is taken before {a!r} at "
                f"line {other} (ABBA deadlock)"))


register(LockDisciplineRule())
