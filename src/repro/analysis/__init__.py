"""Static analysis: project-specific invariant checking, wired as a CI gate.

The last several PRs each shipped review fixes for the same families of
concurrency and contract bugs: ABBA deadlocks from inconsistent lock order,
listeners notified while a write lock was held, engine mutators that forgot
to emit their changelog batch (silent view divergence), and serve-path code
that blocks the event loop or swallows cancellation.  Those invariants are
load-bearing — the incremental-view correctness discipline only holds if the
changelog emission contract holds — so this package machine-checks them
instead of re-discovering them in review.

The pieces:

* :mod:`repro.analysis.core` — the rule framework: :class:`Finding`,
  :class:`Rule`, :class:`SourceFile` (parsed module + inline suppression
  pragmas) and :class:`AnalysisContext` (cross-file state such as the
  registered metric families).
* :mod:`repro.analysis.rules` — the project rules (lock-discipline,
  changelog-contract, async-hygiene, cancellation-safety, obs-taxonomy).
* :mod:`repro.analysis.runner` — file collection and rule execution,
  including pragma filtering.
* ``python -m repro.analysis [--strict] [paths]`` — the CLI (see
  :mod:`repro.analysis.cli`); ``--strict`` exits non-zero on any finding
  and is the mode CI gates on.

Findings are suppressed inline with ``# repro: allow(<rule-id>): <reason>``
— the reason is mandatory; a pragma without one is itself a finding.
"""

from __future__ import annotations

from repro.analysis.core import AnalysisContext, Finding, Rule, SourceFile
from repro.analysis.runner import analyze_paths, analyze_sources

__all__ = [
    "AnalysisContext",
    "Finding",
    "Rule",
    "SourceFile",
    "analyze_paths",
    "analyze_sources",
]
