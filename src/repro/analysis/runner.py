"""File collection and rule execution (with pragma filtering)."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

import repro.analysis.rules  # noqa: F401  (registers the project rules)
from repro.analysis.core import (
    AnalysisContext,
    Finding,
    Rule,
    SourceFile,
    registered_rules,
)

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


def collect_files(paths: Iterable[Path | str]) -> list[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS & set(candidate.parts):
                    out.add(candidate)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def analyze_sources(sources: Sequence[SourceFile],
                    rules: Sequence[Rule] | None = None,
                    context: AnalysisContext | None = None) -> list[Finding]:
    """Run rules over parsed sources; suppressed findings are dropped.

    Parse failures and malformed pragmas are always reported (they cannot
    be suppressed — a broken pragma must not silence itself).
    """
    if context is None:
        context = AnalysisContext()
    context.files = list(sources)
    if rules is None:
        rules = registered_rules()
    findings: list[Finding] = []
    for source in sources:
        if source.parse_error is not None:
            findings.append(source.parse_error)
            continue
        findings.extend(source.pragma_errors)
        for rule in rules:
            for finding in rule.check(source, context):
                if not source.suppressed(finding):
                    findings.append(finding)
    return sorted(findings)


def analyze_paths(paths: Iterable[Path | str],
                  root: Path | None = None,
                  rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Collect, parse and analyze files under ``paths``.

    ``root`` (default: the current directory) anchors the repo-relative
    paths reported in findings and matched by path-scoped rules.
    """
    if root is None:
        root = Path.cwd()
    sources = [SourceFile.from_path(path, root)
               for path in collect_files(paths)]
    return analyze_sources(sources, rules=rules)
