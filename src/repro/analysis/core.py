"""The rule framework: findings, rules, parsed sources and suppressions.

A :class:`Rule` inspects one parsed module at a time and yields
:class:`Finding` objects anchored to a file and line.  Cross-file state
(e.g. the metric families registered in ``obs/__init__.py``) lives on the
shared :class:`AnalysisContext`, which also serves as a per-run cache.

Suppression pragma
------------------

``# repro: allow(<rule-id>): <reason>`` suppresses findings of the named
rule(s) on the pragma's own line — or, when the pragma is alone on its
line, on the next line (so a long ``def`` can carry its pragma above
itself).  Several rule ids may be listed comma-separated.  The reason is
mandatory: a pragma without one is reported under the ``pragma`` pseudo
rule and never suppresses anything.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

#: Pseudo rule id for malformed suppression pragmas.
PRAGMA_RULE = "pragma"
#: Pseudo rule id for files that fail to parse.
PARSE_RULE = "parse"

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*(?P<rules>[^)]*)\)\s*(?::\s*(?P<reason>.*))?$"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file and line."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Suppression:
    """One well-formed ``# repro: allow(...)`` pragma."""

    line: int
    rules: frozenset[str]
    reason: str
    #: Whether the pragma is the only content on its line (then it also
    #: covers the following line).
    standalone: bool

    def covers(self, finding: Finding) -> bool:
        if finding.rule not in self.rules:
            return False
        if finding.line == self.line:
            return True
        return self.standalone and finding.line == self.line + 1


class SourceFile:
    """One parsed module plus its suppression pragmas."""

    def __init__(self, rel_path: str, text: str) -> None:
        #: Repo-relative posix-style path, used in findings and for rules
        #: that only apply to parts of the tree.
        self.rel_path = rel_path
        self.text = text
        self.lines = text.splitlines()
        self.tree: ast.Module | None = None
        self.parse_error: Finding | None = None
        try:
            self.tree = ast.parse(text)
        except SyntaxError as exc:
            self.parse_error = Finding(
                path=rel_path, line=exc.lineno or 1, rule=PARSE_RULE,
                message=f"file does not parse: {exc.msg}")
        self.suppressions: list[Suppression] = []
        self.pragma_errors: list[Finding] = []
        self._scan_pragmas()

    @classmethod
    def from_path(cls, path: Path, root: Path | None = None) -> "SourceFile":
        rel: str
        if root is not None:
            try:
                rel = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = path.as_posix()
        else:
            rel = path.as_posix()
        return cls(rel, path.read_text(encoding="utf-8"))

    def _iter_comments(self) -> Iterator[tuple[int, int, str]]:
        """``(line, column, text)`` for each real comment token.

        Tokenizing (rather than regex-scanning lines) keeps docstrings and
        string literals that merely *mention* the pragma syntax from being
        treated as pragmas.
        """
        readline = iter(self.text.splitlines(keepends=True)).__next__
        try:
            for token in tokenize.generate_tokens(readline):
                if token.type == tokenize.COMMENT:
                    yield token.start[0], token.start[1], token.string
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return  # unparseable tail; the parse finding covers it

    def _scan_pragmas(self) -> None:
        for lineno, column, comment in self._iter_comments():
            if "repro:" not in comment:
                continue
            match = _PRAGMA_RE.search(comment)
            if match is None:
                if re.search(r"#\s*repro:\s*allow", comment):
                    self.pragma_errors.append(Finding(
                        path=self.rel_path, line=lineno, rule=PRAGMA_RULE,
                        message="malformed suppression pragma; expected "
                                "'# repro: allow(<rule>): <reason>'"))
                continue
            rules = frozenset(
                part.strip() for part in match.group("rules").split(",")
                if part.strip())
            reason = (match.group("reason") or "").strip()
            if not rules or not reason:
                self.pragma_errors.append(Finding(
                    path=self.rel_path, line=lineno, rule=PRAGMA_RULE,
                    message="suppression pragma needs rule id(s) and a "
                            "non-empty reason: "
                            "'# repro: allow(<rule>): <reason>'"))
                continue
            line_text = self.lines[lineno - 1] if lineno <= len(self.lines) \
                else ""
            standalone = not line_text[:column].strip()
            self.suppressions.append(Suppression(
                line=lineno, rules=rules, reason=reason,
                standalone=standalone))

    def suppressed(self, finding: Finding) -> bool:
        return any(s.covers(finding) for s in self.suppressions)


@dataclass
class AnalysisContext:
    """Cross-file state shared by all rules during one run."""

    files: list[SourceFile] = field(default_factory=list)
    #: Per-rule cache (e.g. the obs-taxonomy rule parks the parsed metric
    #: registry here so it is computed once per run, and tests can inject
    #: a synthetic registry).
    cache: dict[str, Any] = field(default_factory=dict)

    def find_file(self, suffix: str) -> SourceFile | None:
        """The analyzed file whose path ends with ``suffix`` (if any)."""
        for source in self.files:
            if source.rel_path.endswith(suffix):
                return source
        return None


class Rule:
    """Base class for one invariant check.

    Subclasses set :attr:`id`/:attr:`description` and implement
    :meth:`check`.  Registration happens via :func:`register`; the CLI and
    runner pick every registered rule up automatically.
    """

    id: str = ""
    description: str = ""

    def check(self, source: SourceFile,
              context: AnalysisContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, source: SourceFile, node: ast.AST | int,
                message: str) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(path=source.rel_path, line=line, rule=self.id,
                       message=message)


_REGISTRY: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Register one rule instance (last registration of an id wins)."""
    if not rule.id:
        raise ValueError(f"rule {type(rule).__name__} has no id")
    _REGISTRY[rule.id] = rule
    return rule


def registered_rules() -> list[Rule]:
    """Every registered rule, in id order."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


# -- shared AST helpers ------------------------------------------------------------------


def attr_chain(node: ast.AST) -> list[str] | None:
    """The dotted-name chain of an attribute/name expression.

    ``self._shards[i].insert`` -> ``["self", "_shards", "insert"]`` —
    subscripts are transparent, calls and anything else terminate the
    chain (``None`` when the expression is not chain-shaped).
    """
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return list(reversed(parts))
        else:
            return None


def call_name(call: ast.Call) -> str | None:
    """Terminal name of the called expression (``a.b.c()`` -> ``"c"``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def fstring_prefix(node: ast.AST) -> str | None:
    """Static leading text of a string or f-string expression.

    Returns the full value for plain string constants, the leading literal
    part of an f-string (``f"op:{x}"`` -> ``"op:"``), and ``None`` when
    nothing static leads the expression.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


def walk_scope(root: ast.AST, *, skip_nested_functions: bool = True
               ) -> Iterator[ast.AST]:
    """Walk ``root``'s body without descending into nested function defs.

    Nested ``def``/``lambda`` bodies execute at call time, not while the
    enclosing block (and its locks) is live, so scope-sensitive rules must
    not attribute their statements to the enclosing context.
    """
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if skip_nested_functions and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
