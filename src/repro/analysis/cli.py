"""``python -m repro.analysis [--strict] [paths]`` — the analyzer CLI.

Default mode reports findings and exits 0 (advisory, for local
iteration).  ``--strict`` exits 1 when any finding survives suppression —
that is the CI gate (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.core import registered_rules
from repro.analysis.runner import analyze_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant checker for lock discipline, "
                    "changelog contracts, async hygiene, cancellation "
                    "safety and the observability taxonomy.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when any finding is reported "
                             "(the CI gate)")
    parser.add_argument("--rule", action="append", dest="rule_ids",
                        metavar="RULE-ID",
                        help="run only the named rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    rules = registered_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}: {rule.description}")
        return 0
    if args.rule_ids:
        known = {rule.id for rule in rules}
        unknown = sorted(set(args.rule_ids) - known)
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)} "
                  f"(--list-rules shows the registry)", file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.id in set(args.rule_ids)]
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    findings = analyze_paths(args.paths, rules=rules)
    for finding in findings:
        print(finding.render())
    checked = ", ".join(rule.id for rule in rules)
    summary = (f"{len(findings)} finding(s) from rules: {checked}"
               if findings else f"clean ({checked})")
    print(summary, file=sys.stderr)
    if findings and args.strict:
        return 1
    return 0
