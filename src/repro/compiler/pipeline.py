"""The compiler pipeline: frontend -> L1 passes -> placement -> backend plan.

This is the Polystore++ compiler of the paper's Figure 4/6: it takes a
heterogeneous program from the EIDE, lowers it to the hierarchical IR,
applies domain-agnostic L1 optimizations, decides accelerator placement and
hands the executor a staged plan.  Individual passes can be toggled, which
the ablation benchmark (experiment E10) uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.accelerators.simulator import OffloadPlanner, PlacementDecision
from repro.catalog import Catalog
from repro.compiler.annotate import annotate_graph, total_estimated_bytes
from repro.compiler.frontend import Frontend, Program
from repro.compiler.passes import (
    absorb_into_leaves,
    choose_join_algorithms,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fuse_operators,
    push_down_filters,
    reorder_joins,
)
from repro.compiler.passes.placement import place_accelerators
from repro.ir.graph import IRGraph
from repro.ir.validation import assert_valid

if TYPE_CHECKING:  # runtime stats are duck-typed to keep the layering acyclic
    from repro.middleware.feedback import RuntimeStats


@dataclass(frozen=True)
class CompilerOptions:
    """Which optimizations the compiler applies."""

    pushdown: bool = True
    fusion: bool = True
    cse: bool = True
    join_reorder: bool = True
    dce: bool = True
    accelerator_placement: bool = True
    #: Rewrite program subtrees matching registered materialized views into
    #: ``view_read`` operators.  Disable to force base-table execution (the
    #: recompute baseline benchmarks compare against).
    use_views: bool = True

    @classmethod
    def none(cls) -> "CompilerOptions":
        """All optimizations disabled (the unoptimized baseline).

        View rewriting stays on: reading a maintained view is a semantic
        routing choice, not an optimization pass.
        """
        return cls(pushdown=False, fusion=False, cse=False, join_reorder=False,
                   dce=False, accelerator_placement=False)


@dataclass
class CompilationResult:
    """Everything the compiler produces for one program."""

    graph: IRGraph
    pass_counts: dict[str, int] = field(default_factory=dict)
    placement_decisions: list[PlacementDecision] = field(default_factory=list)
    estimated_bytes_before: int = 0
    estimated_bytes_after: int = 0
    #: Wall time the full pipeline took; the plan cache's saved cost.
    compile_time_s: float = 0.0
    #: Fingerprint of the source program (set when compiled via a session).
    source_fingerprint: str | None = None
    #: Structural hash of the optimized, placed plan (operators, engines,
    #: accelerators); two compiles that made the same physical decisions
    #: share it even when their cardinality annotations differ.
    plan_fingerprint: str = ""

    @property
    def offloaded_operators(self) -> int:
        """Number of operators placed on an accelerator."""
        return sum(1 for node in self.graph.nodes() if node.accelerator)

    def summary(self) -> dict[str, object]:
        """Compact dictionary for logs and reports."""
        return {
            "nodes": len(self.graph),
            "offloaded": self.offloaded_operators,
            "passes": dict(self.pass_counts),
            "estimated_bytes_before": self.estimated_bytes_before,
            "estimated_bytes_after": self.estimated_bytes_after,
            "compile_time_s": self.compile_time_s,
        }


class Compiler:
    """Compiles heterogeneous programs to optimized, placed IR graphs."""

    def __init__(self, catalog: Catalog, *, planner: OffloadPlanner | None = None,
                 options: CompilerOptions | None = None,
                 stats: "RuntimeStats | None" = None) -> None:
        self.catalog = catalog
        self.planner = planner
        self.options = options if options is not None else CompilerOptions()
        #: Runtime feedback store; when set, annotation prefers observed
        #: cardinalities and placement uses measured host times.
        self.stats = stats
        self.frontend = Frontend(catalog)

    def compile(self, program: Program,
                options: CompilerOptions | None = None) -> CompilationResult:
        """Run the full pipeline on ``program``."""
        started = time.perf_counter()
        opts = options if options is not None else self.options
        graph = self.frontend.lower(program)
        assert_valid(graph)
        annotate_graph(graph, self.catalog, self.stats)
        result = CompilationResult(graph=graph,
                                   estimated_bytes_before=total_estimated_bytes(graph))
        self._optimize(result, opts)
        annotate_graph(graph, self.catalog, self.stats)
        result.estimated_bytes_after = total_estimated_bytes(graph)
        if opts.accelerator_placement and self.planner is not None:
            result.placement_decisions = place_accelerators(graph, self.planner,
                                                            self.stats)
        assert_valid(graph)
        result.plan_fingerprint = _plan_fingerprint(graph)
        result.compile_time_s = time.perf_counter() - started
        return result

    def optimize_graph(self, graph: IRGraph,
                       options: CompilerOptions | None = None) -> CompilationResult:
        """Apply passes to an already-lowered graph (used by tests and benches)."""
        opts = options if options is not None else self.options
        annotate_graph(graph, self.catalog, self.stats)
        result = CompilationResult(graph=graph,
                                   estimated_bytes_before=total_estimated_bytes(graph))
        self._optimize(result, opts)
        annotate_graph(graph, self.catalog, self.stats)
        result.estimated_bytes_after = total_estimated_bytes(graph)
        result.plan_fingerprint = _plan_fingerprint(graph)
        return result

    def _optimize(self, result: CompilationResult, opts: CompilerOptions) -> None:
        graph = result.graph
        if opts.cse:
            result.pass_counts["cse"] = eliminate_common_subexpressions(graph)
        if opts.pushdown:
            result.pass_counts["pushdown"] = push_down_filters(graph, self.catalog)
        if opts.fusion:
            result.pass_counts["fusion"] = fuse_operators(graph)
        if opts.pushdown:
            # After fusion merged adjacent filters, fold filters sitting on
            # leaf reads into the leaves as structured predicates (enables
            # engine-side evaluation and shard pruning).
            result.pass_counts["absorb"] = absorb_into_leaves(graph, self.catalog)
        annotate_graph(graph, self.catalog, self.stats)
        if opts.join_reorder:
            result.pass_counts["join_reorder"] = reorder_joins(graph)
            result.pass_counts["join_algorithms"] = choose_join_algorithms(graph)
        if opts.dce:
            result.pass_counts["dce"] = eliminate_dead_code(graph)


def _plan_fingerprint(graph: IRGraph) -> str:
    from repro.middleware.feedback.fingerprint import plan_fingerprint

    return plan_fingerprint(graph)
