"""Common-subexpression elimination over the IR.

Heterogeneous programs frequently scan the same table in several fragments
(e.g. the Snorkel loop reloading training data every batch).  This pass
merges structurally identical subtrees so each is computed once and shared.
"""

from __future__ import annotations

from typing import Any

from repro.ir.graph import IRGraph
from repro.ir.nodes import Operator


def eliminate_common_subexpressions(graph: IRGraph) -> int:
    """Merge duplicate subtrees; returns the number of nodes removed."""
    removed = 0
    changed = True
    while changed:
        changed = False
        signatures: dict[tuple, str] = {}
        for node in graph.topological_order():
            signature = _signature(node)
            if signature is None:
                continue
            survivor = signatures.get(signature)
            if survivor is None:
                signatures[signature] = node.op_id
                continue
            if survivor == node.op_id:
                continue
            for consumer in graph.consumers(node.op_id):
                graph.replace_input(consumer.op_id, node.op_id, survivor)
            if node.op_id in graph.outputs:
                graph.replace_output(node.op_id, survivor)
            removed += graph.prune(lambda n, dead=node.op_id: n.op_id != dead)
            changed = True
            break
    return removed


def _signature(node: Operator) -> tuple | None:
    """A hashable structural signature, or ``None`` for nodes never merged."""
    if node.kind in ("train", "kmeans", "python_udf", "migrate"):
        # Training and UDFs may be stateful; migrations are placement artifacts.
        return None
    try:
        params = tuple(sorted((k, _freeze(v)) for k, v in node.params.items()))
    except TypeError:
        return None
    return (node.kind, node.engine, params, tuple(node.inputs))


def _freeze(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (str, int, float, bool, type(None))):
        return value
    return repr(value)
