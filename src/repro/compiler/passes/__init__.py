"""L1/L2 optimization passes over the IR."""

from repro.compiler.passes.cse import eliminate_common_subexpressions
from repro.compiler.passes.dce import eliminate_dead_code
from repro.compiler.passes.fusion import fuse_operators
from repro.compiler.passes.join_reorder import choose_join_algorithms, reorder_joins
from repro.compiler.passes.placement import place_accelerators
from repro.compiler.passes.pushdown import (
    absorb_into_leaves,
    infer_columns,
    predicate_key_values,
    push_down_filters,
)

__all__ = [
    "push_down_filters",
    "absorb_into_leaves",
    "predicate_key_values",
    "infer_columns",
    "fuse_operators",
    "eliminate_dead_code",
    "eliminate_common_subexpressions",
    "reorder_joins",
    "choose_join_algorithms",
    "place_accelerators",
]
