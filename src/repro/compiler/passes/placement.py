"""Accelerator-placement pass.

Answers the paper's "what functions should be accelerated" question
(§IV-A-d) at compile time: for every accelerable operator the pass builds a
work estimate from the cardinality annotations, asks the
:class:`~repro.accelerators.simulator.OffloadPlanner` whether any attached
device beats the host, and records the chosen device in the operator's
``accelerator`` field.  The executor later routes such operators through the
device's functional kernel.
"""

from __future__ import annotations

from repro.accelerators.kernels import WorkEstimate
from repro.accelerators.simulator import OffloadPlanner, PlacementDecision
from repro.ir.graph import IRGraph
from repro.ir.nodes import Operator

#: IR kind -> abstract operator name in the kernel registry.
_KIND_TO_OPERATOR = {
    "sort": "sort",
    "filter": "filter",
    "project": "project",
    "window_aggregate": "window_aggregate",
    "matmul": "gemm",
    "gemv": "gemv",
    "train": "train",
    "predict": "predict",
    "migrate": "serialize",
}


def place_accelerators(graph: IRGraph, planner: OffloadPlanner
                       ) -> list[PlacementDecision]:
    """Decide offload per accelerable operator; returns all decisions made."""
    decisions: list[PlacementDecision] = []
    for node in graph.topological_order():
        operator = _KIND_TO_OPERATOR.get(node.kind)
        if operator is None:
            continue
        work = _work_estimate(graph, node)
        decision = planner.decide(operator, work)
        decisions.append(decision)
        node.accelerator = decision.target if decision.offloaded else None
        node.annotations["placement_speedup"] = decision.speedup
        node.annotations["placement_host_time_s"] = decision.host_time_s
    return decisions


def _work_estimate(graph: IRGraph, node: Operator) -> WorkEstimate:
    input_rows = max((graph.node(i).estimated_rows for i in node.inputs), default=0)
    rows = max(node.estimated_rows, input_rows, 1)
    row_bytes = max(8, node.estimated_bytes // max(1, node.estimated_rows)) \
        if node.estimated_rows else 64
    if node.kind in ("train", "predict", "matmul", "gemv"):
        features = int(node.params.get("feature_count", 16))
        hidden = 32
        if node.kind == "train":
            epochs = int(node.params.get("epochs", 5))
            return WorkEstimate(rows=rows, matrix_dims=(rows * epochs, features, hidden))
        if node.kind == "predict":
            return WorkEstimate(rows=rows, matrix_dims=(rows, features, 1))
        return WorkEstimate(rows=rows, matrix_dims=(rows, features, features))
    selectivity = 1.0
    if node.kind == "filter" and node.inputs:
        parent_rows = max(1, graph.node(node.inputs[0]).estimated_rows)
        selectivity = min(1.0, node.estimated_rows / parent_rows)
    if node.kind == "project":
        selectivity = 0.5
    return WorkEstimate(rows=rows, row_bytes=row_bytes, selectivity=selectivity)
