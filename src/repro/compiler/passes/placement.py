"""Accelerator-placement pass.

Answers the paper's "what functions should be accelerated" question
(§IV-A-d) at compile time: for every accelerable operator the pass builds a
work estimate from the cardinality annotations, asks the
:class:`~repro.accelerators.simulator.OffloadPlanner` whether any attached
device beats the host, and records the chosen device in the operator's
``accelerator`` field.  The executor later routes such operators through the
device's functional kernel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.accelerators.kernels import WorkEstimate
from repro.accelerators.simulator import OffloadPlanner, PlacementDecision
from repro.ir.graph import IRGraph
from repro.ir.nodes import Operator

if TYPE_CHECKING:  # runtime stats are duck-typed to keep the layering acyclic
    from repro.middleware.feedback import RuntimeStats

#: IR kind -> abstract operator name in the kernel registry.
_KIND_TO_OPERATOR = {
    "sort": "sort",
    "filter": "filter",
    "project": "project",
    "window_aggregate": "window_aggregate",
    "matmul": "gemm",
    "gemv": "gemv",
    "train": "train",
    "predict": "predict",
    "migrate": "serialize",
}


def place_accelerators(graph: IRGraph, planner: OffloadPlanner,
                       stats: "RuntimeStats | None" = None
                       ) -> list[PlacementDecision]:
    """Decide offload per accelerable operator; returns all decisions made.

    With ``stats``, the *measured* host time of earlier executions of the
    same operator (by structural fingerprint) replaces the roofline host
    model in the comparison — the analytical host model is calibrated for
    tight kernels and can be orders of magnitude more optimistic than the
    engine's real per-row cost, which systematically starves accelerators.
    """
    decisions: list[PlacementDecision] = []
    for node in graph.topological_order():
        operator = _KIND_TO_OPERATOR.get(node.kind)
        if operator is None:
            continue
        work = _work_estimate(graph, node)
        decision = planner.decide(
            operator, work, observed_host_time_s=_observed_host_time(node, work, stats))
        decisions.append(decision)
        node.accelerator = decision.target if decision.offloaded else None
        node.annotations["placement_speedup"] = decision.speedup
        node.annotations["placement_host_time_s"] = decision.host_time_s
        node.annotations["placement_host_source"] = decision.host_time_source
    return decisions


def _observed_host_time(node: Operator, work: WorkEstimate,
                        stats: "RuntimeStats | None") -> float | None:
    """Measured host-engine time for ``node``, scaled to the current estimate."""
    if stats is None or node.engine is None:
        return None
    fingerprint = node.annotations.get("fingerprint")
    if stats.actionable_rows(fingerprint) is None:
        return None  # tiny observed reality: placement noise, not signal
    observed = stats.observed(fingerprint)
    if observed is None:
        return None
    time_s = observed.time_for(node.engine)
    if time_s is None or time_s <= 0.0:
        return None
    # Observations were taken at the observed cardinality; scale linearly to
    # the work estimate this decision is being made for.
    basis = max(observed.rows_in, observed.rows_out, 1.0)
    return time_s * (max(1, work.rows) / basis)


def _work_estimate(graph: IRGraph, node: Operator) -> WorkEstimate:
    input_rows = max((graph.node(i).estimated_rows for i in node.inputs), default=0)
    rows = max(node.estimated_rows, input_rows, 1)
    row_bytes = max(8, node.estimated_bytes // max(1, node.estimated_rows)) \
        if node.estimated_rows else 64
    if node.kind in ("train", "predict", "matmul", "gemv"):
        features = int(node.params.get("feature_count", 16))
        hidden = 32
        if node.kind == "train":
            epochs = int(node.params.get("epochs", 5))
            return WorkEstimate(rows=rows, matrix_dims=(rows * epochs, features, hidden))
        if node.kind == "predict":
            return WorkEstimate(rows=rows, matrix_dims=(rows, features, 1))
        return WorkEstimate(rows=rows, matrix_dims=(rows, features, features))
    selectivity = 1.0
    if node.kind == "filter" and node.inputs:
        parent_rows = max(1, graph.node(node.inputs[0]).estimated_rows)
        selectivity = min(1.0, node.estimated_rows / parent_rows)
    if node.kind == "project":
        selectivity = 0.5
    return WorkEstimate(rows=rows, row_bytes=row_bytes, selectivity=selectivity)
