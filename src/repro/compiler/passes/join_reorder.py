"""Join-ordering pass.

Hash joins build on their right input; making the smaller relation the build
side keeps the hash table small and the probe stream large.  Using the
cardinality annotations, this pass swaps join inputs so the estimated-smaller
side sits on the right (the build side), and prefers sort-merge when both
inputs are already sorted on the join keys.
"""

from __future__ import annotations

from repro.ir.graph import IRGraph


def reorder_joins(graph: IRGraph) -> int:
    """Swap join inputs so the smaller side is the build side; returns swap count."""
    swaps = 0
    for node in graph.nodes_of_kind("join"):
        if len(node.inputs) != 2:
            continue
        left = graph.node(node.inputs[0])
        right = graph.node(node.inputs[1])
        if not left.estimated_rows or not right.estimated_rows:
            continue
        if node.params.get("how", "inner") != "inner":
            # Outer joins are not symmetric; leave them alone.
            continue
        if right.estimated_rows > left.estimated_rows:
            node.inputs = [right.op_id, left.op_id]
            node.params["left_key"], node.params["right_key"] = (
                node.params.get("right_key"), node.params.get("left_key"),
            )
            swaps += 1
    return swaps


def choose_join_algorithms(graph: IRGraph, *, sort_merge_threshold: int = 100_000) -> int:
    """Pick hash vs sort-merge per join; returns the number of changes.

    Large inputs that a downstream operator wants sorted anyway (a ``sort``
    consumer on the join key) are switched to sort-merge, matching the
    paper's Admission/Patients walk-through where the sort feeding the merge
    is the accelerated operator.
    """
    changes = 0
    for node in graph.nodes_of_kind("join"):
        consumers = graph.consumers(node.op_id)
        wants_sorted = any(
            c.kind == "sort" and c.params.get("by") in (node.params.get("left_key"),
                                                        node.params.get("right_key"))
            for c in consumers
        )
        total_rows = sum(graph.node(i).estimated_rows for i in node.inputs)
        desired = "sort_merge" if (wants_sorted or total_rows >= sort_merge_threshold) \
            else "hash"
        if node.params.get("algorithm") != desired:
            node.params["algorithm"] = desired
            changes += 1
    return changes
