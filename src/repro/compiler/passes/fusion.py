"""Operator-fusion pass (an L1 optimization).

Polyglot systems such as Weld gain most of their speedup by fusing adjacent
operators so intermediate results are never materialized (paper §II-A).
Three fusions are implemented:

* adjacent filters become one filter with an AND-combined predicate,
* adjacent projections keep only the outermost column list,
* a projection directly above a scan is folded into the scan's column list
  (so the engine never materializes dropped columns).
"""

from __future__ import annotations

from repro.ir.graph import IRGraph
from repro.stores.relational.expressions import Expression, and_


def fuse_operators(graph: IRGraph) -> int:
    """Apply all fusions until fixpoint; returns the number of fusions."""
    total = 0
    changed = True
    while changed:
        changed = False
        for fuse in (_fuse_adjacent_filters, _fuse_adjacent_projects, _fuse_project_into_scan):
            count = fuse(graph)
            if count:
                total += count
                changed = True
    return total


def _fuse_adjacent_filters(graph: IRGraph) -> int:
    fused = 0
    for node in list(graph.nodes()):
        if node.kind != "filter" or not node.inputs or node.op_id not in graph:
            continue
        child_id = node.inputs[0]
        if child_id not in graph:
            continue
        child = graph.node(child_id)
        if child.kind != "filter":
            continue
        if len(graph.consumers(child.op_id)) != 1:
            continue
        upper = node.params.get("predicate")
        lower = child.params.get("predicate")
        if not isinstance(upper, Expression) or not isinstance(lower, Expression):
            continue
        node.params["predicate"] = and_(lower, upper)
        node.inputs = list(child.inputs)
        graph.prune(lambda n, dead=child.op_id: n.op_id != dead)
        fused += 1
    return fused


def _fuse_adjacent_projects(graph: IRGraph) -> int:
    fused = 0
    for node in list(graph.nodes()):
        if node.kind != "project" or not node.inputs or node.op_id not in graph:
            continue
        child_id = node.inputs[0]
        if child_id not in graph:
            continue
        child = graph.node(child_id)
        if child.kind != "project":
            continue
        if len(graph.consumers(child.op_id)) != 1:
            continue
        node.inputs = list(child.inputs)
        graph.prune(lambda n, dead=child.op_id: n.op_id != dead)
        fused += 1
    return fused


def _fuse_project_into_scan(graph: IRGraph) -> int:
    fused = 0
    for node in list(graph.nodes()):
        if node.kind != "project" or not node.inputs or node.op_id not in graph:
            continue
        child_id = node.inputs[0]
        if child_id not in graph:
            continue
        child = graph.node(child_id)
        if child.kind != "scan":
            continue
        if len(graph.consumers(child.op_id)) != 1:
            continue
        columns = node.params.get("columns")
        if not columns:
            continue
        child.params["columns"] = list(columns)
        # The projection node is now redundant: rewire its consumers to the scan.
        for consumer in graph.consumers(node.op_id):
            graph.replace_input(consumer.op_id, node.op_id, child.op_id)
        if node.op_id in graph.outputs:
            if node.annotations.get("fragment"):
                # Keep the output resolvable under the projection's name.
                child.annotations["fragment"] = node.annotations["fragment"]
            graph.replace_output(node.op_id, child.op_id)
        graph.prune(lambda n, dead=node.op_id: n.op_id != dead)
        fused += 1
    return fused
