"""Predicate-pushdown pass (an L1 optimization, paper §IV-B-3).

Filters are moved as close to the scans as possible: through projections,
and into one side of a join when the predicate references only that side's
columns.  Pushing a filter below a join shrinks the data crossing engine
boundaries — the dominant cost a polystore optimizer fights.
"""

from __future__ import annotations

from repro.catalog import Catalog
from repro.ir.graph import IRGraph
from repro.ir.nodes import Operator
from repro.stores.relational.expressions import Expression, and_, split_conjunction


def infer_columns(graph: IRGraph, catalog: Catalog | None = None) -> dict[str, frozenset[str]]:
    """Best-effort set of output column names per node.

    Only the relational subset participates: scans (from catalog schemas),
    projections (their column list), joins (union of both sides), and
    pass-through operators.  Nodes with unknown columns map to an empty set,
    which the pushdown pass treats as "don't touch".
    """
    columns: dict[str, frozenset[str]] = {}
    for node in graph.topological_order():
        if node.kind == "scan":
            names: frozenset[str] = frozenset()
            if catalog is not None and node.engine is not None and node.params.get("table"):
                names = frozenset(catalog.table_columns(node.engine, str(node.params["table"])))
            explicit = node.params.get("columns")
            if explicit:
                names = frozenset(explicit)
            columns[node.op_id] = names
        elif node.kind == "project":
            columns[node.op_id] = frozenset(node.params.get("columns") or [])
        elif node.kind == "join":
            left, right = node.inputs[0], node.inputs[1]
            columns[node.op_id] = columns.get(left, frozenset()) | columns.get(right, frozenset())
        elif node.kind in ("filter", "sort", "limit", "top_k", "migrate", "materialize"):
            source = node.inputs[0] if node.inputs else None
            columns[node.op_id] = columns.get(source, frozenset()) if source else frozenset()
        elif node.kind == "aggregate":
            group_by = frozenset(node.params.get("group_by") or [])
            aliases = frozenset(a.alias for a in node.params.get("aggregates") or [])
            columns[node.op_id] = group_by | aliases
        else:
            columns[node.op_id] = frozenset()
    return columns


def push_down_filters(graph: IRGraph, catalog: Catalog | None = None) -> int:
    """Push filters below projects and joins; returns the number of rewrites."""
    rewrites = 0
    changed = True
    while changed:
        changed = False
        columns = infer_columns(graph, catalog)
        for node in list(graph.nodes()):
            if node.kind != "filter" or not node.inputs:
                continue
            child = graph.node(node.inputs[0])
            if child.kind == "project" and _swap_filter_project(graph, node, child):
                rewrites += 1
                changed = True
                break
            if child.kind == "join" and _push_into_join(graph, node, child, columns):
                rewrites += 1
                changed = True
                break
    return rewrites


def _swap_filter_project(graph: IRGraph, filter_node: Operator,
                         project_node: Operator) -> bool:
    """Rewrite filter(project(x)) into project(filter(x)) when safe."""
    predicate = filter_node.params.get("predicate")
    if not isinstance(predicate, Expression):
        return False
    project_columns = set(project_node.params.get("columns") or [])
    if project_columns and not predicate.referenced_columns() <= project_columns:
        return False
    if len(graph.consumers(project_node.op_id)) != 1:
        return False
    source = project_node.inputs[0]
    # Rewire: source -> filter -> project -> (old consumers of filter)
    filter_node.inputs = [source]
    project_node.inputs = [filter_node.op_id]
    for consumer in graph.consumers(filter_node.op_id):
        if consumer.op_id != project_node.op_id:
            graph.replace_input(consumer.op_id, filter_node.op_id, project_node.op_id)
    if filter_node.op_id in graph.outputs:
        graph.replace_output(filter_node.op_id, project_node.op_id)
    return True


def _push_into_join(graph: IRGraph, filter_node: Operator, join_node: Operator,
                    columns: dict[str, frozenset[str]]) -> bool:
    """Push conjuncts of a post-join filter into the join side that owns them."""
    predicate = filter_node.params.get("predicate")
    if not isinstance(predicate, Expression):
        return False
    if len(graph.consumers(join_node.op_id)) != 1:
        return False
    left_id, right_id = join_node.inputs[0], join_node.inputs[1]
    left_columns = columns.get(left_id, frozenset())
    right_columns = columns.get(right_id, frozenset())
    if not left_columns and not right_columns:
        return False
    conjuncts = split_conjunction(predicate)
    pushed_left: list[Expression] = []
    pushed_right: list[Expression] = []
    remaining: list[Expression] = []
    for conjunct in conjuncts:
        referenced = conjunct.referenced_columns()
        if left_columns and referenced <= left_columns:
            pushed_left.append(conjunct)
        elif right_columns and referenced <= right_columns:
            pushed_right.append(conjunct)
        else:
            remaining.append(conjunct)
    if not pushed_left and not pushed_right:
        return False
    for side_input, side_predicates in ((left_id, pushed_left), (right_id, pushed_right)):
        if side_predicates:
            side_filter = Operator(
                "filter",
                {"predicate": and_(*side_predicates)},
                engine=graph.node(side_input).engine,
            )
            side_filter.annotations["fragment"] = filter_node.annotations.get("fragment", "")
            graph.insert_between(side_input, join_node.op_id, side_filter)
    if remaining:
        filter_node.params["predicate"] = and_(*remaining)
    else:
        graph.remove(filter_node.op_id)
    return True
