"""Predicate-pushdown passes (L1 optimizations, paper §IV-B-3).

Two cooperating rewrites:

* :func:`push_down_filters` moves filters as close to the scans as possible:
  through projections, and into one side of a join when the predicate
  references only that side's columns.  Pushing a filter below a join
  shrinks the data crossing engine boundaries — the dominant cost a
  polystore optimizer fights.
* :func:`absorb_into_leaves` then merges a filter sitting directly on a leaf
  read into the leaf itself as a *structured* predicate parameter — no SQL
  string is ever parsed.  Relational scans, key/value lookups, timeseries
  summaries and text keyword features all participate: their adapters
  evaluate the predicate engine-side, and key-equality conjuncts
  additionally become routing hints (explicit ``keys`` / ``series_keys`` /
  ``doc_ids``) that the scatter-gather path uses to prune shard fan-out.
"""

from __future__ import annotations

from typing import Any

from repro.catalog import Catalog
from repro.ir.graph import IRGraph
from repro.ir.nodes import Operator
from repro.stores.relational.expressions import (
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Literal,
    and_,
    split_conjunction,
)


def infer_columns(graph: IRGraph, catalog: Catalog | None = None) -> dict[str, frozenset[str]]:
    """Best-effort set of output column names per node.

    Only the relational subset participates: scans (from catalog schemas),
    projections (their column list), joins (union of both sides), and
    pass-through operators.  Nodes with unknown columns map to an empty set,
    which the pushdown pass treats as "don't touch".
    """
    columns: dict[str, frozenset[str]] = {}
    for node in graph.topological_order():
        if node.kind == "scan":
            names: frozenset[str] = frozenset()
            if catalog is not None and node.engine is not None and node.params.get("table"):
                names = frozenset(catalog.table_columns(node.engine, str(node.params["table"])))
            explicit = node.params.get("columns")
            if explicit:
                names = frozenset(explicit)
            columns[node.op_id] = names
        elif node.kind == "project":
            columns[node.op_id] = frozenset(node.params.get("columns") or [])
        elif node.kind == "join":
            left, right = node.inputs[0], node.inputs[1]
            columns[node.op_id] = columns.get(left, frozenset()) | columns.get(right, frozenset())
        elif node.kind in ("filter", "sort", "limit", "top_k", "migrate", "materialize"):
            source = node.inputs[0] if node.inputs else None
            columns[node.op_id] = columns.get(source, frozenset()) if source else frozenset()
        elif node.kind == "aggregate":
            group_by = frozenset(node.params.get("group_by") or [])
            aliases = frozenset(a.alias for a in node.params.get("aggregates") or [])
            columns[node.op_id] = group_by | aliases
        else:
            columns[node.op_id] = frozenset()
    return columns


def push_down_filters(graph: IRGraph, catalog: Catalog | None = None) -> int:
    """Push filters below projects and joins; returns the number of rewrites."""
    rewrites = 0
    changed = True
    while changed:
        changed = False
        columns = infer_columns(graph, catalog)
        for node in list(graph.nodes()):
            if node.kind != "filter" or not node.inputs:
                continue
            child = graph.node(node.inputs[0])
            if child.kind == "project" and _swap_filter_project(graph, node, child):
                rewrites += 1
                changed = True
                break
            if child.kind == "join" and _push_into_join(graph, node, child, columns):
                rewrites += 1
                changed = True
                break
    return rewrites


def _swap_filter_project(graph: IRGraph, filter_node: Operator,
                         project_node: Operator) -> bool:
    """Rewrite filter(project(x)) into project(filter(x)) when safe."""
    predicate = filter_node.params.get("predicate")
    if not isinstance(predicate, Expression):
        return False
    project_columns = set(project_node.params.get("columns") or [])
    if project_columns and not predicate.referenced_columns() <= project_columns:
        return False
    if len(graph.consumers(project_node.op_id)) != 1:
        return False
    source = project_node.inputs[0]
    # Rewire: source -> filter -> project -> (old consumers of filter)
    filter_node.inputs = [source]
    project_node.inputs = [filter_node.op_id]
    for consumer in graph.consumers(filter_node.op_id):
        if consumer.op_id != project_node.op_id:
            graph.replace_input(consumer.op_id, filter_node.op_id, project_node.op_id)
    if filter_node.op_id in graph.outputs:
        graph.replace_output(filter_node.op_id, project_node.op_id)
    return True


def _push_into_join(graph: IRGraph, filter_node: Operator, join_node: Operator,
                    columns: dict[str, frozenset[str]]) -> bool:
    """Push conjuncts of a post-join filter into the join side that owns them."""
    predicate = filter_node.params.get("predicate")
    if not isinstance(predicate, Expression):
        return False
    if len(graph.consumers(join_node.op_id)) != 1:
        return False
    left_id, right_id = join_node.inputs[0], join_node.inputs[1]
    left_columns = columns.get(left_id, frozenset())
    right_columns = columns.get(right_id, frozenset())
    if not left_columns and not right_columns:
        return False
    conjuncts = split_conjunction(predicate)
    pushed_left: list[Expression] = []
    pushed_right: list[Expression] = []
    remaining: list[Expression] = []
    for conjunct in conjuncts:
        referenced = conjunct.referenced_columns()
        if left_columns and referenced <= left_columns:
            pushed_left.append(conjunct)
        elif right_columns and referenced <= right_columns:
            pushed_right.append(conjunct)
        else:
            remaining.append(conjunct)
    if not pushed_left and not pushed_right:
        return False
    for side_input, side_predicates in ((left_id, pushed_left), (right_id, pushed_right)):
        if side_predicates:
            side_filter = Operator(
                "filter",
                {"predicate": and_(*side_predicates)},
                engine=graph.node(side_input).engine,
            )
            side_filter.annotations["fragment"] = filter_node.annotations.get("fragment", "")
            graph.insert_between(side_input, join_node.op_id, side_filter)
    if remaining:
        filter_node.params["predicate"] = and_(*remaining)
    else:
        graph.remove(filter_node.op_id)
    return True


# -- absorbing filters into leaf reads --------------------------------------------------

#: Leaf reads that accept a structured ``predicate`` parameter.
ABSORBING_LEAF_KINDS = frozenset({
    "scan", "kv_get", "kv_range", "ts_summarize", "keyword_features",
})


def absorb_into_leaves(graph: IRGraph, catalog: Catalog | None = None) -> int:
    """Merge filters that directly follow a leaf read into the leaf.

    The filter's predicate lands in the leaf's ``predicate`` parameter (ANDed
    with any predicate already absorbed), the filter node disappears, and —
    where a conjunct pins the read's key column to literal values — the leaf
    additionally gains explicit key routing hints the scatter-gather executor
    prunes shards with.  Returns the number of filters absorbed.
    """
    rewrites = 0
    changed = True
    while changed:
        changed = False
        for node in list(graph.nodes()):
            if node.kind != "filter" or len(node.inputs) != 1:
                continue
            leaf = graph.node(node.inputs[0])
            if leaf.kind not in ABSORBING_LEAF_KINDS or leaf.inputs:
                continue
            if len(graph.consumers(leaf.op_id)) != 1:
                continue  # another consumer needs the unfiltered read
            if leaf.op_id in graph.outputs:
                continue  # the unfiltered read is itself a program output
            predicate = node.params.get("predicate")
            if not isinstance(predicate, Expression):
                continue
            existing = leaf.params.get("predicate")
            if isinstance(existing, Expression):
                predicate = and_(existing, predicate)
            leaf.params["predicate"] = predicate
            _extract_key_routing(leaf)
            _convert_to_index_seek(leaf, catalog)
            if node.op_id in graph.outputs and node.annotations.get("fragment"):
                # The filter was a named program output; its name must keep
                # resolving once the leaf answers in its place.
                leaf.annotations["fragment"] = node.annotations["fragment"]
            graph.remove(node.op_id)
            rewrites += 1
            changed = True
    return rewrites


def _extract_key_routing(leaf: Operator) -> None:
    """Derive explicit key lists from key-column equality conjuncts.

    Key/value prefix lookups become explicit-key lookups, timeseries
    summaries gain a ``series_keys`` list and keyword features a ``doc_ids``
    list — each of which both narrows the engine-side read and lets the
    scatter path contact only the owning shards.  Relational scans carry the
    predicate itself; the scatter path matches it against the table's
    declared shard key at dispatch time.
    """
    predicate = leaf.params.get("predicate")
    if not isinstance(predicate, Expression):
        return
    if leaf.kind == "kv_get" and not leaf.params.get("keys"):
        prefix = leaf.params.get("key_prefix")
        key_column = str(leaf.params.get("key_column", "key"))
        values = predicate_key_values(predicate, key_column)
        if values is not None and prefix is not None:
            leaf.params["keys"] = [f"{prefix}{key_text(value)}" for value in values]
    elif leaf.kind == "ts_summarize" and not leaf.params.get("series_keys"):
        prefix = str(leaf.params.get("series_prefix", ""))
        key_column = str(leaf.params.get("key_column", "pid"))
        values = predicate_key_values(predicate, key_column)
        if values is not None:
            leaf.params["series_keys"] = [f"{prefix}{key_text(value)}" for value in values]
    elif leaf.kind == "keyword_features" and not leaf.params.get("doc_ids"):
        prefix = leaf.params.get("doc_prefix") or ""
        id_column = str(leaf.params.get("id_column", "doc_id"))
        values = predicate_key_values(predicate, id_column)
        if values is not None:
            leaf.params["doc_ids"] = [f"{prefix}{key_text(value)}" for value in values]


def _convert_to_index_seek(leaf: Operator, catalog: Catalog | None) -> None:
    """Turn a predicated scan into an ``index_seek`` when an index matches.

    A single-value equality conjunct on an indexed column lets the engine
    answer from the index instead of scanning the heap; the full predicate
    stays on the node (re-checking the equality is cheap and the residual
    conjuncts still must filter).  On sharded engines this compounds with
    routing: the seek contacts only the owning shard *and* reads only the
    matching rows there.
    """
    if leaf.kind != "scan" or catalog is None or leaf.engine is None:
        return
    predicate = leaf.params.get("predicate")
    if not isinstance(predicate, Expression):
        return
    try:
        engine = catalog.engine(leaf.engine)
    except Exception:  # noqa: BLE001 - unbound engines stay plain scans
        return
    has_index = getattr(engine, "has_index", None)
    if not callable(has_index):
        return
    table = str(leaf.params.get("table", ""))
    for conjunct in split_conjunction(predicate):
        if not (isinstance(conjunct, Comparison) and conjunct.op in ("=", "==")):
            continue
        left, right = conjunct.left, conjunct.right
        if isinstance(right, ColumnRef) and isinstance(left, Literal):
            left, right = right, left
        if not (isinstance(left, ColumnRef) and isinstance(right, Literal)
                and isinstance(right.value, (str, int, float, bool))):
            continue
        if not has_index(table, left.name):
            continue
        leaf.kind = "index_seek"
        leaf.params["column"] = left.name
        leaf.params["value"] = right.value
        return


def predicate_key_values(predicate: Expression, column: str) -> list[Any] | None:
    """Literal values a predicate pins ``column`` to, or ``None``.

    Only top-level conjuncts constrain the key: an equality against a
    literal yields one value, an ``IN`` list yields its members, and several
    key conjuncts intersect.  Non-key conjuncts are ignored (they filter
    rows, not the routing).  Returns ``None`` when no conjunct pins the key —
    the read must stay a full fan-out.
    """
    values: list[Any] | None = None
    for conjunct in split_conjunction(predicate):
        found = _conjunct_key_values(conjunct, column)
        if found is None:
            continue
        if values is None:
            values = list(found)
        else:
            values = [value for value in values if value in found]
    return values


def key_text(value: Any) -> str:
    """Render a key value the way engines spell it inside prefixed keys.

    Integer-valued floats collapse to their integer form so a predicate
    written as ``col("pid") == 5.0`` still finds the series ``"hr/5"``.
    """
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _conjunct_key_values(conjunct: Expression, column: str) -> list[Any] | None:
    if isinstance(conjunct, Comparison) and conjunct.op in ("=", "=="):
        left, right = conjunct.left, conjunct.right
        if isinstance(right, ColumnRef) and isinstance(left, Literal):
            left, right = right, left
        if (isinstance(left, ColumnRef) and left.name == column
                and isinstance(right, Literal)
                and isinstance(right.value, (str, int, float, bool))):
            return [right.value]
    if (isinstance(conjunct, InList) and isinstance(conjunct.operand, ColumnRef)
            and conjunct.operand.name == column
            and all(isinstance(v, (str, int, float, bool))
                    for v in conjunct.values)):
        return list(conjunct.values)
    return None
