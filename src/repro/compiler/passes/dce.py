"""Dead-code elimination: remove operators not reachable from any output."""

from __future__ import annotations

from repro.ir.graph import IRGraph


def eliminate_dead_code(graph: IRGraph) -> int:
    """Remove unreachable nodes; returns the number removed."""
    if not graph.outputs:
        return 0
    live: set[str] = set()
    frontier = list(graph.outputs)
    while frontier:
        current = frontier.pop()
        if current in live:
            continue
        live.add(current)
        frontier.extend(graph.node(current).inputs)
    return graph.prune(lambda node: node.op_id in live)
