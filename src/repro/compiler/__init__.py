"""Polystore++ compiler: frontend, optimization passes and pipeline."""

from repro.compiler.annotate import annotate_graph, total_estimated_bytes
from repro.compiler.frontend import Frontend, insert_migrations
from repro.compiler.pipeline import CompilationResult, Compiler, CompilerOptions

__all__ = [
    "Compiler",
    "CompilerOptions",
    "CompilationResult",
    "Frontend",
    "insert_migrations",
    "annotate_graph",
    "total_estimated_bytes",
]
