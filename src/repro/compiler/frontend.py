"""Compiler frontend: lower a heterogeneous program to the IR.

Each fragment paradigm has its own lowering routine; SQL fragments reuse the
relational engine's parser and logical planner.  After all fragments are
lowered, :func:`insert_migrations` adds explicit ``migrate`` operators on
every cross-engine data-flow edge — the data-movement operators the paper's
Data Migrator executes and Polystore++ accelerates (§III-A-3).
"""

from __future__ import annotations

from typing import Any

from repro.catalog import Catalog
from repro.eide.program import HeterogeneousProgram, SubProgram
from repro.exceptions import CompilationError
from repro.ir.graph import IRGraph
from repro.ir.nodes import Operator
from repro.stores.relational.planner import (
    AggregatePlan,
    FilterPlan,
    JoinPlan,
    LimitPlan,
    LogicalPlan,
    ProjectPlan,
    ScanPlan,
    SortPlan,
)
from repro.stores.relational.sql import parse_select
from repro.stores.relational.planner import build_plan


class Frontend:
    """Lowers :class:`HeterogeneousProgram` fragments into one IR graph."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def lower(self, program: HeterogeneousProgram) -> IRGraph:
        """Lower every fragment, wire cross-fragment edges, insert migrations."""
        graph = IRGraph(program.name)
        fragment_outputs: dict[str, str] = {}
        for fragment in program.fragments:
            output_id = self._lower_fragment(graph, fragment, fragment_outputs)
            fragment_outputs[fragment.name] = output_id
        for output in program.outputs:
            graph.mark_output(fragment_outputs[output])
        insert_migrations(graph)
        return graph

    # -- per-paradigm lowering -----------------------------------------------------------

    def _lower_fragment(self, graph: IRGraph, fragment: SubProgram,
                        fragment_outputs: dict[str, str]) -> str:
        engine = self._engine_name(fragment)
        inputs = [fragment_outputs[name] for name in fragment.inputs]
        paradigm = fragment.paradigm
        if paradigm == "sql":
            return self._lower_sql(graph, fragment, engine)
        if paradigm == "kv_lookup":
            return self._add(graph, "kv_get", fragment, engine, inputs,
                             keys=fragment.params.get("keys"),
                             key_prefix=fragment.params.get("key_prefix"))
        if paradigm == "timeseries_summary":
            return self._add(graph, "ts_summarize", fragment, engine, inputs,
                             series_prefix=fragment.params["series_prefix"],
                             start=fragment.params.get("start"),
                             end=fragment.params.get("end"))
        if paradigm == "window_aggregate":
            return self._add(graph, "window_aggregate", fragment, engine, inputs,
                             series=fragment.params["series"],
                             window_s=fragment.params["window_s"],
                             aggregation=fragment.params.get("aggregation", "mean"))
        if paradigm == "graph_query":
            return self._lower_graph(graph, fragment, engine, inputs)
        if paradigm == "text_search":
            return self._add(graph, "text_search", fragment, engine, inputs,
                             query=fragment.params["query"],
                             top_k=fragment.params.get("top_k", 10))
        if paradigm == "text_features":
            return self._add(graph, "keyword_features", fragment, engine, inputs,
                             keywords=list(fragment.params["keywords"]),
                             doc_prefix=fragment.params.get("doc_prefix"),
                             id_column=fragment.params.get("id_column", "doc_id"))
        if paradigm == "join":
            return self._add(graph, "join", fragment, engine, inputs,
                             left_key=fragment.params["left_key"],
                             right_key=fragment.params["right_key"],
                             how=fragment.params.get("how", "inner"))
        if paradigm == "feature_matrix":
            return self._add(graph, "feature_matrix", fragment, engine, inputs,
                             feature_columns=fragment.params.get("feature_columns"),
                             label_column=fragment.params.get("label_column"))
        if paradigm == "train":
            return self._add(graph, "train", fragment, engine, inputs,
                             **{k: v for k, v in fragment.params.items()})
        if paradigm == "predict":
            return self._add(graph, "predict", fragment, engine, inputs,
                             model_name=fragment.params["model_name"])
        if paradigm == "kmeans":
            return self._add(graph, "kmeans", fragment, engine, inputs,
                             n_clusters=fragment.params["n_clusters"])
        if paradigm == "python":
            return self._add(graph, "python_udf", fragment, engine, inputs,
                             fn=fragment.params["fn"])
        raise CompilationError(f"frontend cannot lower paradigm {paradigm!r}")

    def _lower_sql(self, graph: IRGraph, fragment: SubProgram, engine: str) -> str:
        """SQL text -> relational logical plan -> IR operators."""
        query = fragment.params.get("query")
        if not query:
            raise CompilationError(f"SQL fragment {fragment.name!r} has no query text")
        statement = parse_select(query)
        plan = build_plan(statement)
        return self._lower_plan(graph, plan, engine, fragment.name)

    def _lower_plan(self, graph: IRGraph, plan: LogicalPlan, engine: str,
                    fragment_name: str) -> str:
        """Recursively translate a relational logical plan into IR nodes."""
        if isinstance(plan, ScanPlan):
            node = Operator("scan", {"table": plan.table, "columns": plan.columns},
                            [], engine)
        elif isinstance(plan, FilterPlan):
            child = self._lower_plan(graph, plan.child, engine, fragment_name)
            node = Operator("filter", {"predicate": plan.predicate}, [child], engine)
        elif isinstance(plan, ProjectPlan):
            child = self._lower_plan(graph, plan.child, engine, fragment_name)
            node = Operator("project", {"columns": list(plan.columns)}, [child], engine)
        elif isinstance(plan, JoinPlan):
            left = self._lower_plan(graph, plan.left, engine, fragment_name)
            right = self._lower_plan(graph, plan.right, engine, fragment_name)
            node = Operator("join", {
                "left_key": plan.left_key, "right_key": plan.right_key,
                "how": plan.how, "algorithm": plan.algorithm,
            }, [left, right], engine)
        elif isinstance(plan, AggregatePlan):
            child = self._lower_plan(graph, plan.child, engine, fragment_name)
            node = Operator("aggregate", {
                "group_by": list(plan.group_by),
                "aggregates": list(plan.aggregates),
            }, [child], engine)
        elif isinstance(plan, SortPlan):
            child = self._lower_plan(graph, plan.child, engine, fragment_name)
            node = Operator("sort", {"by": plan.by, "descending": plan.descending},
                            [child], engine)
        elif isinstance(plan, LimitPlan):
            child = self._lower_plan(graph, plan.child, engine, fragment_name)
            node = Operator("limit", {"n": plan.n}, [child], engine)
        else:
            raise CompilationError(f"cannot lower plan node {type(plan).__name__}")
        node.annotations["fragment"] = fragment_name
        graph.add(node)
        return node.op_id

    def _lower_graph(self, graph: IRGraph, fragment: SubProgram, engine: str,
                     inputs: list[str]) -> str:
        operation = fragment.params.get("operation")
        params = {k: v for k, v in fragment.params.items() if k != "operation"}
        kind_by_operation = {
            "nodes": "graph_nodes",
            "shortest_path": "shortest_path",
            "neighborhood": "neighborhood",
            "match": "graph_match",
        }
        kind = kind_by_operation.get(operation or "")
        if kind is None:
            raise CompilationError(
                f"unknown graph operation {operation!r} in fragment {fragment.name!r}"
            )
        return self._add(graph, kind, fragment, engine, inputs, **params)

    # -- helpers ------------------------------------------------------------------------------

    def _add(self, graph: IRGraph, kind: str, fragment: SubProgram, engine: str,
             inputs: list[str], **params: Any) -> str:
        node = Operator(kind, params, inputs, engine)
        node.annotations["fragment"] = fragment.name
        graph.add(node)
        return node.op_id

    def _engine_name(self, fragment: SubProgram) -> str:
        if fragment.engine is not None:
            if not self.catalog.has_engine(fragment.engine):
                raise CompilationError(
                    f"fragment {fragment.name!r} targets unknown engine {fragment.engine!r}"
                )
            return fragment.engine
        return self.catalog.default_engine_for(fragment.paradigm).name


def insert_migrations(graph: IRGraph) -> int:
    """Insert a ``migrate`` operator on every cross-engine edge.

    Returns the number of migration operators added.  Edges into ``migrate``
    nodes themselves are left untouched.
    """
    added = 0
    for node in list(graph.topological_order()):
        if node.kind == "migrate":
            continue
        for input_id in list(node.inputs):
            producer = graph.node(input_id)
            if producer.kind == "migrate":
                continue
            if producer.engine is None or node.engine is None:
                continue
            if producer.engine == node.engine:
                continue
            migrate = Operator(
                "migrate",
                {"source_engine": producer.engine, "target_engine": node.engine},
                engine=node.engine,
            )
            migrate.annotations["fragment"] = node.annotations.get("fragment", "")
            graph.insert_between(input_id, node.op_id, migrate)
            added += 1
    return added
