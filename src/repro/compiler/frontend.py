"""Compiler frontend: lower a program's dataflow trees to the IR.

Both program flavours take the same path: a legacy
:class:`~repro.eide.program.HeterogeneousProgram` first converts into its
canonical :class:`~repro.eide.dataflow.DataflowProgram` form (its SQL
fragments parsed into structured plans), and a dataflow program built with
:class:`~repro.eide.dataflow.Dataset` handles *is already* that form.  The
trees are value-semantics IR operators, so lowering is a structural walk:
shared subtrees (datasets feeding several consumers, legacy fragments
referenced by several fragments) lower once.

After lowering, :func:`insert_migrations` adds explicit ``migrate``
operators on every cross-engine data-flow edge — the data-movement operators
the paper's Data Migrator executes and Polystore++ accelerates (§III-A-3).
"""

from __future__ import annotations

from repro.catalog import Catalog
from repro.eide.dataflow import (
    KIND_PARADIGMS,
    DataflowNode,
    DataflowProgram,
)
from repro.eide.program import HeterogeneousProgram
from repro.exceptions import CompilationError
from repro.ir.graph import IRGraph
from repro.ir.nodes import Operator

#: Programs the frontend accepts.
Program = HeterogeneousProgram | DataflowProgram


class Frontend:
    """Lowers program dataflow trees into one IR graph."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def lower(self, program: Program) -> IRGraph:
        """Lower every output tree, wire shared subtrees, insert migrations."""
        flow = (program if isinstance(program, DataflowProgram)
                else program.to_dataflow())
        graph = IRGraph(flow.name)
        labels = _effective_labels(flow)
        lowered: dict[int, str] = {}
        for name, root in flow.output_items():
            graph.mark_output(self._lower_node(graph, root, labels, lowered))
        insert_migrations(graph)
        return graph

    def _lower_node(self, graph: IRGraph, node: DataflowNode,
                    labels: dict[int, str], lowered: dict[int, str]) -> str:
        if id(node) in lowered:
            return lowered[id(node)]
        inputs = [self._lower_node(graph, child, labels, lowered)
                  for child in node.inputs]
        # ``view_read`` is served by the middleware's view registry, not an
        # engine; it carries no engine binding at all.
        engine = None if node.kind == "view_read" else self._engine_name(node)
        operator = Operator(node.kind, dict(node.params), inputs, engine)
        operator.annotations["fragment"] = labels.get(id(node), "")
        graph.add(operator)
        lowered[id(node)] = operator.op_id
        return operator.op_id

    def _engine_name(self, node: DataflowNode) -> str:
        if node.engine is not None:
            if not self.catalog.has_engine(node.engine):
                where = f" (fragment {node.label!r})" if node.label else ""
                raise CompilationError(
                    f"operator {node.kind!r}{where} targets unknown engine "
                    f"{node.engine!r}"
                )
            return node.engine
        paradigm = KIND_PARADIGMS.get(node.kind)
        if paradigm is None:
            raise CompilationError(
                f"no default engine rule for operator kind {node.kind!r}; "
                f"bind it to an engine explicitly"
            )
        return self.catalog.default_engine_for(paradigm).name


def _effective_labels(flow: DataflowProgram) -> dict[int, str]:
    """Fragment labels per node: explicit labels flow down to unlabeled
    children (as legacy fragments named their whole subtree), first label
    wins for shared nodes.  Computed here rather than written onto the
    trees, so one dataset object may appear in several programs — and each
    output *root* is forced to its program-level output name, which must win
    over any ``.named()`` label for the result to resolve under it."""
    labels: dict[int, str] = {}

    def visit(node: DataflowNode, inherited: str) -> None:
        if id(node) in labels:
            return
        label = node.label or inherited
        labels[id(node)] = label
        for child in node.inputs:
            visit(child, label)

    for name, root in flow.output_items():
        labels[id(root)] = name
        for child in root.inputs:
            visit(child, root.label or name)
    return labels


def insert_migrations(graph: IRGraph) -> int:
    """Insert a ``migrate`` operator on every cross-engine edge.

    Returns the number of migration operators added.  Edges into ``migrate``
    nodes themselves are left untouched.
    """
    added = 0
    for node in list(graph.topological_order()):
        if node.kind == "migrate":
            continue
        for input_id in list(node.inputs):
            producer = graph.node(input_id)
            if producer.kind == "migrate":
                continue
            if producer.engine is None or node.engine is None:
                continue
            if producer.engine == node.engine:
                continue
            migrate = Operator(
                "migrate",
                {"source_engine": producer.engine, "target_engine": node.engine},
                engine=node.engine,
            )
            migrate.annotations["fragment"] = node.annotations.get("fragment", "")
            graph.insert_between(input_id, node.op_id, migrate)
            added += 1
    return added
