"""Cardinality and size annotation of IR graphs.

The optimizer and the accelerator-placement pass need per-operator estimates
of output rows and bytes.  Estimation walks the graph in topological order:
scans read engine statistics from the catalog, filters apply predicate
selectivities, joins use the standard ``|L| * |R| / max(distinct)`` heuristic
(approximated with a fixed fan-out), and everything else propagates its
input's estimate.

When a :class:`~repro.middleware.feedback.RuntimeStats` store is supplied,
the walk additionally fingerprints every node and prefers the *observed*
output cardinality recorded by earlier executions of the same operator over
the analytical model — the feedback loop that lets re-compiled plans correct
misleading selectivity guesses and post-compile data growth.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.catalog import Catalog
from repro.ir.graph import IRGraph
from repro.ir.nodes import Operator
from repro.stores.relational.expressions import Expression

if TYPE_CHECKING:  # imported lazily at runtime to keep the layering acyclic
    from repro.middleware.feedback import RuntimeStats

_DEFAULT_ROWS = 1_000
_DEFAULT_ROW_BYTES = 64
#: Fraction of the cross product an equi-join is assumed to retain.
_JOIN_SELECTIVITY = 0.001


def annotate_graph(graph: IRGraph, catalog: Catalog | None = None,
                   stats: "RuntimeStats | None" = None) -> None:
    """Fill ``estimated_rows`` and ``estimated_bytes`` for every node in place.

    With ``stats``, every node is fingerprinted (annotation ``fingerprint``)
    and observed cardinalities take precedence over the analytical model;
    the model's own estimate is kept in ``estimated_rows_model`` and the
    ``rows_source`` annotation records which one won.
    """
    # Lazy import: the feedback package lives in the middleware, which
    # transitively imports the compiler; a module-level import would cycle.
    from repro.middleware.feedback.fingerprint import fingerprint_graph

    fingerprints = fingerprint_graph(graph) if stats is not None else {}
    for node in graph.topological_order():
        rows = _estimate_rows(graph, node, catalog)
        observed = (stats.actionable_rows(fingerprints.get(node.op_id))
                    if stats is not None else None)
        if observed is not None:
            node.annotations["estimated_rows_model"] = rows
            node.annotations["rows_source"] = "observed"
            rows = observed
        elif stats is not None:
            node.annotations["rows_source"] = "model"
        node.estimated_rows = rows
        node.estimated_bytes = rows * _row_bytes(graph, node, catalog)


def _estimate_rows(graph: IRGraph, node: Operator, catalog: Catalog | None) -> int:
    inputs = [graph.node(i) for i in node.inputs]
    input_rows = [max(1, n.estimated_rows) for n in inputs]
    kind = node.kind

    if kind in ("scan", "index_seek"):
        rows = _scan_rows(node, catalog)
        # A predicate absorbed into the leaf read filters engine-side; the
        # estimate shrinks exactly as a separate filter node's would.  A seek
        # converted from a predicated scan keeps the seek equality inside
        # that predicate, so the selectivity already covers it — only a
        # hand-built (predicate-less) seek uses the flat 1/100 factor.
        predicate = node.params.get("predicate")
        if isinstance(predicate, Expression):
            return max(1, int(rows * predicate.estimated_selectivity()))
        return rows if kind == "scan" else max(1, rows // 100)
    if kind == "filter":
        predicate = node.params.get("predicate")
        selectivity = predicate.estimated_selectivity() \
            if isinstance(predicate, Expression) else 0.5
        return max(1, int(input_rows[0] * selectivity))
    if kind == "join":
        left, right = (input_rows + [1, 1])[:2]
        return max(1, int(left * right * _JOIN_SELECTIVITY), min(left, right))
    if kind == "aggregate":
        group_by = node.params.get("group_by") or []
        if not group_by:
            return 1
        return max(1, input_rows[0] // 10)
    if kind == "limit":
        return min(input_rows[0], int(node.params.get("n", input_rows[0])))
    if kind == "top_k":
        return min(input_rows[0], int(node.params.get("k", input_rows[0])))
    if kind in ("kv_get",):
        keys = node.params.get("keys")
        return len(keys) if keys else _DEFAULT_ROWS
    if kind in ("ts_range", "window_aggregate"):
        return _DEFAULT_ROWS
    if kind == "ts_summarize":
        return _DEFAULT_ROWS
    if kind in ("graph_match", "graph_nodes", "neighborhood"):
        return _DEFAULT_ROWS
    if kind == "shortest_path":
        return 1
    if kind in ("text_search",):
        return int(node.params.get("top_k", 10))
    if kind == "keyword_features":
        return _DEFAULT_ROWS
    if kind in ("train", "kmeans"):
        return 1
    if kind == "predict":
        return input_rows[0] if input_rows else _DEFAULT_ROWS
    if kind in ("migrate", "materialize", "project", "sort", "python_udf",
                "feature_matrix", "matmul", "gemv", "union"):
        if kind == "union":
            return sum(input_rows) if input_rows else _DEFAULT_ROWS
        return input_rows[0] if input_rows else _DEFAULT_ROWS
    return input_rows[0] if input_rows else _DEFAULT_ROWS


def _scan_rows(node: Operator, catalog: Catalog | None) -> int:
    if catalog is None or node.engine is None:
        return _DEFAULT_ROWS
    table = node.params.get("table")
    if not table:
        return _DEFAULT_ROWS
    rows = catalog.table_rows(node.engine, str(table))
    return rows if rows > 0 else _DEFAULT_ROWS


def _row_bytes(graph: IRGraph, node: Operator, catalog: Catalog | None) -> int:
    if node.kind == "scan" and catalog is not None and node.engine is not None:
        table = node.params.get("table")
        if table:
            columns = catalog.table_columns(node.engine, str(table))
            if columns:
                return max(8, 16 * len(columns))
    if node.kind == "project":
        columns = node.params.get("columns") or []
        if columns:
            return max(8, 16 * len(columns))
    if node.inputs:
        producer = graph.node(node.inputs[0])
        if producer.estimated_rows:
            return max(8, producer.estimated_bytes // max(1, producer.estimated_rows))
    return _DEFAULT_ROW_BYTES


def total_estimated_bytes(graph: IRGraph) -> int:
    """Sum of estimated output bytes across the graph (a crude plan cost)."""
    return sum(node.estimated_bytes for node in graph.nodes())
