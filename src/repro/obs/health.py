"""Component health checks and SLO burn-rate tracking.

Two complementary views of "is this deployment OK":

* **Health checks** inspect live component state — durability liveness,
  changelog retention pressure, serve admission-queue saturation, view
  staleness/errors — and each return ``ok`` / ``warn`` / ``fail`` with a
  detail dict.  ``system.health()`` rolls them up (worst status wins) and
  the serve protocol's ``health`` op exposes the roll-up to load balancers.

* **SLO objectives** are declarative targets over the *existing* metric
  families ("99.9% of served requests succeed", "99% of requests finish
  under 500ms").  The :class:`SloTracker` snapshots the relevant counters
  on every evaluation, keeps a bounded history, and computes the error
  ratio and **burn rate** over multiple trailing windows.  Burn rate is the
  standard SRE quantity: ``error_ratio / (1 - objective)`` — 1.0 means the
  error budget is being spent exactly at the sustainable pace, 14.4 over an
  hour means the monthly budget dies in two days.  Results are exported as
  ``polystore_slo_*`` gauge families.

Everything here is read-only over registry/engine state and safe to call
from the serve event loop (``server.stats()`` resolves directly when
already on the loop thread).
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .metrics import MetricsRegistry

#: Roll-up order: the worst individual status becomes the overall one.
STATUS_ORDER = {"ok": 0, "warn": 1, "fail": 2}

#: Trailing windows (seconds) burn rates are computed over.  Short/long
#: pairs support the classic multi-window alert ("fast burn AND slow burn").
DEFAULT_WINDOWS = (60.0, 300.0, 3600.0)

#: Changelog retention ratio (rows/max_rows) above which retention pressure
#: is a warning: consumers (incremental views, future replicas) risk
#: falling off the tail and forcing full resyncs.
RETENTION_WARN_RATIO = 0.8

#: Admission queue fill ratio above which the serving tier is saturated.
QUEUE_WARN_RATIO = 0.8


def worst_status(statuses: "list[str] | tuple[str, ...]") -> str:
    if not statuses:
        return "ok"
    return max(statuses, key=lambda s: STATUS_ORDER.get(s, 2))


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective over an existing metric family.

    ``kind="availability"`` reads a labeled counter family and classifies
    children whose ``label`` value is in ``bad_values`` as errors.
    ``kind="latency"`` reads a histogram family and counts observations
    above ``threshold_s`` (rounded up to the covering bucket boundary) as
    errors.
    """

    name: str
    family: str
    objective: float
    kind: str = "availability"
    label: str = "outcome"
    bad_values: frozenset[str] = frozenset({"error"})
    threshold_s: float = 0.5

    def __post_init__(self) -> None:
        if not (0.0 < self.objective < 1.0):
            raise ValueError(f"SLO {self.name!r}: objective must be in (0, 1)")
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"SLO {self.name!r}: unknown kind {self.kind!r}")

    @property
    def budget(self) -> float:
        """The tolerated error fraction (1 - objective)."""
        return 1.0 - self.objective


#: Objectives every deployment tracks by default: served-request success,
#: served-request latency, and in-process session request latency.
DEFAULT_OBJECTIVES = (
    SloObjective(name="serve-availability",
                 family="polystore_serve_requests_total",
                 objective=0.999, kind="availability",
                 label="outcome", bad_values=frozenset({"error"})),
    SloObjective(name="serve-latency",
                 family="polystore_serve_request_seconds",
                 objective=0.99, kind="latency", threshold_s=0.5),
    SloObjective(name="request-latency",
                 family="polystore_request_seconds",
                 objective=0.99, kind="latency", threshold_s=0.5),
)


@dataclass
class _SloSample:
    """One (good, bad) cumulative reading per objective at time ``t``."""

    t: float
    totals: dict[str, tuple[float, float]] = field(default_factory=dict)


class SloTracker:
    """Burn-rate evaluator over counter snapshots of one registry."""

    def __init__(self, registry: "MetricsRegistry",
                 objectives: tuple[SloObjective, ...] = DEFAULT_OBJECTIVES,
                 *, windows: tuple[float, ...] = DEFAULT_WINDOWS,
                 history: int = 1024,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.registry = registry
        self.objectives = tuple(objectives)
        self.windows = tuple(sorted(windows))
        self._clock = clock
        self._lock = threading.Lock()
        self._history: deque[_SloSample] = deque(maxlen=history)

    # -- reading the registry ------------------------------------------------------------

    def _totals(self, objective: SloObjective) -> tuple[float, float]:
        """Cumulative (good, bad) event counts for one objective, right now."""
        family = self.registry.get(objective.family)
        if family is None:
            return 0.0, 0.0
        good = bad = 0.0
        if objective.kind == "availability":
            try:
                index = family.label_names.index(objective.label)
            except ValueError:
                return 0.0, 0.0
            for child in family.children():
                value = getattr(child, "value", 0.0)
                if child.label_values[index] in objective.bad_values:
                    bad += value
                else:
                    good += value
            return good, bad
        # latency: good = observations <= the covering bucket boundary.
        for child in family.children():
            boundaries = getattr(child, "boundaries", None)
            if boundaries is None:
                continue
            with child._lock:
                counts = list(child.bucket_counts)
                total = child.count
            index = bisect_left(boundaries, objective.threshold_s)
            fast = total if index >= len(boundaries) else sum(counts[:index + 1])
            good += fast
            bad += total - fast
        return good, bad

    # -- evaluation ----------------------------------------------------------------------

    def sample(self, now: float | None = None) -> list[dict[str, Any]]:
        """Snapshot the registry and evaluate every objective.

        Returns one dict per objective with per-window error ratios and
        burn rates.  Windows shorter than the available history simply use
        the oldest sample inside the window; with a single sample every
        delta is zero (no events = no burn).
        """
        t = self._clock() if now is None else now
        sample = _SloSample(t)
        for objective in self.objectives:
            sample.totals[objective.name] = self._totals(objective)
        with self._lock:
            self._history.append(sample)
            history = list(self._history)
        results = []
        for objective in self.objectives:
            good_now, bad_now = sample.totals[objective.name]
            windows = []
            for window_s in self.windows:
                baseline = self._baseline(history, t - window_s,
                                          objective.name)
                delta_good = good_now - baseline[0]
                delta_bad = bad_now - baseline[1]
                total = delta_good + delta_bad
                ratio = (delta_bad / total) if total > 0 else 0.0
                windows.append({
                    "window_s": window_s,
                    "events": total,
                    "error_ratio": ratio,
                    "burn_rate": ratio / objective.budget,
                })
            results.append({
                "slo": objective.name,
                "family": objective.family,
                "kind": objective.kind,
                "objective": objective.objective,
                "good": good_now,
                "bad": bad_now,
                "windows": windows,
            })
        return results

    @staticmethod
    def _baseline(history: list[_SloSample], cutoff: float,
                  name: str) -> tuple[float, float]:
        for sample in history:
            if sample.t >= cutoff:
                return sample.totals.get(name, (0.0, 0.0))
        return history[-1].totals.get(name, (0.0, 0.0))

    @staticmethod
    def burning(results: list[dict[str, Any]]) -> list[str]:
        """Objectives whose budget is burning on *every* window (sustained)."""
        names = []
        for result in results:
            windows = result["windows"]
            if windows and all(w["burn_rate"] > 1.0 and w["events"] > 0
                               for w in windows):
                names.append(result["slo"])
        return names


# -- component checks --------------------------------------------------------------------


def check_durability(system: Any) -> dict[str, Any]:
    """Durable storage liveness (in-memory deployments are trivially ok)."""
    manager = system.durability
    if manager is None:
        return {"name": "durability", "status": "ok",
                "detail": {"mode": "in-memory"}}
    description = manager.describe()
    status = "ok" if description["alive"] else "fail"
    return {"name": "durability", "status": status,
            "detail": {"path": description["path"],
                       "alive": description["alive"],
                       "engines": len(description["engines"]),
                       "skipped_engines": len(description["skipped_engines"])}}


def check_changelog(system: Any) -> dict[str, Any]:
    """Retention pressure: how close each engine's delta log is to eviction."""
    worst = 0.0
    worst_engine = None
    engines = 0
    for engine in system.catalog.engines():
        stats = engine.changelog.retention_stats()
        engines += 1
        max_rows = stats.get("max_rows") or 0
        ratio = (stats["retained_rows"] / max_rows) if max_rows else 0.0
        if ratio >= worst:
            worst, worst_engine = ratio, engine.name
    status = "warn" if worst >= RETENTION_WARN_RATIO else "ok"
    return {"name": "changelog_retention", "status": status,
            "detail": {"engines": engines, "worst_ratio": round(worst, 4),
                       "worst_engine": worst_engine}}


def check_serving(system: Any) -> dict[str, Any]:
    """Admission saturation across every live server of this deployment."""
    servers = [server for server in list(system._servers) if server.running]
    if not servers:
        return {"name": "serve_queues", "status": "ok",
                "detail": {"servers": 0}}
    worst = 0.0
    queued = busy = slots = 0
    for server in servers:
        admission = server.stats()["admission"]
        slots += admission["slots"]
        busy += admission["busy"]
        queued += admission["queued"]
        max_queue = admission.get("max_queue") or 0
        ratio = (admission["queued"] / max_queue) if max_queue else 0.0
        worst = max(worst, ratio)
    status = "warn" if worst >= QUEUE_WARN_RATIO else "ok"
    return {"name": "serve_queues", "status": status,
            "detail": {"servers": len(servers), "slots": slots, "busy": busy,
                       "queued": queued, "worst_queue_ratio": round(worst, 4)}}


def check_views(system: Any) -> dict[str, Any]:
    """Materialized-view maintenance health (refresh errors => warn)."""
    errored = []
    views = 0
    for view in system.views.describe():
        views += 1
        if view.get("last_error"):
            errored.append({"view": view["name"], "error": view["last_error"]})
    status = "warn" if errored else "ok"
    return {"name": "views", "status": status,
            "detail": {"views": views, "errored": errored}}


#: The check suite ``system.health()`` runs, in report order.
CHECKS = (check_durability, check_changelog, check_serving, check_views)


def run_checks(system: Any) -> list[dict[str, Any]]:
    """Run every component check; a crashing check reports itself as fail."""
    results = []
    for check in CHECKS:
        try:
            results.append(check(system))
        except Exception as exc:  # a broken probe is itself a health signal
            results.append({"name": check.__name__.removeprefix("check_"),
                            "status": "fail",
                            "detail": {"error": f"{type(exc).__name__}: {exc}"}})
    return results
