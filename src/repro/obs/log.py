"""Trace-correlated structured event log.

Components log through ``obs.logger("durability")``-style named loggers;
every record is a flat JSON-able dict carrying ``ts`` (unix seconds),
``level``, ``component``, ``event``, free-form fields, and — when the
logging thread has a sampled span open — the active ``trace_id`` and
``span_id``, so an incident's event record lines up with its trace and its
profile.  Records land in a bounded ring buffer (crash-dump style: the
recent past is always available from a live system) and, optionally, are
mirrored to a stream sink as JSON lines.

Repeated identical events are rate-limited: after ``suppress_after``
occurrences of one ``(component, level, event)`` key inside a window,
further occurrences are dropped and the *next* emitted record carries a
``suppressed`` count — a checkpoint loop or admission-reject storm cannot
wash the buffer.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import IO, TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .metrics import Family
    from .trace import Tracer

#: Record severity order; ``warn``/``warning`` both accepted on input.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def _level_value(level: str) -> int:
    name = "warning" if level == "warn" else level
    try:
        return LEVELS[name]
    except KeyError:
        raise ValueError(f"unknown log level {level!r}; "
                         f"expected one of {sorted(LEVELS)}") from None


class _DupState:
    """Suppression window for one (component, level, event) key."""

    __slots__ = ("window_start", "emitted", "suppressed")

    def __init__(self, now: float) -> None:
        self.window_start = now
        self.emitted = 0
        self.suppressed = 0


class EventLog:
    """Bounded, trace-correlated structured log shared by one deployment."""

    def __init__(self, tracer: "Tracer | None" = None, *,
                 enabled: bool = True, capacity: int = 2048,
                 level: str = "info", suppress_after: int = 5,
                 suppress_window_s: float = 1.0,
                 clock: Callable[[], float] = time.time) -> None:
        self.enabled = enabled
        self.tracer = tracer
        self.min_level = _level_value(level)
        self.suppress_after = suppress_after
        self.suppress_window_s = suppress_window_s
        self._clock = clock
        self._lock = threading.Lock()
        self._records: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._dups: dict[tuple[str, str, str], _DupState] = {}
        self._sink: IO[str] | None = None
        self.total_records = 0
        self.total_suppressed = 0
        #: Hub counter families, injected by Observability after registration.
        self.records_counter: "Family | None" = None
        self.suppressed_counter: "Family | None" = None

    # -- configuration -------------------------------------------------------------------

    def attach_stream(self, stream: IO[str] | None) -> None:
        """Mirror every retained record to ``stream`` as JSON lines."""
        with self._lock:
            self._sink = stream

    def set_level(self, level: str) -> None:
        self.min_level = _level_value(level)

    def logger(self, component: str) -> "ComponentLogger":
        """A named logger stamping ``component`` on every record."""
        return ComponentLogger(self, component)

    # -- recording -----------------------------------------------------------------------

    def emit(self, level: str, component: str, event: str,
             **fields: Any) -> dict[str, Any] | None:
        """Record one event; returns the record, or None when filtered out."""
        if not self.enabled:
            return None
        severity = _level_value(level)
        if severity < self.min_level:
            return None
        level_name = "warning" if level == "warn" else level
        now = self._clock()
        record: dict[str, Any] = {
            "ts": now,
            "level": level_name,
            "component": component,
            "event": event,
        }
        span = self.tracer.current() if self.tracer is not None else None
        if span is not None:
            record["trace_id"] = span.trace_id
            record["span_id"] = span.span_id
        record.update(fields)

        sink = None
        with self._lock:
            state = self._suppression_state(component, level_name, event, now)
            if state.emitted >= self.suppress_after:
                state.suppressed += 1
                self.total_suppressed += 1
                suppressed = True
            else:
                state.emitted += 1
                if state.suppressed:
                    record["suppressed"] = state.suppressed
                    state.suppressed = 0
                self._records.append(record)
                self.total_records += 1
                sink = self._sink
                suppressed = False
        counter = self.suppressed_counter if suppressed else self.records_counter
        if suppressed:
            if counter is not None:
                counter.inc(component=component)
            return None
        if counter is not None:
            counter.inc(component=component, level=level_name)
        if sink is not None:
            sink.write(json.dumps(record, default=str) + "\n")
        return record

    def _suppression_state(self, component: str, level: str, event: str,
                           now: float) -> _DupState:
        key = (component, level, event)
        state = self._dups.get(key)
        if state is None or now - state.window_start >= self.suppress_window_s:
            carried = state.suppressed if state is not None else 0
            state = _DupState(now)
            state.suppressed = carried
            self._dups[key] = state
            if len(self._dups) > 4096:  # unbounded-key hygiene (tenant ids...)
                stale = [k for k, s in self._dups.items()
                         if now - s.window_start >= self.suppress_window_s
                         and not s.suppressed]
                for k in stale:
                    del self._dups[k]
        return state

    # -- reading -------------------------------------------------------------------------

    def records(self, *, level: str | None = None,
                component: str | None = None) -> list[dict[str, Any]]:
        """Retained records oldest-first, optionally filtered."""
        with self._lock:
            records = list(self._records)
        if level is not None:
            floor = _level_value(level)
            records = [r for r in records if _level_value(r["level"]) >= floor]
        if component is not None:
            records = [r for r in records if r["component"] == component]
        return records

    def export_jsonl(self) -> str:
        """The retained buffer as JSON lines (CI artifacts, crash dumps)."""
        return "".join(json.dumps(record, default=str) + "\n"
                       for record in self.records())

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._dups.clear()

    def describe(self) -> dict[str, Any]:
        with self._lock:
            retained = len(self._records)
        return {
            "enabled": self.enabled,
            "retained": retained,
            "total_records": self.total_records,
            "total_suppressed": self.total_suppressed,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class ComponentLogger:
    """Cheap facade binding one component name to the shared :class:`EventLog`."""

    __slots__ = ("_log", "component")

    def __init__(self, log: EventLog, component: str) -> None:
        self._log = log
        self.component = component

    def debug(self, event: str, **fields: Any) -> dict[str, Any] | None:
        return self._log.emit("debug", self.component, event, **fields)

    def info(self, event: str, **fields: Any) -> dict[str, Any] | None:
        return self._log.emit("info", self.component, event, **fields)

    def warning(self, event: str, **fields: Any) -> dict[str, Any] | None:
        return self._log.emit("warning", self.component, event, **fields)

    def error(self, event: str, **fields: Any) -> dict[str, Any] | None:
        return self._log.emit("error", self.component, event, **fields)
