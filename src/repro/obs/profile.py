"""Background sampling wall-clock profiler with span attribution.

A :class:`SamplingProfiler` wakes at a configurable rate, grabs every
thread's Python stack via ``sys._current_frames()``, and folds each stack
into the *collapsed* form flamegraph tooling eats (``mod.func;mod.func N``).
Each sample is additionally attributed to the span currently open on the
sampled thread — read from the tracer's cross-thread mirror
(:meth:`Tracer.current_spans_by_thread`) — so one request's samples can be
pulled out afterwards even when its operators ran on pool threads.  That is
what lets the slow-query log attach "here is where the wall time went" to
every capture (:meth:`Observability.consider_slow`).

Sampling is wall-clock: a thread blocked in ``time.sleep`` or a lock is
sampled exactly like one burning CPU, which is what you want when the
question is "why was this request slow".  The profiler is off by default
(``SystemConfig.obs_profile_enabled``) and costs nothing when not running.

Exports: ``Profile.collapsed()`` (flamegraph.pl / inferno input) and
``Profile.speedscope()`` (https://speedscope.app JSON, "sampled" type).
"""

from __future__ import annotations

import sys
import threading
from collections import Counter, OrderedDict
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .metrics import Family
    from .trace import Tracer

def _frame_label(frame: Any) -> str:
    """``module.function`` label for one frame (file stem, not full path)."""
    code = frame.f_code
    filename = code.co_filename
    slash = max(filename.rfind("/"), filename.rfind("\\"))
    stem = filename[slash + 1:]
    if stem.endswith(".py"):
        stem = stem[:-3]
    return f"{stem}.{code.co_name}"


def collapse_frame(frame: Any) -> str:
    """Fold one thread's stack into root-first ``;``-joined frame labels."""
    labels: list[str] = []
    current = frame
    while current is not None:
        labels.append(_frame_label(current))
        current = current.f_back
    labels.reverse()
    return ";".join(labels)


class Profile:
    """An aggregate of collapsed-stack samples (whole process or one trace)."""

    __slots__ = ("counts", "period_s")

    def __init__(self, counts: Counter[str] | None = None,
                 period_s: float = 0.0) -> None:
        self.counts: Counter[str] = counts if counts is not None else Counter()
        self.period_s = period_s

    @property
    def sample_count(self) -> int:
        return sum(self.counts.values())

    def add(self, stack: str, count: int = 1) -> None:
        self.counts[stack] += count

    def merge(self, other: "Profile") -> None:
        self.counts.update(other.counts)

    def hottest_frame(self) -> str | None:
        """The leaf frame that appears in the most samples."""
        leaves: Counter[str] = Counter()
        for stack, count in self.counts.items():
            leaf = stack.rsplit(";", 1)[-1]
            leaves[leaf] += count
        if not leaves:
            return None
        return leaves.most_common(1)[0][0]

    # -- exports -------------------------------------------------------------------------

    def collapsed(self) -> str:
        """Flamegraph collapsed-stack text: one ``stack count`` line each."""
        lines = [f"{stack} {count}"
                 for stack, count in sorted(self.counts.items())]
        return "\n".join(lines) + ("\n" if lines else "")

    def speedscope(self, name: str = "polystore") -> dict[str, Any]:
        """Speedscope "sampled" profile document (open at speedscope.app)."""
        frame_index: dict[str, int] = {}
        frames: list[dict[str, str]] = []
        samples: list[list[int]] = []
        weights: list[float] = []
        period = self.period_s if self.period_s > 0 else 1.0
        for stack, count in sorted(self.counts.items()):
            indices = []
            for label in stack.split(";"):
                index = frame_index.get(label)
                if index is None:
                    index = frame_index[label] = len(frames)
                    frames.append({"name": label})
                indices.append(index)
            samples.append(indices)
            weights.append(count * period)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "exporter": "repro.obs.profile",
            "shared": {"frames": frames},
            "profiles": [{
                "type": "sampled",
                "name": name,
                "unit": "seconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }],
        }

    def to_dict(self) -> dict[str, Any]:
        """Compact form attached to slow-query-log entries."""
        return {
            "samples": self.sample_count,
            "period_s": self.period_s,
            "hottest_frame": self.hottest_frame(),
            "collapsed": self.collapsed(),
        }

    def __len__(self) -> int:
        return len(self.counts)


class SamplingProfiler:
    """Daemon thread sampling every Python stack at ``hz``.

    Keeps one process-wide aggregate plus a bounded LRU of per-trace
    aggregates keyed by ``trace_id``.  ``take_trace()`` pops a request's
    profile (the slow-query log claims it); traces that never get claimed
    age out of the LRU.
    """

    def __init__(self, tracer: "Tracer", *, hz: float = 67.0,
                 max_traces: int = 64,
                 samples_counter: "Family | None" = None) -> None:
        if hz <= 0:
            raise ValueError("profiler hz must be positive")
        self.tracer = tracer
        self.hz = hz
        self.max_traces = max_traces
        self.samples_counter = samples_counter
        self._lock = threading.Lock()
        self._global = Profile(period_s=1.0 / hz)
        self._by_trace: OrderedDict[int, Profile] = OrderedDict()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        #: Thread idents the sampler must never attribute (its own).
        self._self_idents: set[int] = set()

    @property
    def period_s(self) -> float:
        return 1.0 / self.hz

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    # -- lifecycle -----------------------------------------------------------------------

    def start(self) -> None:
        """Start the sampling thread (idempotent)."""
        if self.running:
            return
        self._stop.clear()
        thread = threading.Thread(target=self._loop, name="obs-profiler",
                                  daemon=True)
        self._thread = thread
        thread.start()

    def stop(self, timeout_s: float = 2.0) -> None:
        """Stop sampling; retained profiles stay readable."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=timeout_s)
        self._thread = None

    def _loop(self) -> None:
        self._self_idents.add(threading.get_ident())
        while not self._stop.wait(self.period_s):
            self.sample_once()

    # -- sampling ------------------------------------------------------------------------

    def sample_once(self) -> int:
        """Take one sweep over all threads; returns the samples recorded."""
        frames = sys._current_frames()
        spans = self.tracer.current_spans_by_thread()
        recorded = 0
        with self._lock:
            for ident, frame in frames.items():
                if ident in self._self_idents:
                    continue
                stack = collapse_frame(frame)
                self._global.add(stack)
                recorded += 1
                span = spans.get(ident)
                if span is None:
                    continue
                trace = self._by_trace.get(span.trace_id)
                if trace is None:
                    trace = Profile(period_s=self.period_s)
                    self._by_trace[span.trace_id] = trace
                    while len(self._by_trace) > self.max_traces:
                        self._by_trace.popitem(last=False)
                else:
                    self._by_trace.move_to_end(span.trace_id)
                trace.add(stack)
        counter = self.samples_counter
        if counter is not None and recorded:
            counter.inc(recorded)
        return recorded

    # -- reading -------------------------------------------------------------------------

    def profile(self, trace_id: int | None = None) -> Profile:
        """A copy of the process-wide aggregate, or one trace's samples."""
        with self._lock:
            if trace_id is None:
                return Profile(Counter(self._global.counts), self.period_s)
            trace = self._by_trace.get(trace_id)
            counts = Counter(trace.counts) if trace is not None else Counter()
            return Profile(counts, self.period_s)

    def take_trace(self, trace_id: int | None) -> Profile | None:
        """Pop one trace's profile (slow-query log attachment); None if absent."""
        if trace_id is None:
            return None
        with self._lock:
            return self._by_trace.pop(trace_id, None)

    def clear(self) -> None:
        with self._lock:
            self._global = Profile(period_s=self.period_s)
            self._by_trace.clear()

    def describe(self) -> dict[str, Any]:
        with self._lock:
            return {
                "running": self.running,
                "hz": self.hz,
                "samples": self._global.sample_count,
                "traces_retained": len(self._by_trace),
            }
