"""Observability: metrics registry, trace spans, exporters, slow-query log.

One :class:`Observability` instance rides on each
:class:`~repro.core.system.PolystorePlusPlus` deployment (``system.obs``)
and is the single place every layer reports into:

* sessions count requests and plan-cache outcomes and open the root
  *request* span (sampled at ``SystemConfig.obs_trace_sample_rate``),
* the executor opens stage and operator spans and feeds per-operator
  latency histograms from the run's :class:`TaskRecord` stream,
* scatter-gather opens one span per shard subtask,
* materialized views report refresh kind/latency/delta sizes,
* the durability layer reports WAL append/fsync latency, snapshot
  durations and recovery replay counts.

Everything is a no-op (one attribute check) when ``obs_enabled`` is off,
and span creation additionally requires a *sampled* request to be active on
the current thread — counters always count, spans only exist inside
sampled traces.  Export via :meth:`PolystorePlusPlus.export_prometheus`
and :meth:`PolystorePlusPlus.export_chrome_trace`.
"""

from __future__ import annotations

import random
from typing import Any

from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    parse_prometheus_text,
    prometheus_text,
)
from repro.obs.health import (
    DEFAULT_OBJECTIVES,
    SloObjective,
    SloTracker,
    run_checks,
    worst_status,
)
from repro.obs.log import ComponentLogger, EventLog
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import Profile, SamplingProfiler
from repro.obs.slowlog import SlowQueryLog, stage_breakdown
from repro.obs.trace import Span, Tracer, ancestors, span_tree

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "SlowQueryLog",
    "EventLog",
    "ComponentLogger",
    "SamplingProfiler",
    "Profile",
    "SloTracker",
    "SloObjective",
    "DEFAULT_OBJECTIVES",
    "run_checks",
    "worst_status",
    "prometheus_text",
    "parse_prometheus_text",
    "chrome_trace",
    "chrome_trace_json",
    "span_tree",
    "ancestors",
    "stage_breakdown",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
]


class Observability:
    """The per-deployment observability hub (registry + tracer + slow log).

    Core metric families are pre-registered as attributes so instrumented
    hot paths pay one attribute access, not a name lookup, per event.
    """

    def __init__(self, *, enabled: bool = True, sample_rate: float = 1.0,
                 slow_query_ms: float = 250.0, span_buffer: int = 8192,
                 profile_hz: float = 67.0, log_capacity: int = 2048,
                 log_level: str = "info",
                 rng: random.Random | None = None) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(enabled=enabled, sample_rate=sample_rate,
                             buffer_size=span_buffer, rng=rng)
        self.slow_log = SlowQueryLog(threshold_ms=slow_query_ms)
        #: Structured, trace-correlated event log (see repro.obs.log).
        self.events = EventLog(self.tracer, enabled=enabled,
                               capacity=log_capacity, level=log_level)
        #: Background sampling wall-clock profiler; built but not started —
        #: the system starts it when ``obs_profile_enabled`` is set.
        self.profiler = SamplingProfiler(self.tracer, hz=profile_hz)
        #: SLO burn-rate tracker over this registry's metric families.
        self.slos = SloTracker(self.registry)
        reg = self.registry
        # -- session layer ---------------------------------------------------------------
        self.requests_total = reg.counter(
            "polystore_requests_total",
            "Session requests (prepared runs and one-shot executes).",
            ("mode",))
        self.request_seconds = reg.histogram(
            "polystore_request_seconds",
            "End-to-end request wall latency.", ("mode",))
        self.plan_cache_total = reg.counter(
            "polystore_plan_cache_total",
            "Plan-cache lookups by outcome (hit, miss, reoptimized).",
            ("outcome",))
        self.slow_queries_total = reg.counter(
            "polystore_slow_queries_total",
            "Requests captured by the slow-query log.")
        # -- serving tier ----------------------------------------------------------------
        self.serve_requests_total = reg.counter(
            "polystore_serve_requests_total",
            "Server requests finished, by tenant and outcome "
            "(ok, coalesced, error, cancelled, deadline).",
            ("tenant", "outcome"))
        self.serve_rejects_total = reg.counter(
            "polystore_serve_rejects_total",
            "Server requests rejected before execution, by tenant and "
            "reason (overloaded, quota, deadline, shutdown).",
            ("tenant", "reason"))
        self.serve_request_seconds = reg.histogram(
            "polystore_serve_request_seconds",
            "Server request wall latency including admission queueing.",
            ("tenant",))
        self.serve_queue_wait_seconds = reg.histogram(
            "polystore_serve_queue_wait_seconds",
            "Time requests spent queued in admission control.", ("tenant",))
        self.serve_coalesced_total = reg.counter(
            "polystore_serve_coalesced_total",
            "Requests served by attaching to an identical in-flight "
            "execution.", ("tenant",))
        self.serve_queue_depth = reg.gauge(
            "polystore_serve_queue_depth",
            "Admission queue depth per tenant (sampled at scrape).",
            ("tenant",))
        self.serve_sessions_busy = reg.gauge(
            "polystore_serve_sessions_busy",
            "Busy sessions in a server's bounded session pool.")
        # -- executor --------------------------------------------------------------------
        self.operators_total = reg.counter(
            "polystore_operators_total",
            "Operators executed, by kind.", ("kind",))
        self.operator_seconds = reg.histogram(
            "polystore_operator_seconds",
            "Per-operator charged latency, by kind.", ("kind",))
        # -- scatter-gather --------------------------------------------------------------
        self.scatter_subtasks_total = reg.counter(
            "polystore_scatter_subtasks_total",
            "Per-shard subtasks dispatched by scatter-gather.", ("engine",))
        self.scatter_subtask_seconds = reg.histogram(
            "polystore_scatter_subtask_seconds",
            "Per-shard subtask CPU latency.", ("engine",))
        # -- materialized views ----------------------------------------------------------
        self.view_refreshes_total = reg.counter(
            "polystore_view_refreshes_total",
            "View refreshes by outcome kind (incremental, full, noop).",
            ("view", "kind"))
        self.view_refresh_seconds = reg.histogram(
            "polystore_view_refresh_seconds",
            "View refresh charged latency.", ("view",))
        self.view_delta_rows = reg.histogram(
            "polystore_view_delta_rows",
            "Input delta rows absorbed per refresh.", ("view",),
            buckets=SIZE_BUCKETS)
        # -- durability ------------------------------------------------------------------
        self.wal_appends_total = reg.counter(
            "polystore_wal_appends_total",
            "WAL records appended, per store.", ("engine",))
        self.wal_fsync_seconds = reg.histogram(
            "polystore_wal_fsync_seconds",
            "WAL fsync latency, per store.", ("engine",))
        self.snapshot_seconds = reg.histogram(
            "polystore_snapshot_seconds",
            "Checkpoint snapshot write duration, per store.", ("engine",))
        self.checkpoints_total = reg.counter(
            "polystore_checkpoints_total",
            "Checkpoints completed, per store.", ("engine",))
        self.recovery_replayed_total = reg.counter(
            "polystore_recovery_replayed_total",
            "WAL-tail records replayed during recovery, per store.",
            ("engine",))
        # -- gauges (refreshed at collection time) ---------------------------------------
        self.changelog_retained_batches = reg.gauge(
            "polystore_changelog_retained_batches",
            "Delta batches currently retained in an engine's changelog.",
            ("engine",))
        self.changelog_retained_rows = reg.gauge(
            "polystore_changelog_retained_rows",
            "Entry rows currently retained in an engine's changelog.",
            ("engine",))
        self.view_rows = reg.gauge(
            "polystore_view_rows",
            "Rows currently materialized per view.", ("view",))
        # -- structured log / profiler ---------------------------------------------------
        self.log_records_total = reg.counter(
            "polystore_log_records_total",
            "Structured log records retained, by component and level.",
            ("component", "level"))
        self.log_suppressed_total = reg.counter(
            "polystore_log_suppressed_total",
            "Structured log records dropped by duplicate suppression.",
            ("component",))
        self.profile_samples_total = reg.counter(
            "polystore_profile_samples_total",
            "Thread stacks captured by the sampling profiler.")
        # -- health / SLOs (refreshed by health() and at scrape) -------------------------
        self.health_status = reg.gauge(
            "polystore_health_status",
            "Component health (1 ok, 0.5 warn, 0 fail), by check.",
            ("check",))
        self.slo_objective = reg.gauge(
            "polystore_slo_objective",
            "Declared objective (good fraction) per SLO.", ("slo",))
        self.slo_error_ratio = reg.gauge(
            "polystore_slo_error_ratio",
            "Observed error ratio per SLO over a trailing window.",
            ("slo", "window"))
        self.slo_burn_rate = reg.gauge(
            "polystore_slo_burn_rate",
            "Error-budget burn rate (error_ratio / budget) per SLO and "
            "window; 1.0 spends the budget exactly at the sustainable pace.",
            ("slo", "window"))
        # Counter hookup happens after family registration: the event log
        # and profiler are constructed before their families exist.
        self.events.records_counter = self.log_records_total
        self.events.suppressed_counter = self.log_suppressed_total
        self.profiler.samples_counter = self.profile_samples_total

    # -- constructors --------------------------------------------------------------------

    _disabled_singleton: "Observability | None" = None

    @classmethod
    def disabled(cls) -> "Observability":
        """The shared inert hub: every record/span call is a cheap no-op.

        A process-wide singleton — executors are constructed per run, and an
        un-instrumented deployment must not re-register every metric family
        each time.
        """
        if cls._disabled_singleton is None:
            cls._disabled_singleton = cls(enabled=False, sample_rate=0.0,
                                          span_buffer=1)
        return cls._disabled_singleton

    # -- structured logging --------------------------------------------------------------

    def logger(self, component: str) -> ComponentLogger:
        """A named structured logger bound to this deployment's event log."""
        return self.events.logger(component)

    # -- slow-query capture --------------------------------------------------------------

    def consider_slow(self, *, program: str, mode: str,
                      fingerprint: str | None, report: Any,
                      elapsed_wall_s: float,
                      trace_id: int | None = None) -> None:
        """Offer one finished request to the slow-query log.

        When the request was traced and the sampling profiler is running,
        the request's aggregated stack samples are claimed and attached to
        the capture — the entry answers "where did the wall time go", not
        just "which stages were slow".
        """
        if not self.enabled:
            return
        profile = None
        if self.profiler.running:
            trace_profile = self.profiler.take_trace(trace_id)
            if trace_profile is not None and len(trace_profile):
                profile = trace_profile.to_dict()
        entry = self.slow_log.consider(program=program, mode=mode,
                                       fingerprint=fingerprint, report=report,
                                       elapsed_wall_s=elapsed_wall_s,
                                       profile=profile)
        if entry is not None:
            self.slow_queries_total.inc()

    # -- health / SLO gauges -------------------------------------------------------------

    def sample_slos(self) -> list[Any]:
        """Evaluate every SLO and refresh the ``polystore_slo_*`` gauges."""
        if not self.enabled:
            return []
        results = self.slos.sample()
        for result in results:
            self.slo_objective.set(result["objective"], slo=result["slo"])
            for window in result["windows"]:
                label = f"{int(window['window_s'])}s"
                self.slo_error_ratio.set(window["error_ratio"],
                                         slo=result["slo"], window=label)
                self.slo_burn_rate.set(window["burn_rate"],
                                       slo=result["slo"], window=label)
        return results

    def set_health_gauges(self, checks: list[Any]) -> None:
        """Mirror check results into ``polystore_health_status``."""
        if not self.enabled:
            return
        scores = {"ok": 1.0, "warn": 0.5, "fail": 0.0}
        for check in checks:
            self.health_status.set(scores.get(check["status"], 0.0),
                                   check=check["name"])

    # -- introspection -------------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """Configuration and buffer occupancy for ``system.describe()``."""
        return {
            "enabled": self.enabled,
            "trace_sample_rate": self.tracer.sample_rate,
            "requests_seen": self.tracer.requests_seen,
            "requests_sampled": self.tracer.requests_sampled,
            "spans_buffered": len(self.tracer),
            "slow_query_threshold_ms": self.slow_log.threshold_ms,
            "slow_queries_captured": self.slow_log.total_captured,
            "log": self.events.describe(),
            "profiler": self.profiler.describe(),
        }
