"""Observability: metrics registry, trace spans, exporters, slow-query log.

One :class:`Observability` instance rides on each
:class:`~repro.core.system.PolystorePlusPlus` deployment (``system.obs``)
and is the single place every layer reports into:

* sessions count requests and plan-cache outcomes and open the root
  *request* span (sampled at ``SystemConfig.obs_trace_sample_rate``),
* the executor opens stage and operator spans and feeds per-operator
  latency histograms from the run's :class:`TaskRecord` stream,
* scatter-gather opens one span per shard subtask,
* materialized views report refresh kind/latency/delta sizes,
* the durability layer reports WAL append/fsync latency, snapshot
  durations and recovery replay counts.

Everything is a no-op (one attribute check) when ``obs_enabled`` is off,
and span creation additionally requires a *sampled* request to be active on
the current thread — counters always count, spans only exist inside
sampled traces.  Export via :meth:`PolystorePlusPlus.export_prometheus`
and :meth:`PolystorePlusPlus.export_chrome_trace`.
"""

from __future__ import annotations

import random
from typing import Any

from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    parse_prometheus_text,
    prometheus_text,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.slowlog import SlowQueryLog, stage_breakdown
from repro.obs.trace import Span, Tracer, ancestors, span_tree

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "SlowQueryLog",
    "prometheus_text",
    "parse_prometheus_text",
    "chrome_trace",
    "chrome_trace_json",
    "span_tree",
    "ancestors",
    "stage_breakdown",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
]


class Observability:
    """The per-deployment observability hub (registry + tracer + slow log).

    Core metric families are pre-registered as attributes so instrumented
    hot paths pay one attribute access, not a name lookup, per event.
    """

    def __init__(self, *, enabled: bool = True, sample_rate: float = 1.0,
                 slow_query_ms: float = 250.0, span_buffer: int = 8192,
                 rng: random.Random | None = None) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(enabled=enabled, sample_rate=sample_rate,
                             buffer_size=span_buffer, rng=rng)
        self.slow_log = SlowQueryLog(threshold_ms=slow_query_ms)
        reg = self.registry
        # -- session layer ---------------------------------------------------------------
        self.requests_total = reg.counter(
            "polystore_requests_total",
            "Session requests (prepared runs and one-shot executes).",
            ("mode",))
        self.request_seconds = reg.histogram(
            "polystore_request_seconds",
            "End-to-end request wall latency.", ("mode",))
        self.plan_cache_total = reg.counter(
            "polystore_plan_cache_total",
            "Plan-cache lookups by outcome (hit, miss, reoptimized).",
            ("outcome",))
        self.slow_queries_total = reg.counter(
            "polystore_slow_queries_total",
            "Requests captured by the slow-query log.")
        # -- serving tier ----------------------------------------------------------------
        self.serve_requests_total = reg.counter(
            "polystore_serve_requests_total",
            "Server requests finished, by tenant and outcome "
            "(ok, coalesced, error, cancelled, deadline).",
            ("tenant", "outcome"))
        self.serve_rejects_total = reg.counter(
            "polystore_serve_rejects_total",
            "Server requests rejected before execution, by tenant and "
            "reason (overloaded, quota, deadline, shutdown).",
            ("tenant", "reason"))
        self.serve_request_seconds = reg.histogram(
            "polystore_serve_request_seconds",
            "Server request wall latency including admission queueing.",
            ("tenant",))
        self.serve_queue_wait_seconds = reg.histogram(
            "polystore_serve_queue_wait_seconds",
            "Time requests spent queued in admission control.", ("tenant",))
        self.serve_coalesced_total = reg.counter(
            "polystore_serve_coalesced_total",
            "Requests served by attaching to an identical in-flight "
            "execution.", ("tenant",))
        self.serve_queue_depth = reg.gauge(
            "polystore_serve_queue_depth",
            "Admission queue depth per tenant (sampled at scrape).",
            ("tenant",))
        self.serve_sessions_busy = reg.gauge(
            "polystore_serve_sessions_busy",
            "Busy sessions in a server's bounded session pool.")
        # -- executor --------------------------------------------------------------------
        self.operators_total = reg.counter(
            "polystore_operators_total",
            "Operators executed, by kind.", ("kind",))
        self.operator_seconds = reg.histogram(
            "polystore_operator_seconds",
            "Per-operator charged latency, by kind.", ("kind",))
        # -- scatter-gather --------------------------------------------------------------
        self.scatter_subtasks_total = reg.counter(
            "polystore_scatter_subtasks_total",
            "Per-shard subtasks dispatched by scatter-gather.", ("engine",))
        self.scatter_subtask_seconds = reg.histogram(
            "polystore_scatter_subtask_seconds",
            "Per-shard subtask CPU latency.", ("engine",))
        # -- materialized views ----------------------------------------------------------
        self.view_refreshes_total = reg.counter(
            "polystore_view_refreshes_total",
            "View refreshes by outcome kind (incremental, full, noop).",
            ("view", "kind"))
        self.view_refresh_seconds = reg.histogram(
            "polystore_view_refresh_seconds",
            "View refresh charged latency.", ("view",))
        self.view_delta_rows = reg.histogram(
            "polystore_view_delta_rows",
            "Input delta rows absorbed per refresh.", ("view",),
            buckets=SIZE_BUCKETS)
        # -- durability ------------------------------------------------------------------
        self.wal_appends_total = reg.counter(
            "polystore_wal_appends_total",
            "WAL records appended, per store.", ("engine",))
        self.wal_fsync_seconds = reg.histogram(
            "polystore_wal_fsync_seconds",
            "WAL fsync latency, per store.", ("engine",))
        self.snapshot_seconds = reg.histogram(
            "polystore_snapshot_seconds",
            "Checkpoint snapshot write duration, per store.", ("engine",))
        self.checkpoints_total = reg.counter(
            "polystore_checkpoints_total",
            "Checkpoints completed, per store.", ("engine",))
        self.recovery_replayed_total = reg.counter(
            "polystore_recovery_replayed_total",
            "WAL-tail records replayed during recovery, per store.",
            ("engine",))
        # -- gauges (refreshed at collection time) ---------------------------------------
        self.changelog_retained_batches = reg.gauge(
            "polystore_changelog_retained_batches",
            "Delta batches currently retained in an engine's changelog.",
            ("engine",))
        self.changelog_retained_rows = reg.gauge(
            "polystore_changelog_retained_rows",
            "Entry rows currently retained in an engine's changelog.",
            ("engine",))
        self.view_rows = reg.gauge(
            "polystore_view_rows",
            "Rows currently materialized per view.", ("view",))

    # -- constructors --------------------------------------------------------------------

    _disabled_singleton: "Observability | None" = None

    @classmethod
    def disabled(cls) -> "Observability":
        """The shared inert hub: every record/span call is a cheap no-op.

        A process-wide singleton — executors are constructed per run, and an
        un-instrumented deployment must not re-register every metric family
        each time.
        """
        if cls._disabled_singleton is None:
            cls._disabled_singleton = cls(enabled=False, sample_rate=0.0,
                                          span_buffer=1)
        return cls._disabled_singleton

    # -- slow-query capture --------------------------------------------------------------

    def consider_slow(self, *, program: str, mode: str,
                      fingerprint: str | None, report: Any,
                      elapsed_wall_s: float) -> None:
        """Offer one finished request to the slow-query log."""
        if not self.enabled:
            return
        entry = self.slow_log.consider(program=program, mode=mode,
                                       fingerprint=fingerprint, report=report,
                                       elapsed_wall_s=elapsed_wall_s)
        if entry is not None:
            self.slow_queries_total.inc()

    # -- introspection -------------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """Configuration and buffer occupancy for ``system.describe()``."""
        return {
            "enabled": self.enabled,
            "trace_sample_rate": self.tracer.sample_rate,
            "requests_seen": self.tracer.requests_seen,
            "requests_sampled": self.tracer.requests_sampled,
            "spans_buffered": len(self.tracer),
            "slow_query_threshold_ms": self.slow_log.threshold_ms,
            "slow_queries_captured": self.slow_log.total_captured,
        }
