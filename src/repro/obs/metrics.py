"""A process-wide metrics registry: counters, gauges, histograms.

The registry is the write-side of the observability layer: every
instrumented seam (session requests, executor operators, scatter fan-outs,
view refreshes, WAL appends) increments named metric *families* here, and
the exporters (:mod:`repro.obs.export`) turn a point-in-time snapshot into
Prometheus text or plain dictionaries.

Design constraints, in order:

* **Cheap when idle.**  A disabled registry (``enabled=False``) turns every
  ``inc``/``observe``/``set`` into a single attribute check and a return —
  instrumented hot paths never pay for dict lookups or lock acquisition
  unless observability is on.
* **Thread-safe and monotonic.**  Counters only ever go up; concurrent
  writers from session pools and shard pools must never lose increments.
  One lock per child keeps contention local to the series being written.
* **Fixed histogram buckets.**  Bucket boundaries are chosen at
  registration and never change, so concurrent observes are a bisect plus
  two additions and exports are trivially cumulative.

Naming convention (see DESIGN.md "Observability"): every family is
``polystore_<subsystem>_<what>[_total|_seconds|_rows|_bytes]`` with
counters ending in ``_total`` and histograms measuring latency in seconds.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Any, Iterable

#: Default latency buckets (seconds): 100µs .. 10s, roughly log-spaced.
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default size buckets (rows or bytes): 1 .. 1M, log-spaced.
SIZE_BUCKETS = (1, 10, 100, 1_000, 10_000, 100_000, 1_000_000)


class _Child:
    """One labeled series of a family; holds its own lock."""

    __slots__ = ("_lock", "label_values")

    def __init__(self, label_values: tuple[str, ...]) -> None:
        self._lock = threading.Lock()
        self.label_values = label_values


class CounterChild(_Child):
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self, label_values: tuple[str, ...]) -> None:
        super().__init__(label_values)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self.value += amount


class GaugeChild(_Child):
    """A value that can go up and down (set at collection time)."""

    __slots__ = ("value",)

    def __init__(self, label_values: tuple[str, ...]) -> None:
        super().__init__(label_values)
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class HistogramChild(_Child):
    """Fixed-boundary cumulative histogram (Prometheus semantics)."""

    __slots__ = ("boundaries", "bucket_counts", "sum", "count")

    def __init__(self, label_values: tuple[str, ...],
                 boundaries: tuple[float, ...]) -> None:
        super().__init__(label_values)
        self.boundaries = boundaries
        self.bucket_counts = [0] * (len(boundaries) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_right(self.boundaries, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.sum += value
            self.count += 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch under one lock acquisition (hot-path batching)."""
        indexed = [(bisect_right(self.boundaries, v), v) for v in values]
        with self._lock:
            for index, value in indexed:
                self.bucket_counts[index] += 1
                self.sum += value
                self.count += 1


class Family:
    """One named metric family: children keyed by label values."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 label_names: tuple[str, ...]) -> None:
        self.registry = registry
        self.name = name
        self.help = help
        self.label_names = label_names
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}

    def _make_child(self, values: tuple[str, ...]):
        raise NotImplementedError

    def labels(self, **labels: Any):
        """The child series for these label values (created on first use)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        values = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.setdefault(values,
                                                  self._make_child(values))
        return child

    def remove(self, **labels: Any) -> None:
        """Drop one child series, if present.

        Lets samplers retire label values that will not recur (e.g. a
        departed tenant) so label cardinality stays bounded.
        """
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        values = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            self._children.pop(values, None)

    def children(self) -> list[Any]:
        """All materialized children (stable snapshot)."""
        with self._lock:
            return list(self._children.values())


class Counter(Family):
    kind = "counter"

    def _make_child(self, values: tuple[str, ...]) -> CounterChild:
        return CounterChild(values)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Increment (no-op when the registry is disabled)."""
        if not self.registry.enabled:
            return
        self.labels(**labels).inc(amount)


class Gauge(Family):
    kind = "gauge"

    def _make_child(self, values: tuple[str, ...]) -> GaugeChild:
        return GaugeChild(values)

    def set(self, value: float, **labels: Any) -> None:
        if not self.registry.enabled:
            return
        self.labels(**labels).set(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self.registry.enabled:
            return
        self.labels(**labels).inc(amount)


class Histogram(Family):
    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 label_names: tuple[str, ...],
                 buckets: Iterable[float] = LATENCY_BUCKETS) -> None:
        super().__init__(registry, name, help, label_names)
        boundaries = tuple(sorted(float(b) for b in buckets))
        if not boundaries:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        self.boundaries = boundaries

    def _make_child(self, values: tuple[str, ...]) -> HistogramChild:
        return HistogramChild(values, self.boundaries)

    def observe(self, value: float, **labels: Any) -> None:
        if not self.registry.enabled:
            return
        self.labels(**labels).observe(value)

    def observe_many(self, values: Iterable[float], **labels: Any) -> None:
        """Record a batch of observations against one label set."""
        if not self.registry.enabled:
            return
        self.labels(**labels).observe_many(values)


class MetricsRegistry:
    """All metric families of one deployment.

    Families are registered lazily and idempotently: ``counter(name, ...)``
    returns the existing family when the name is already taken (with the
    same type), so instrumentation sites can declare their metrics where
    they use them without an initialization ordering.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: dict[str, Family] = {}

    # -- registration --------------------------------------------------------------------

    def _register(self, cls, name: str, help: str,
                  label_names: tuple[str, ...], **kwargs: Any) -> Family:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind}"
                    )
                return family
            family = cls(self, name, help, label_names, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labels: tuple[str, ...] = ()) -> Counter:
        """Register (or fetch) a counter family."""
        return self._register(Counter, name, help, tuple(labels))

    def gauge(self, name: str, help: str = "",
              labels: tuple[str, ...] = ()) -> Gauge:
        """Register (or fetch) a gauge family."""
        return self._register(Gauge, name, help, tuple(labels))

    def histogram(self, name: str, help: str = "",
                  labels: tuple[str, ...] = (),
                  buckets: Iterable[float] = LATENCY_BUCKETS) -> Histogram:
        """Register (or fetch) a histogram family with fixed buckets."""
        return self._register(Histogram, name, help, tuple(labels),
                              buckets=buckets)

    # -- reading -------------------------------------------------------------------------

    def families(self) -> list[Family]:
        """All registered families, sorted by name."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Family | None:
        """One family by name, or ``None``."""
        with self._lock:
            return self._families.get(name)

    def value(self, name: str, **labels: Any) -> float | None:
        """Convenience read of one counter/gauge child (tests, describe)."""
        family = self.get(name)
        if family is None:
            return None
        values = tuple(str(labels[n]) for n in family.label_names)
        child = family._children.get(values)
        if child is None:
            return None
        return getattr(child, "value", None)

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict point-in-time snapshot of every family.

        The shape is stable (used by ``system.describe()`` and tests)::

            {name: {"kind": ..., "help": ..., "labels": [...],
                    "series": [{"labels": {...}, ...values...}]}}
        """
        out: dict[str, Any] = {}
        for family in self.families():
            series = []
            for child in family.children():
                labels = dict(zip(family.label_names, child.label_values))
                if isinstance(child, HistogramChild):
                    with child._lock:
                        series.append({
                            "labels": labels,
                            "sum": child.sum,
                            "count": child.count,
                            "buckets": dict(zip(
                                [*map(str, child.boundaries), "+Inf"],
                                _cumulative(child.bucket_counts))),
                        })
                else:
                    series.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "series": series,
            }
        return out


def _cumulative(counts: list[int]) -> list[int]:
    total = 0
    out = []
    for count in counts:
        total += count
        out.append(total)
    return out
