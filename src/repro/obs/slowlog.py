"""A ring-buffer slow-query log.

Every session request whose measured wall time crosses the configured
threshold is captured here with enough context to debug it after the fact:
the program name, the plan fingerprint (so the offending *plan* can be
found in the cache or re-explained), the execution mode, and a per-stage
breakdown of where the time went — distilled from the run's
:class:`~repro.middleware.executor.report.ExecutionReport` rather than
recorded separately.

The buffer is bounded (oldest entries fall off) and thread-safe; reading it
returns plain dictionaries, newest first.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.middleware.executor.report import ExecutionReport


def stage_breakdown(report: "ExecutionReport") -> list[dict[str, Any]]:
    """Per-stage time summary of one report (slow-log and export payloads)."""
    stages: dict[int, dict[str, Any]] = {}
    for record in report.records:
        stage = stages.setdefault(record.stage, {
            "stage": record.stage, "operators": 0,
            "wall_time_s": 0.0, "charged_time_s": 0.0, "kinds": [],
        })
        stage["operators"] += 1
        stage["wall_time_s"] += record.wall_time_s
        stage["charged_time_s"] += record.charged_time_s
        if record.kind not in stage["kinds"]:
            stage["kinds"].append(record.kind)
    return [stages[index] for index in sorted(stages)]


class SlowQueryLog:
    """Bounded buffer of the slowest requests' post-mortems."""

    def __init__(self, *, threshold_ms: float = 250.0,
                 capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("slow-query log capacity must be at least 1")
        self.threshold_ms = threshold_ms
        self._lock = threading.Lock()
        self._entries: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.total_captured = 0

    def consider(self, *, program: str, mode: str, fingerprint: str | None,
                 report: "ExecutionReport", elapsed_wall_s: float,
                 profile: dict[str, Any] | None = None
                 ) -> dict[str, Any] | None:
        """Capture the run if it crossed the threshold; returns the entry.

        ``elapsed_wall_s`` is the caller-measured request wall time (it
        covers parameter binding and snapshot validation, not only the
        executor's own elapsed time).  ``profile`` is the request's
        collapsed-stack sample aggregate when the sampling profiler was
        running (see :meth:`Observability.consider_slow`).
        """
        if elapsed_wall_s * 1000.0 < self.threshold_ms:
            return None
        entry = {
            "program": program,
            "mode": mode,
            "plan_fingerprint": fingerprint,
            "elapsed_wall_s": elapsed_wall_s,
            "charged_time_s": report.total_time_s,
            "threshold_ms": self.threshold_ms,
            "operators": len(report.records),
            "stages": stage_breakdown(report),
            "slowest_ops": self._slowest_ops(report),
            "profile": profile,
            "captured_at": time.time(),
        }
        with self._lock:
            self._entries.append(entry)
            self.total_captured += 1
        return entry

    @staticmethod
    def _slowest_ops(report: "ExecutionReport", top: int = 3) -> list[dict[str, Any]]:
        ranked = sorted(report.records, key=lambda r: r.wall_time_s,
                        reverse=True)[:top]
        return [{"op_id": r.op_id, "kind": r.kind, "engine": r.engine,
                 "wall_time_s": r.wall_time_s,
                 "charged_time_s": r.charged_time_s} for r in ranked]

    def entries(self) -> list[dict[str, Any]]:
        """Captured entries, newest first."""
        with self._lock:
            return [dict(entry) for entry in reversed(self._entries)]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
