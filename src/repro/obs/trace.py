"""Hierarchical trace spans threaded through one per-thread context.

A :class:`Span` is one timed region of work — a session request, a compile,
an executor stage, one operator, a per-shard scatter subtask, a view
refresh, a WAL fsync.  Spans form a tree: the :class:`Tracer` keeps the
*current* span in thread-local storage, and every span opened while another
is current becomes its child.  Work handed to a pool thread re-attaches the
parent explicitly (:meth:`Tracer.attach`), so scatter subtasks and
concurrent stage operators nest under their dispatching operator even
though they run elsewhere.

Sampling happens once per request (:meth:`Tracer.request`): a sampled-out
request opens *no* spans at all — every child site checks "is a trace
active on this thread?" and returns a no-op, so the instrumented hot path
costs one thread-local read.  Metrics are recorded independently of
sampling (a sampled-out request still counts in every counter).

Finished spans land in a bounded ring buffer; the Chrome ``trace_event``
exporter (:mod:`repro.obs.export`) turns its contents into a file Perfetto
or ``about:tracing`` can open.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from collections import deque
from typing import Any, Iterator

#: Monotonic span/trace id source, shared process-wide (ids only need to be
#: unique, not secret).
_ids = itertools.count(1)


class Span:
    """One timed region; finished spans are immutable in practice."""

    __slots__ = ("span_id", "trace_id", "parent_id", "name", "category",
                 "start_s", "end_s", "thread_id", "thread_name", "attrs")

    def __init__(self, name: str, category: str, trace_id: int,
                 parent_id: int | None, attrs: dict[str, Any]) -> None:
        self.span_id = next(_ids)
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start_s = time.perf_counter()
        self.end_s: float | None = None
        thread = threading.current_thread()
        self.thread_id = thread.ident or 0
        self.thread_name = thread.name
        self.attrs = attrs

    @property
    def duration_s(self) -> float:
        """Span duration (0.0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, **attrs: Any) -> None:
        """Attach attributes (rows, cache outcome, resync cause, ...)."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict[str, Any]:
        """Stable dictionary form (tests and the JSON exporters)."""
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "thread_id": self.thread_id,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, cat={self.category!r}, "
                f"id={self.span_id}, parent={self.parent_id})")


class _SpanScope:
    """Context manager closing one span (and restoring the previous current)."""

    __slots__ = ("_tracer", "span", "_previous")

    def __init__(self, tracer: "Tracer", span: Span | None,
                 previous: Span | None) -> None:
        self._tracer = tracer
        self.span = span
        self._previous = previous

    def __enter__(self) -> Span | None:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.span is None:
            return
        self.span.end_s = time.perf_counter()
        if exc is not None:
            self.span.attrs.setdefault("error", repr(exc))
        self._tracer._finish(self.span, self._previous)


class _AttachScope:
    """Context manager installing an existing span as a thread's current."""

    __slots__ = ("_tracer", "_previous", "_installed")

    def __init__(self, tracer: "Tracer", span: Span | None) -> None:
        self._tracer = tracer
        self._installed = span is not None
        if self._installed:
            self._previous = tracer._current_span()
            tracer._set_current(span)

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._installed:
            self._tracer._set_current(self._previous)


class Tracer:
    """Per-deployment span factory, sampler and ring buffer."""

    def __init__(self, *, enabled: bool = True, sample_rate: float = 1.0,
                 buffer_size: int = 8192, rng: random.Random | None = None) -> None:
        if not (0.0 <= sample_rate <= 1.0):
            raise ValueError("sample_rate must be within [0, 1]")
        self.enabled = enabled
        self.sample_rate = sample_rate
        self._rng = rng if rng is not None else random.Random()
        self._local = threading.local()
        #: Mirror of every thread's current span, keyed by thread ident.
        #: Thread-locals are invisible to other threads, but the sampling
        #: profiler must attribute a sampled stack to the span open on the
        #: *sampled* thread — so every current-span install also updates
        #: this map.  Plain dict ops are atomic under the GIL; a sampler
        #: reading a stale entry merely misattributes one sample.
        self._thread_spans: dict[int, Span] = {}
        self._lock = threading.Lock()
        self._finished: deque[Span] = deque(maxlen=buffer_size)
        #: Requests that arrived while tracing (sampled or not) / sampled.
        self.requests_seen = 0
        self.requests_sampled = 0

    # -- span creation -------------------------------------------------------------------

    def request(self, name: str, **attrs: Any) -> _SpanScope:
        """Open a root (request) span, subject to the sampling decision.

        A sampled-out request returns a no-op scope: nothing is recorded
        and no thread-local state is installed, so every downstream
        :meth:`span` call short-circuits on "no current span".  When called
        while a trace is already active on this thread, the new span simply
        nests (no second sampling decision) — a one-shot ``execute`` whose
        prepare and run both open request scopes produces one tree.
        """
        if not self.enabled:
            return _SpanScope(self, None, None)
        current = self._current_span()
        if current is not None:
            return self.span(name, "session", **attrs)
        with self._lock:
            self.requests_seen += 1
            sampled = (self.sample_rate >= 1.0
                       or self._rng.random() < self.sample_rate)
            if sampled:
                self.requests_sampled += 1
        if not sampled:
            return _SpanScope(self, None, None)
        span = Span(name, "session", trace_id=next(_ids), parent_id=None,
                    attrs=attrs)
        self._set_current(span)
        return _SpanScope(self, span, None)

    def span(self, name: str, category: str, **attrs: Any) -> _SpanScope:
        """Open a child of the current span; no-op when no trace is active."""
        if not self.enabled:
            return _SpanScope(self, None, None)
        parent = self._current_span()
        if parent is None:
            return _SpanScope(self, None, None)
        span = Span(name, category, trace_id=parent.trace_id,
                    parent_id=parent.span_id, attrs=attrs)
        self._set_current(span)
        return _SpanScope(self, span, parent)

    def attach(self, span: Span | None) -> _AttachScope:
        """Install ``span`` as this thread's current span (pool workers).

        The dispatching thread captures ``tracer.current()`` and the worker
        wraps its body in ``with tracer.attach(captured):`` so spans opened
        there parent correctly.  ``attach(None)`` is a no-op scope.
        """
        return _AttachScope(self, span if self.enabled else None)

    def current(self) -> Span | None:
        """The span currently open on this thread, if any."""
        if not self.enabled:
            return None
        return self._current_span()

    @property
    def active(self) -> bool:
        """Whether a sampled trace is open on this thread."""
        return self.current() is not None

    # -- internals -----------------------------------------------------------------------

    def _current_span(self) -> Span | None:
        return getattr(self._local, "span", None)

    def _set_current(self, span: Span | None) -> None:
        """Install ``span`` as this thread's current, mirroring it for samplers."""
        self._local.span = span
        ident = threading.get_ident()
        if span is None:
            self._thread_spans.pop(ident, None)
        else:
            self._thread_spans[ident] = span

    def current_spans_by_thread(self) -> dict[int, Span]:
        """Snapshot of each thread's current span (profiler attribution)."""
        return dict(self._thread_spans)

    def _finish(self, span: Span, previous: Span | None) -> None:
        self._set_current(previous)
        with self._lock:
            self._finished.append(span)

    # -- reading -------------------------------------------------------------------------

    def spans(self) -> list[Span]:
        """Finished spans currently retained, oldest first."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        """Drop the retained spans (e.g. after an export)."""
        with self._lock:
            self._finished.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)


def span_tree(spans: list[Span]) -> dict[int | None, list[Span]]:
    """Index ``spans`` by parent id (test helper for nesting assertions)."""
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    return children


def ancestors(span: Span, spans: list[Span]) -> Iterator[Span]:
    """Walk from ``span``'s parent to the root of its trace."""
    by_id = {s.span_id: s for s in spans}
    current = span
    while current.parent_id is not None:
        parent = by_id.get(current.parent_id)
        if parent is None:
            return
        yield parent
        current = parent
