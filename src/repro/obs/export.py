"""Exporters: Prometheus text exposition and Chrome ``trace_event`` JSON.

Two read-side formats over the registry and tracer:

* :func:`prometheus_text` renders every metric family in the Prometheus
  text exposition format (``# HELP`` / ``# TYPE`` headers, one sample per
  labeled series, histograms as cumulative ``_bucket``/``_sum``/``_count``
  samples with ``le`` labels) — the payload a scrape endpoint would serve.
  :func:`parse_prometheus_text` is the matching minimal parser, used by CI
  and tests to assert the output round-trips.
* :func:`chrome_trace` renders finished spans as Chrome ``trace_event``
  complete events (``"ph": "X"``), loadable in ``about:tracing`` or
  Perfetto.  Each event carries ``span_id``/``parent_id`` in its ``args``
  so the span tree is recoverable exactly even where Perfetto's
  per-track time-nesting heuristic cannot see it (spans that ran on pool
  threads).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import HistogramChild, MetricsRegistry

if TYPE_CHECKING:
    from repro.obs.trace import Span


# -- Prometheus text format -----------------------------------------------------------


def _escape_label(value: str) -> str:
    """Prometheus label-value escaping: backslash, newline, double quote.

    Label values are client-supplied (tenant ids flow into ``serve_*``
    labels), so hostile values must stay inside their quotes and keep the
    exposition line-oriented.  Backslash must be escaped first.
    """
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _unescape_label(value: str) -> str:
    """Single-pass inverse of :func:`_escape_label`.

    Sequential ``str.replace`` calls mis-decode mixed sequences (a literal
    backslash followed by ``n`` escapes to ``\\\\n``, which a later
    ``\\n -> newline`` replace would corrupt); a scanner decodes each
    escape exactly once.
    """
    out: list[str] = []
    index = 0
    length = len(value)
    while index < length:
        char = value[index]
        if char == "\\" and index + 1 < length:
            follower = value[index + 1]
            if follower == "\\":
                out.append("\\")
                index += 2
                continue
            if follower == "n":
                out.append("\n")
                index += 2
                continue
            if follower == '"':
                out.append('"')
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def _format_labels(names: tuple[str, ...] | list[str],
                   values: tuple[str, ...], extra: str = "") -> str:
    pairs = [f'{name}="{_escape_label(value)}"'
             for name, value in zip(names, values)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for child in family.children():
            if isinstance(child, HistogramChild):
                with child._lock:
                    counts = list(child.bucket_counts)
                    total = child.count
                    total_sum = child.sum
                cumulative = 0
                for boundary, count in zip(child.boundaries, counts):
                    cumulative += count
                    labels = _format_labels(family.label_names,
                                            child.label_values,
                                            f'le="{_format_value(boundary)}"')
                    lines.append(f"{family.name}_bucket{labels} {cumulative}")
                labels = _format_labels(family.label_names, child.label_values,
                                        'le="+Inf"')
                lines.append(f"{family.name}_bucket{labels} {total}")
                labels = _format_labels(family.label_names, child.label_values)
                lines.append(f"{family.name}_sum{labels} "
                             f"{_format_value(total_sum)}")
                lines.append(f"{family.name}_count{labels} {total}")
            else:
                labels = _format_labels(family.label_names, child.label_values)
                lines.append(f"{family.name}{labels} "
                             f"{_format_value(child.value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[str, dict[str, Any]]:
    """Parse exposition text back into ``{family: {type, samples}}``.

    A deliberately small parser covering the subset :func:`prometheus_text`
    emits; it raises ``ValueError`` on malformed lines, which is exactly
    what CI uses to assert the exporter output stays well-formed.
    """
    families: dict[str, dict[str, Any]] = {}
    current: str | None = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ValueError(f"malformed HELP line: {raw!r}")
            current = parts[2]
            families.setdefault(current, {"type": None, "help":
                                          parts[3] if len(parts) > 3 else "",
                                          "samples": []})
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"malformed TYPE line: {raw!r}")
            families.setdefault(parts[2], {"type": None, "help": "",
                                           "samples": []})
            families[parts[2]]["type"] = parts[3]
            continue
        if line.startswith("#"):
            continue
        name, labels, value = _parse_sample(raw)
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in families:
                base = name[:-len(suffix)]
                break
        if base not in families:
            raise ValueError(f"sample for unknown family: {raw!r}")
        families[base]["samples"].append(
            {"name": name, "labels": labels, "value": value})
    return families


def _parse_sample(line: str) -> tuple[str, dict[str, str], float]:
    rest = line.strip()
    if "{" in rest:
        name, _, tail = rest.partition("{")
        body, _, value_part = tail.rpartition("}")
        labels = _parse_labels(body)
    else:
        name, _, value_part = rest.partition(" ")
        labels = {}
    value_str = value_part.strip()
    if not name or not value_str:
        raise ValueError(f"malformed sample line: {line!r}")
    return name, labels, float(value_str)


def _parse_labels(body: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    if not body:
        return labels
    for pair in _split_label_pairs(body):
        key, _, quoted = pair.partition("=")
        if not (quoted.startswith('"') and quoted.endswith('"')):
            raise ValueError(f"malformed label pair: {pair!r}")
        labels[key] = _unescape_label(quoted[1:-1])
    return labels


def _split_label_pairs(body: str) -> list[str]:
    # Quote state must track escape *runs*, not just the previous
    # character: in `a\\"` the quote is real (the backslash is itself
    # escaped), while in `a\"` it is not.  An explicit escaped flag
    # consumes backslashes pairwise.
    pairs: list[str] = []
    in_quote = False
    escaped = False
    start = 0
    for index, char in enumerate(body):
        if in_quote:
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                in_quote = False
        elif char == '"':
            in_quote = True
        elif char == ",":
            pairs.append(body[start:index])
            start = index + 1
    pairs.append(body[start:])
    return [pair for pair in pairs if pair]


# -- Chrome trace_event JSON ----------------------------------------------------------


def chrome_trace(spans: "list[Span]", *, process_name: str = "polystore",
                 ) -> dict[str, Any]:
    """Finished spans as a Chrome/Perfetto ``trace_event`` document.

    Timestamps are microseconds relative to the earliest span, one track
    (``tid``) per originating thread.  ``args`` carries the exact span
    tree (``span_id``/``parent_id``/``trace_id``) plus every span
    attribute.
    """
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    epoch = min(span.start_s for span in spans)
    events: list[dict[str, Any]] = []
    thread_names: dict[int, str] = {}
    for span in spans:
        thread_names.setdefault(span.thread_id, span.thread_name)
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": (span.start_s - epoch) * 1e6,
            "dur": span.duration_s * 1e6,
            "pid": 1,
            "tid": span.thread_id,
            "args": {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "trace_id": span.trace_id,
                **span.attrs,
            },
        })
    metadata: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 1,
        "args": {"name": process_name},
    }]
    for tid, name in sorted(thread_names.items()):
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": name},
        })
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def chrome_trace_json(spans: "list[Span]", **kwargs: Any) -> str:
    """:func:`chrome_trace` serialized to a JSON string."""
    return json.dumps(chrome_trace(spans, **kwargs), indent=None,
                      default=repr)
