"""Exception hierarchy for the Polystore++ reproduction.

All library-raised exceptions derive from :class:`PolystoreError` so that
callers can distinguish library failures from programming errors with a
single ``except`` clause.
"""

from __future__ import annotations


class PolystoreError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class SchemaError(PolystoreError):
    """A schema is malformed or two schemas are incompatible."""


class DataModelError(PolystoreError):
    """A value does not fit the declared data model (bad type, arity, ...)."""


class StorageError(PolystoreError):
    """A storage engine failed (missing table, duplicate key, bad page, ...)."""


class QueryError(PolystoreError):
    """A query could not be parsed or is semantically invalid."""


class PlanError(PolystoreError):
    """A logical or physical plan is malformed or cannot be produced."""


class IRError(PolystoreError):
    """An intermediate-representation graph is invalid."""


class CompilationError(PolystoreError):
    """The compiler could not translate a heterogeneous program to IR."""


class OptimizationError(PolystoreError):
    """The optimizer failed (empty design space, infeasible constraints, ...)."""


class ExecutionError(PolystoreError):
    """The executor failed while running a physical plan."""


class CancelledError(ExecutionError):
    """A request was cancelled cooperatively before it completed.

    Raised by :meth:`repro.cancellation.CancellationToken.check` at the
    executor's cancellation checkpoints (stage boundaries, operator starts,
    shard-subtask dispatch), so in-flight work stops instead of running to
    completion after the caller has given up.
    """


class DeadlineExceededError(CancelledError):
    """A request's deadline passed before it completed.

    A deadline is a cancellation with a cause, so ``except CancelledError``
    catches both; callers that care about the distinction (the serving tier
    maps them to different wire error codes) catch this subclass first.
    """


class MigrationError(PolystoreError):
    """Moving data between engines failed."""


class AdapterError(PolystoreError):
    """An engine adapter could not translate or run an IR fragment."""


class AcceleratorError(PolystoreError):
    """An accelerator model was configured or used incorrectly."""


class ConfigurationError(PolystoreError):
    """The Polystore++ deployment configuration is invalid."""


class CatalogError(PolystoreError):
    """The global catalog does not know about a referenced object."""


class UnsupportedOperationError(PolystoreError):
    """The requested operation is not supported by the target engine."""
