"""Caches behind the session API: compiled plans and pinned scan snapshots.

Two caches make :meth:`~repro.client.PreparedProgram.run` cheap:

* :class:`PlanCache` — an LRU over compiled plans, keyed by the program's
  deterministic fingerprint plus execution mode, compiler options and the
  deployment's plan generation.  Registering a new engine or accelerator
  bumps the generation, so every older plan is unreachable (and the system
  additionally clears live session caches explicitly).
* :class:`ScanSnapshot` — per-plan pinned results for *pure* operators whose
  values depend only on engine state (scans, summaries, joins over them, and
  the migrations that ship them).  Each pinned entry remembers the *scoped*
  data versions its subtree's leaf reads depend on — the table a scan reads,
  the series a window covers — so a write to one table no longer unpins
  entries that only read other tables; reads whose footprint cannot be named
  fall back to the engine-wide counter.  Operators with side effects or
  nondeterminism (``train``, ``kmeans``, ``python_udf``, tensor ops that
  mutate the FLOP counters) are never pinned and re-execute every run.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.catalog import Catalog
from repro.cluster.scatter import ShardedValue
from repro.compiler.pipeline import CompilationResult
from repro.datamodel.table import Table
from repro.ir.graph import IRGraph
from repro.middleware.executor.report import TaskRecord
from repro.stores.changelog import leaf_read_scope

#: Operator kinds whose results are pure functions of engine state and
#: upstream values — the only kinds a prepared program may pin.
SNAPSHOT_KINDS = frozenset({
    "scan", "index_seek", "filter", "project", "join", "aggregate", "sort",
    "limit", "top_k",
    "kv_get", "kv_range",
    "ts_range", "window_aggregate", "ts_summarize",
    "graph_match", "shortest_path", "neighborhood", "graph_nodes",
    "text_search", "keyword_features",
    "feature_matrix", "predict",
    "migrate", "materialize", "union",
})


class PlanCache:
    """A thread-safe LRU cache of compiled plans with hit/miss statistics.

    ``on_evict`` is called (outside the cache lock) with every value the
    cache lets go of — LRU victims, same-key replacements and invalidated
    entries — so owners can release resources the value holds, most
    importantly a :class:`CachedPlan`'s pinned scan snapshot.
    """

    def __init__(self, capacity: int = 64,
                 on_evict: Callable[[Any], None] | None = None) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        self.capacity = capacity
        self._on_evict = on_evict
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def get(self, key: Hashable) -> Any | None:
        """The cached value for ``key`` (refreshing recency), or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``value``, evicting the least-recently-used entry if full."""
        released: list[Any] = []
        with self._lock:
            previous = self._entries.get(key)
            if previous is not None and previous is not value:
                released.append(previous)
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                _, victim = self._entries.popitem(last=False)
                released.append(victim)
                self._evictions += 1
        self._release(released)

    def invalidate(self) -> int:
        """Drop every entry; returns the number removed."""
        with self._lock:
            released = list(self._entries.values())
            removed = len(self._entries)
            self._entries.clear()
            if removed:
                self._invalidations += 1
        self._release(released)
        return removed

    def _release(self, values: list[Any]) -> None:
        """Run the eviction callback outside the lock (it may take others)."""
        if self._on_evict is None:
            return
        for value in values:
            self._on_evict(value)

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus current size."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def _protective_copy(value: Any) -> Any:
    """A container-level copy so caller mutation cannot reach a pinned value.

    Rows/elements themselves are immutable tuples or scalars in practice;
    copying the outer container is what protects against ``pop``/``append``/
    key-assignment on returned results.
    """
    if isinstance(value, Table):
        return Table(value.schema, value.rows)
    if isinstance(value, ShardedValue):
        # Sharded partitions pin like any other pure value; each partition
        # container is copied so consumers can't poison the pinned original.
        return value.copy_parts(_protective_copy)
    if isinstance(value, list):
        return list(value)
    if isinstance(value, dict):
        return dict(value)
    return value


#: One snapshot dependency: ``(engine name, scope or None)``.  ``None``
#: scope validates against the engine-wide counter.
SnapshotDep = tuple[str, "str | None"]


class ScanSnapshot:
    """Pinned pure-operator results for one compiled plan.

    Implements the executor's ``ResultCache`` protocol.  Entries are only
    pinned for operators whose whole upstream subtree consists of
    :data:`SNAPSHOT_KINDS`; each entry is validated against the *scoped*
    data versions of the leaf reads that subtree depends on before every
    run.  Scoping is what keeps unrelated writes from unpinning everything:
    a scan of ``orders`` depends on ``(engine, "table:orders")``, so a write
    to ``customers`` on the same engine leaves it pinned.  Interior
    operators (filters, joins, migrations, ...) are pure functions of their
    inputs and contribute no dependencies of their own — except ``predict``,
    which reads the model registry of its ML engine.
    """

    def __init__(self, graph: IRGraph) -> None:
        self._lock = threading.RLock()
        self._eligible = self._eligible_subtrees(graph)
        self._entries: dict[str, tuple[Any, TaskRecord]] = {}
        self._entry_versions: dict[str, dict[SnapshotDep, int]] = {}
        # Versions observed at each run's begin_run.  Thread-local because
        # overlapping runs (Session.submit) share one snapshot: each run must
        # tag its pins with the versions *it* started from, not a sibling's.
        self._run_state = threading.local()
        self.replays = 0
        self.invalidated = 0

    @staticmethod
    def _eligible_subtrees(graph: IRGraph) -> dict[str, frozenset[SnapshotDep]]:
        """Map each pinnable op id to the scoped reads its subtree depends on."""
        eligible: dict[str, frozenset[SnapshotDep]] = {}
        for node in graph.topological_order():
            if node.kind not in SNAPSHOT_KINDS:
                continue
            if any(input_id not in eligible for input_id in node.inputs):
                continue
            deps: set[SnapshotDep] = set()
            for input_id in node.inputs:
                deps.update(eligible[input_id])
            if not node.inputs and node.engine:
                # A leaf read: depend on exactly the scope it covers.
                deps.add((node.engine, leaf_read_scope(node.kind, node.params)))
            elif node.kind == "predict" and node.engine:
                # Scoring reads model state from the ML engine, not just its
                # dataflow inputs.
                deps.add((node.engine, None))
            eligible[node.op_id] = frozenset(deps)
        return eligible

    # -- executor ResultCache protocol ---------------------------------------------------

    def begin_run(self, catalog: Catalog) -> None:
        """Drop entries whose scoped reads changed since they were pinned."""
        with self._lock:
            versions: dict[SnapshotDep, int] = {}
            for deps in self._eligible.values():
                for dep in deps:
                    name, scope = dep
                    if dep not in versions and catalog.has_engine(name):
                        versions[dep] = catalog.engine(name).data_version_for(scope)
            self._run_state.versions = versions
            stale = [
                op_id for op_id, pinned in self._entry_versions.items()
                if any(versions.get(dep) != version
                       for dep, version in pinned.items())
            ]
            for op_id in stale:
                self._entries.pop(op_id, None)
                self._entry_versions.pop(op_id, None)
                self.invalidated += 1

    def lookup(self, op_id: str) -> tuple[Any, TaskRecord] | None:
        with self._lock:
            entry = self._entries.get(op_id)
            if entry is None:
                return None
            # Revalidate against the versions THIS run started from: an
            # overlapping run may have pinned this entry from data read
            # before a write that this run's begin_run already observed.
            run_versions = getattr(self._run_state, "versions", None)
            if run_versions is not None:
                pinned = self._entry_versions.get(op_id, {})
                if any(run_versions.get(dep) != version
                       for dep, version in pinned.items()):
                    return None
            self.replays += 1
            value, record = entry
        # Hand out a defensive copy: callers own the result objects and may
        # mutate them, which must never poison the pinned original.  The
        # O(rows) copy happens outside the lock — entries are immutable once
        # stored, and copying inside would serialize concurrent replays of
        # exactly the large pinned scans the snapshot exists to accelerate.
        return _protective_copy(value), record

    def store(self, op_id: str, value: Any, record: TaskRecord) -> None:
        with self._lock:
            deps = self._eligible.get(op_id)
            if deps is None or op_id in self._entries:
                return
        pinned = _protective_copy(value)  # O(rows), outside the lock
        with self._lock:
            if op_id in self._entries:  # a concurrent run pinned it first
                return
            run_versions = getattr(self._run_state, "versions", {})
            self._entries[op_id] = (pinned, record)
            self._entry_versions[op_id] = {
                dep: run_versions[dep]
                for dep in deps if dep in run_versions
            }

    # -- management ----------------------------------------------------------------------

    def clear(self) -> int:
        """Unpin everything (the next run re-reads every engine)."""
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
            self._entry_versions.clear()
            return removed

    @property
    def pinned(self) -> int:
        """Number of currently pinned operator results."""
        with self._lock:
            return len(self._entries)

    @property
    def pinnable(self) -> int:
        """Number of operators in the plan eligible for pinning."""
        return len(self._eligible)


@dataclass
class CachedPlan:
    """One plan-cache entry: the compilation plus its shared scan snapshot."""

    compilation: CompilationResult
    snapshot: ScanSnapshot
    generation: int
    fingerprint: str
    mode: str
    hits: int = 0
    declared_params: dict[str, Any] = field(default_factory=dict)
    #: The graph with every Param bound to its default, computed once: the
    #: all-defaults binding never changes, so argument-less runs must not
    #: pay an O(plan) copy+rebind each time.
    default_bound_graph: IRGraph | None = None
    #: ``operator fingerprint -> estimated rows`` at compile time.  The
    #: session compares these against the runtime statistics before every
    #: run; drift past the configured factor ages the plan (see
    #: ``Session._reoptimize_if_stale``).
    baked_estimates: dict[str, int] = field(default_factory=dict)
    #: How many times plan aging replaced this program's physical plan.
    reoptimizations: int = 0
    #: Plan fingerprint of the entry this one re-optimized away from.
    reoptimized_from: str | None = None
    #: Set (under the session's prepare lock) when aging replaced this entry
    #: with a new one, so prepared handles racing the replacement converge.
    superseded_by: "CachedPlan | None" = None
