"""The session layer: prepare once, run many, submit concurrently.

A :class:`Session` is the client-facing handle onto one Polystore++
deployment.  It separates *plan construction* from *execution* the way
relation-tree libraries separate building an expression from handing it to
an engine:

* :meth:`Session.prepare` compiles a :class:`HeterogeneousProgram` once and
  caches the plan in the session's LRU :class:`~repro.client.cache.PlanCache`
  (keyed by program fingerprint + mode + compiler options + deployment
  generation).
* :meth:`PreparedProgram.run` re-executes the compiled plan with low
  latency: compilation is skipped, runtime parameters (:class:`Param`
  placeholders) are bound on a graph copy, and pure scan subtrees are served
  from a pinned :class:`~repro.client.cache.ScanSnapshot` validated against
  engine data versions.
* :meth:`Session.submit` / :meth:`Session.run_batch` dispatch executions on
  a thread pool, returning futures — the executor additionally overlaps
  independent operators inside each run when engines are thread-safe.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Iterable

from repro.cancellation import CancellationToken
from repro.compiler.pipeline import CompilerOptions
from repro.eide.dataflow import DataflowProgram
from repro.eide.expressions import bind_params
from repro.eide.program import HeterogeneousProgram, Param
from repro.exceptions import ConfigurationError, ExecutionError
from repro.ir.graph import IRGraph
from repro.stores.relational.expressions import Expression
from repro.middleware.executor import Executor
from repro.middleware.migration import DataMigrator
from repro.client.cache import CachedPlan, PlanCache, ScanSnapshot

if TYPE_CHECKING:  # avoid a circular import; the system creates sessions
    from repro.core.system import ExecutionResult, ModePlan, PolystorePlusPlus

#: Programs sessions accept: the legacy fragment builder or a dataflow program.
Program = HeterogeneousProgram | DataflowProgram


def _resolve_token(deadline_s: float | None,
                   cancellation: CancellationToken | None
                   ) -> CancellationToken | None:
    """Combine the two cancellation inputs into one token (or ``None``).

    A caller-supplied token is reused (so a server-side cancel reaches the
    run); a plain deadline gets a private token.  When both are given the
    deadline tightens the shared token — it can only become more urgent.
    """
    if deadline_s is None:
        return cancellation
    if cancellation is None:
        return CancellationToken(deadline_s=deadline_s)
    return cancellation.add_deadline(deadline_s)


def _resolve_param(param: Param, bindings: dict[str, Any]) -> Any:
    if param.name in bindings:
        return bindings[param.name]
    if param.has_default:
        return param.default
    raise ExecutionError(
        f"no value bound for parameter {param.name!r} and it has no default"
    )


def _bind_value(value: Any, bindings: dict[str, Any]) -> Any:
    """Recursively substitute :class:`Param` placeholders with bound values."""
    if isinstance(value, Param):
        return _resolve_param(value, bindings)
    if isinstance(value, Expression):
        # Structured predicates may embed placeholders as literal operands
        # (``col("age") > Param("min_age", 60)``).
        return bind_params(value, lambda param: _resolve_param(param, bindings))
    if isinstance(value, dict):
        return {k: _bind_value(v, bindings) for k, v in value.items()}
    if isinstance(value, list):
        return [_bind_value(v, bindings) for v in value]
    if isinstance(value, tuple):
        return tuple(_bind_value(v, bindings) for v in value)
    if isinstance(value, (set, frozenset)):
        return type(value)(_bind_value(v, bindings) for v in value)
    return value


class PreparedProgram:
    """A compiled, cached, re-executable program bound to one session.

    Obtained from :meth:`Session.prepare`; holding one amortizes compilation
    (and, for pure subtrees, engine reads) across many :meth:`run` calls.
    """

    def __init__(self, session: "Session", program: "Program",
                 plan: "ModePlan", entry: CachedPlan,
                 options: CompilerOptions | None = None) -> None:
        self._session = session
        self._program = program
        self._plan = plan
        self._entry = entry
        self._options = options
        self._runs = 0
        self._lock = threading.RLock()

    # -- introspection -------------------------------------------------------------------

    @property
    def program(self) -> "Program":
        """The source program (frozen if prepared with ``freeze=True``)."""
        return self._program

    @property
    def mode(self) -> str:
        """The execution mode the plan was compiled for."""
        return self._plan.mode

    @property
    def fingerprint(self) -> str:
        """The program fingerprint the plan cache keyed on."""
        return self._entry.fingerprint

    @property
    def compilation(self):
        """The (possibly re-)compiled plan currently backing this program."""
        return self._entry.compilation

    @property
    def runs(self) -> int:
        """How many times :meth:`run` completed on this handle."""
        return self._runs

    @property
    def reoptimizations(self) -> int:
        """How many times plan aging replaced this program's physical plan."""
        return self._entry.reoptimizations

    def parameters(self) -> dict[str, Param]:
        """Declared runtime parameters (name -> placeholder)."""
        return dict(self._entry.declared_params)

    def explain(self) -> str:
        """The staged physical plan plus cache/pin status, for humans."""
        entry = self._entry
        lines = [
            f"PreparedProgram({self._program.name!r}, mode={self.mode!r}, "
            f"fingerprint={entry.fingerprint[:12]}...)",
            f"  compile_time_s: {entry.compilation.compile_time_s:.6f}"
            f" (cache hits: {entry.hits})",
            f"  pinned scans: {entry.snapshot.pinned}/{entry.snapshot.pinnable}",
        ]
        if entry.declared_params:
            lines.append("  parameters: " + ", ".join(sorted(entry.declared_params)))
        lines.append(entry.compilation.graph.render())
        return "\n".join(lines)

    # -- execution -----------------------------------------------------------------------

    def run(self, *, refresh: bool = False, reuse_scans: bool = True,
            deadline_s: float | None = None,
            cancellation: CancellationToken | None = None,
            **params: Any) -> "ExecutionResult":
        """Execute the prepared plan and return an :class:`ExecutionResult`.

        Keyword arguments bind the program's :class:`Param` placeholders.
        ``refresh=True`` unpins every scan snapshot first, forcing a full
        re-read of the engines (argument-less runs re-pin their results;
        explicitly bound runs never consult or populate the pins).
        ``reuse_scans=False`` executes everything fresh without touching the
        pins.

        ``deadline_s`` bounds this run's wall time and ``cancellation``
        attaches a shared :class:`~repro.cancellation.CancellationToken`
        (both may be given; the deadline tightens the token).  The executor
        checks the token between stages, at operator starts and before each
        shard subtask, raising
        :class:`~repro.exceptions.DeadlineExceededError` /
        :class:`~repro.exceptions.CancelledError` — work genuinely stops
        instead of running to completion.
        """
        token = _resolve_token(deadline_s, cancellation)
        obs = self._session.system.obs
        if not obs.enabled:
            return self._run_once(refresh=refresh, reuse_scans=reuse_scans,
                                  params=params, cancellation=token)
        start = time.perf_counter()
        trace_id = None
        with obs.tracer.request(f"request:{self._program.name}",
                                program=self._program.name,
                                mode=self.mode) as span:
            result = self._run_once(refresh=refresh, reuse_scans=reuse_scans,
                                    params=params, cancellation=token)
            if span is not None:
                trace_id = span.trace_id
                span.set(operators=len(result.report.records),
                         reoptimized=result.report.reoptimized)
        elapsed = time.perf_counter() - start
        obs.requests_total.inc(mode=self.mode)
        obs.request_seconds.observe(elapsed, mode=self.mode)
        obs.consider_slow(program=str(self._program.name), mode=self.mode,
                          fingerprint=self._entry.fingerprint,
                          report=result.report, elapsed_wall_s=elapsed,
                          trace_id=trace_id)
        return result

    def _run_once(self, *, refresh: bool, reuse_scans: bool,
                  params: dict[str, Any],
                  cancellation: CancellationToken | None = None
                  ) -> "ExecutionResult":
        if cancellation is not None:
            cancellation.check()  # fail fast before touching the plan
        with self._lock:  # revalidate plan + entry atomically across threads
            plan, entry, reoptimized = self._session._fresh_entry(
                self._program, self._plan, self._entry, self._options)
            self._plan, self._entry = plan, entry
        graph = entry.compilation.graph
        snapshot: ScanSnapshot | None = entry.snapshot
        if refresh:
            entry.snapshot.clear()
        if params:
            self._check_bindings(params, entry)
            graph = self._bound_graph(graph, params)
            snapshot = None  # results depend on this call's bindings
        else:
            if entry.declared_params:
                # Bind every placeholder to its default.  That binding is
                # identical on every argument-less run, so the pinned scans
                # stay valid (and the bound graph is computed only once);
                # only explicit bindings force a fresh read.
                with self._lock:
                    if entry.default_bound_graph is None:
                        entry.default_bound_graph = self._bound_graph(graph, {})
                graph = entry.default_bound_graph
            if not reuse_scans:
                snapshot = None
        result = self._session._run_graph(entry.compilation, graph, plan,
                                          snapshot, cancellation=cancellation)
        if reoptimized:
            result.report.reoptimized = True
        with self._lock:
            self._runs += 1
        return result

    def _check_bindings(self, params: dict[str, Any], entry: CachedPlan) -> None:
        unknown = set(params) - set(entry.declared_params)
        if unknown:
            declared = sorted(entry.declared_params) or ["<none>"]
            raise ExecutionError(
                f"unknown parameter(s) {sorted(unknown)}; "
                f"declared parameters: {declared}"
            )

    def _bound_graph(self, graph: IRGraph, params: dict[str, Any]) -> IRGraph:
        bound = graph.copy()
        for node in bound.nodes():
            node.params = _bind_value(node.params, params)
        return bound


class Session:
    """A client session over one Polystore++ deployment.

    Sessions are cheap; create one per logical client (or use the system's
    default session through :meth:`PolystorePlusPlus.execute`).  All methods
    are thread-safe.  Use as a context manager to release the worker pool::

        with system.session() as session:
            prepared = session.prepare(program)
            futures = [session.submit(prepared) for _ in range(8)]
            results = [f.result() for f in futures]
    """

    def __init__(self, system: "PolystorePlusPlus", *, plan_cache_size: int = 64,
                 max_workers: int = 4, name: str = "session") -> None:
        if max_workers < 1:
            raise ConfigurationError("session max_workers must be at least 1")
        self.system = system
        self.name = name
        self.max_workers = max_workers
        self.plan_cache = PlanCache(plan_cache_size,
                                    on_evict=self._release_entry)
        self._lock = threading.RLock()
        #: Serializes lookup-or-compile so concurrent prepares of one program
        #: cannot compile twice and hand out divergent snapshot instances.
        self._prepare_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._submitted = 0
        self._closed = False

    # -- preparation ---------------------------------------------------------------------

    def prepare(self, program: "Program", *, mode: str = "polystore++",
                options: CompilerOptions | None = None,
                freeze: bool = True) -> PreparedProgram:
        """Compile ``program`` (or reuse a cached plan) for repeated execution.

        ``freeze=True`` (the default) makes the program immutable so the
        cached plan can never diverge from later edits; pass ``freeze=False``
        to keep the program editable (edits change the fingerprint, so stale
        plans are never reused either way).
        """
        self._check_open()
        plan = self.system.plan_mode(mode, options)
        if freeze:
            program.freeze()
        entry = self._lookup_or_compile(program, plan)
        return PreparedProgram(self, program, plan, entry, options)

    @staticmethod
    def _release_entry(entry: Any) -> None:
        """Unpin a plan-cache entry's scan snapshot when the cache lets it go.

        Fires on LRU eviction, same-key replacement (plan aging) and
        invalidation, so pinned engine reads never outlive the entry's
        reachability from the cache.  A prepared handle still holding the
        entry simply re-pins on its next run.
        """
        snapshot = getattr(entry, "snapshot", None)
        if snapshot is not None:
            snapshot.clear()

    def _plan_key(self, fingerprint: str, plan: "ModePlan") -> tuple:
        return (fingerprint, plan.mode, plan.compile_options,
                self.system.plan_generation)

    def _lookup_or_compile(self, program: "Program",
                           plan: "ModePlan") -> CachedPlan:
        obs = self.system.obs
        fingerprint = program.fingerprint()
        key = self._plan_key(fingerprint, plan)
        with self._prepare_lock:
            entry = self.plan_cache.get(key)
            if entry is not None:
                entry.hits += 1
                obs.plan_cache_total.inc(outcome="hit")
                return entry
            obs.plan_cache_total.inc(outcome="miss")
            with obs.tracer.span("compile", "compile", mode=plan.mode,
                                 fingerprint=fingerprint[:12]):
                compilation = self.system.compile(
                    program, accelerated=plan.accelerated,
                    options=plan.compile_options)
            compilation.source_fingerprint = fingerprint
            entry = CachedPlan(
                compilation=compilation,
                snapshot=ScanSnapshot(compilation.graph),
                generation=self.system.plan_generation,
                fingerprint=fingerprint,
                mode=plan.mode,
                declared_params=program.declared_params(),
                baked_estimates=self._baked_estimates(compilation),
            )
            self.plan_cache.put(key, entry)
            return entry

    def _fresh_entry(self, program: "Program", plan: "ModePlan",
                     entry: CachedPlan, options: CompilerOptions | None
                     ) -> tuple["ModePlan", CachedPlan, bool]:
        """Revalidate a prepared program's plan + entry against the deployment.

        When engines or accelerators were registered after preparation, the
        execution mode is re-resolved (migration strategy and serializer may
        have changed) and the plan recompiled (through the cache) against the
        new deployment.  The program fingerprint is re-checked on every run,
        so even an end-run around :meth:`HeterogeneousProgram.freeze` (for
        example mutating ``fragment().params`` in place) can never replay a
        stale plan — the changed program simply recompiles.

        With the deployment unchanged, the entry is additionally checked for
        *plan aging*: when the runtime statistics have drifted past the
        estimates baked into the cached plan, it is re-compiled with the
        fed-back stats.  The third element of the returned tuple reports
        whether this run's plan was physically re-optimized.
        """
        self._check_open()
        if (entry.generation == self.system.plan_generation
                and program.fingerprint() == entry.fingerprint):
            refreshed = self._reoptimize_if_stale(program, plan, entry)
            return plan, refreshed, refreshed is not entry
        plan = self.system.plan_mode(plan.mode, options)
        return plan, self._lookup_or_compile(program, plan), False

    # -- plan aging ----------------------------------------------------------------------

    @staticmethod
    def _baked_estimates(compilation) -> dict[str, int]:
        from repro.middleware.feedback import baked_estimates

        return baked_estimates(compilation.graph)

    def _drifted(self, entry: CachedPlan) -> bool:
        """Whether observed cardinalities left the cached plan's estimates behind."""
        from repro.middleware.feedback import drift_ratio

        stats = self.system.feedback_stats
        factor = self.system.config.reoptimize_drift_factor
        if stats is None or not factor or not entry.baked_estimates:
            return False
        for fingerprint, estimated in entry.baked_estimates.items():
            # actionable_rows suppresses tiny observed realities: whatever
            # the estimate said, re-planning a few hundred rows cannot pay
            # for its own compile time.
            observed = stats.actionable_rows(fingerprint)
            if observed is None:
                continue
            if drift_ratio(estimated, observed) >= factor:
                return True
        return False

    def _reoptimize_if_stale(self, program: "Program", plan: "ModePlan",
                             entry: CachedPlan) -> CachedPlan:
        """Age a drifted plan: re-compile with fed-back statistics.

        When the re-compiled plan is *physically identical* (same plan
        fingerprint — the estimates moved but changed no decision) the old
        entry survives with its pinned scans; only its baked estimates are
        refreshed so the same drift is not re-detected every run.  A changed
        plan replaces the entry in the cache and the run is flagged as
        re-optimized.
        """
        if entry.superseded_by is not None:
            return entry.superseded_by
        if not self._drifted(entry):
            return entry
        with self._prepare_lock:
            if entry.superseded_by is not None:  # a sibling got here first
                return entry.superseded_by
            if not self._drifted(entry):  # sibling re-baked the estimates
                return entry
            obs = self.system.obs
            with obs.tracer.span("compile", "compile", mode=plan.mode,
                                 fingerprint=entry.fingerprint[:12],
                                 reoptimize=True):
                compilation = self.system.compile(
                    program, accelerated=plan.accelerated,
                    options=plan.compile_options)
            compilation.source_fingerprint = entry.fingerprint
            if compilation.plan_fingerprint == entry.compilation.plan_fingerprint:
                entry.baked_estimates = self._baked_estimates(compilation)
                return entry
            replacement = CachedPlan(
                compilation=compilation,
                snapshot=ScanSnapshot(compilation.graph),
                generation=entry.generation,
                fingerprint=entry.fingerprint,
                mode=entry.mode,
                declared_params=dict(entry.declared_params),
                baked_estimates=self._baked_estimates(compilation),
                reoptimizations=entry.reoptimizations + 1,
                reoptimized_from=entry.compilation.plan_fingerprint,
            )
            entry.superseded_by = replacement
            self.plan_cache.put(self._plan_key(entry.fingerprint, plan), replacement)
            obs.plan_cache_total.inc(outcome="reoptimized")
            obs.logger("session").info(
                "plan_reoptimized", program=str(program.name), mode=plan.mode,
                fingerprint=entry.fingerprint[:12],
                reoptimizations=replacement.reoptimizations)
            return replacement

    # -- one-shot execution --------------------------------------------------------------

    def execute(self, program: "Program", *, mode: str = "polystore++",
                options: CompilerOptions | None = None,
                deadline_s: float | None = None,
                cancellation: CancellationToken | None = None
                ) -> "ExecutionResult":
        """Compile-or-reuse and run once, always re-reading every engine.

        This is the one-shot path :meth:`PolystorePlusPlus.execute` delegates
        to: it benefits from the plan cache but never replays pinned scans.
        ``deadline_s``/``cancellation`` bound the run cooperatively, exactly
        as on :meth:`PreparedProgram.run` (the deadline covers compilation
        too — an expired token stops the run at the next checkpoint).
        """
        # One request scope over prepare+run so a one-shot's compile span
        # lands in the same trace as its execution (the nested scope opened
        # by run() joins this tree instead of re-sampling).
        with self.system.obs.tracer.request(f"request:{program.name}",
                                            program=str(program.name),
                                            mode=mode, oneshot=True):
            prepared = self.prepare(program, mode=mode, options=options,
                                    freeze=False)
            return prepared.run(reuse_scans=False, deadline_s=deadline_s,
                                cancellation=cancellation)

    # -- concurrent execution ------------------------------------------------------------

    def submit(self, item: "Program | PreparedProgram", *,
               mode: str = "polystore++", options: CompilerOptions | None = None,
               **run_kwargs: Any) -> "Future[ExecutionResult]":
        """Schedule one execution on the session's worker pool.

        ``item`` may be a raw program (prepared on the calling thread, so the
        plan cache stays warm) or an existing :class:`PreparedProgram`.
        ``run_kwargs`` are forwarded to :meth:`PreparedProgram.run`.
        """
        self._check_open()
        if isinstance(item, PreparedProgram):
            prepared = item
        else:
            prepared = self.prepare(item, mode=mode, options=options, freeze=False)
        with self._lock:
            self._submitted += 1
        return self._worker_pool().submit(prepared.run, **run_kwargs)

    def run_batch(self, items: "Iterable[Program | PreparedProgram]", *,
                  mode: str = "polystore++",
                  options: CompilerOptions | None = None,
                  **run_kwargs: Any) -> list["ExecutionResult"]:
        """Run many programs concurrently; results come back in input order.

        The first failure is re-raised after all submissions are in flight.
        """
        futures = [self.submit(item, mode=mode, options=options, **run_kwargs)
                   for item in items]
        return [future.result() for future in futures]

    # -- internals -----------------------------------------------------------------------

    def _run_graph(self, compilation, graph: IRGraph, plan: "ModePlan",
                   snapshot: ScanSnapshot | None,
                   cancellation: CancellationToken | None = None
                   ) -> "ExecutionResult":
        from repro.core.system import ExecutionResult

        system = self.system
        migrator = DataMigrator(
            system.network,
            serializer_accelerator=(system.serializer_accelerator
                                    if plan.accelerated else None),
            default_strategy=plan.migration_strategy,
        )
        executor = Executor(system.catalog, migrator,
                            migration_strategy=plan.migration_strategy,
                            max_workers=self.max_workers,
                            runtime_stats=system.feedback_stats,
                            views=system.views,
                            obs=system.obs,
                            cancellation=cancellation)
        outputs, report = executor.execute(graph, mode=plan.mode,
                                           result_cache=snapshot)
        report.migration_time_s = migrator.total_time_s()
        report.migration_bytes = migrator.total_migrated_bytes()
        # Migrations replayed from the snapshot never reach the migrator, but
        # their charges stay in total_time_s — keep the migration fields
        # consistent with that by carrying the pinned charges over too.
        for record in report.records:
            if record.cached and record.kind == "migrate":
                report.migration_time_s += record.simulated_time_s
                report.migration_bytes += int(record.details.get("payload_bytes", 0))
        return ExecutionResult(outputs=outputs, report=report,
                               compilation=compilation, mode=plan.mode)

    def _worker_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            # Re-check under the lock: a submit racing close() must not
            # resurrect a fresh pool nobody will ever shut down.
            self._check_open()
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix=f"polystore-{self.name}",
                )
            return self._pool

    def _check_open(self) -> None:
        if self._closed:
            raise ExecutionError(f"session {self.name!r} is closed")

    # -- lifecycle -----------------------------------------------------------------------

    def invalidate_plans(self) -> int:
        """Drop every cached plan (called when the deployment changes)."""
        return self.plan_cache.invalidate()

    def stats(self) -> dict[str, Any]:
        """Plan-cache counters plus submission accounting."""
        return {
            "name": self.name,
            "plan_cache": self.plan_cache.stats(),
            "submitted": self._submitted,
            "max_workers": self.max_workers,
            "closed": self._closed,
        }

    def close(self) -> None:
        """Shut down the worker pool; further use raises ``ExecutionError``."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"Session(name={self.name!r}, plans={len(self.plan_cache)}, "
                f"submitted={self._submitted})")
