"""Client API: sessions, prepared programs and plan caching.

Create sessions through :meth:`repro.PolystorePlusPlus.session`; the classes
here are what it hands back.
"""

from repro.client.cache import SNAPSHOT_KINDS, CachedPlan, PlanCache, ScanSnapshot
from repro.client.session import PreparedProgram, Session

__all__ = [
    "Session",
    "PreparedProgram",
    "PlanCache",
    "ScanSnapshot",
    "CachedPlan",
    "SNAPSHOT_KINDS",
]
