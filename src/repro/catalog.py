"""The global catalog of a Polystore++ deployment.

The catalog knows every registered data-processing engine and hardware
accelerator, which data model each engine speaks, and (through the engines'
own statistics) roughly how much data each holds.  The compiler's frontend
uses it to bind fragments to engines; the placement pass and the optimizer
use it to enumerate offload targets; the executor uses it to find the engine
or device an operator was bound to.
"""

from __future__ import annotations

from typing import Any

from repro.accelerators.base import Accelerator
from repro.exceptions import CatalogError
from repro.stores.base import DataModel, Engine

#: Fragment paradigm -> data model of the engine expected to run it.
_PARADIGM_MODELS: dict[str, DataModel] = {
    "sql": DataModel.RELATIONAL,
    "join": DataModel.RELATIONAL,
    "kv_lookup": DataModel.KEY_VALUE,
    "timeseries_summary": DataModel.TIMESERIES,
    "window_aggregate": DataModel.TIMESERIES,
    "graph_query": DataModel.GRAPH,
    "text_search": DataModel.DOCUMENT,
    "text_features": DataModel.DOCUMENT,
    "feature_matrix": DataModel.TENSOR,
    "train": DataModel.TENSOR,
    "predict": DataModel.TENSOR,
    "kmeans": DataModel.TENSOR,
    "python": DataModel.RELATIONAL,
}


class Catalog:
    """Registry of engines, accelerators and their metadata."""

    def __init__(self) -> None:
        self._engines: dict[str, Engine] = {}
        self._accelerators: dict[str, Accelerator] = {}

    # -- registration --------------------------------------------------------------

    def register_engine(self, engine: Engine) -> None:
        """Register a data-processing engine under its name."""
        if engine.name in self._engines:
            raise CatalogError(f"engine {engine.name!r} is already registered")
        self._engines[engine.name] = engine

    def register_accelerator(self, accelerator: Accelerator) -> None:
        """Register a hardware accelerator under its device name."""
        name = accelerator.profile.name
        if name in self._accelerators:
            raise CatalogError(f"accelerator {name!r} is already registered")
        self._accelerators[name] = accelerator

    # -- engine lookup -----------------------------------------------------------------

    def engine(self, name: str) -> Engine:
        """The engine registered under ``name``."""
        try:
            return self._engines[name]
        except KeyError as exc:
            raise CatalogError(f"no engine named {name!r}") from exc

    def has_engine(self, name: str) -> bool:
        """Whether an engine with this name is registered."""
        return name in self._engines

    def engines(self) -> list[Engine]:
        """All registered engines."""
        return list(self._engines.values())

    def engine_names(self) -> list[str]:
        """Names of registered engines."""
        return sorted(self._engines)

    def engines_with_model(self, model: DataModel) -> list[Engine]:
        """Engines speaking the given data model."""
        return [e for e in self._engines.values() if e.data_model is model]

    def default_engine_for(self, paradigm: str) -> Engine:
        """The engine a fragment of ``paradigm`` is bound to when none is named.

        The first registered engine with the paradigm's expected data model
        wins; a :class:`CatalogError` is raised when none exists.
        """
        model = _PARADIGM_MODELS.get(paradigm)
        if model is None:
            raise CatalogError(f"no default data model known for paradigm {paradigm!r}")
        candidates = self.engines_with_model(model)
        if not candidates:
            raise CatalogError(
                f"no registered engine speaks {model.value!r} (needed by {paradigm!r})"
            )
        return candidates[0]

    # -- accelerator lookup ---------------------------------------------------------------

    def accelerator(self, name: str) -> Accelerator:
        """The accelerator registered under ``name``."""
        try:
            return self._accelerators[name]
        except KeyError as exc:
            raise CatalogError(f"no accelerator named {name!r}") from exc

    def accelerators(self) -> list[Accelerator]:
        """All registered accelerators."""
        return list(self._accelerators.values())

    def has_accelerators(self) -> bool:
        """Whether any accelerator is registered."""
        return bool(self._accelerators)

    # -- statistics -------------------------------------------------------------------------

    def table_rows(self, engine_name: str, table: str) -> int:
        """Row count of a relational table, or 0 when unknown."""
        engine = self.engine(engine_name)
        statistics = getattr(engine, "table_statistics", None)
        if statistics is None:
            return 0
        try:
            return int(statistics(table).get("rows", 0))
        except Exception:  # noqa: BLE001 - statistics are best effort
            return 0

    def table_columns(self, engine_name: str, table: str) -> tuple[str, ...]:
        """Column names of a relational table, or ``()`` when unknown."""
        engine = self.engine(engine_name)
        schema_of = getattr(engine, "table_schema", None)
        if schema_of is None:
            return ()
        try:
            return schema_of(table).names
        except Exception:  # noqa: BLE001 - best effort
            return ()

    def describe(self) -> dict[str, Any]:
        """A configuration snapshot (what the EIDE would display)."""
        return {
            "engines": [engine.describe() for engine in self._engines.values()],
            "accelerators": [acc.describe() for acc in self._accelerators.values()],
        }
